"""Benchmark: the paper's §4.5 worked example (Tables 2–4).

Not a performance table in the paper, but the canonical store scenario:
bulk-insert 100 nodes, then ``insertIntoLast(60, <40 nodes>)``.  We verify
the resulting Range Index state matches Tables 2–3 and measure the
operation under every indexing policy.
"""

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore

POLICIES = [
    IndexingPolicy.FULL,
    IndexingPolicy.RANGE,
    IndexingPolicy.RANGE_PLUS_PARTIAL,
]


def build_base_store(policy):
    """Two sibling nodes, 100 nodes total (ids 1..100)."""
    store = XMLStore.open(StoreConfig(policy=policy))
    fragment = "".join(f"<c{i}/>" for i in range(49))
    store.load_document(f"<a>{fragment}</a><b>{fragment}</b>")
    return store


@pytest.mark.parametrize("policy", POLICIES, ids=[p.value for p in POLICIES])
def test_insert_into_last_node60(benchmark, policy):
    fragment = "".join(f"<n{i}/>" for i in range(40))

    def setup():
        return (build_base_store(policy),), {}

    def run(store):
        store.insert_into_last(60, fragment)
        return store

    store = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    snapshot = store.range_snapshot()
    # Tables 2-3: three ranges, id intervals [1..60], [101..140], [61..100]
    assert [row[2:] for row in snapshot] == [(1, 60), (101, 140), (61, 100)]
    store.check_integrity()


def test_partial_index_state_matches_table4(benchmark):
    """Table 4: after the insert, the partial index knows node 60."""

    def run():
        store = build_base_store(IndexingPolicy.RANGE_PLUS_PARTIAL)
        fragment = "".join(f"<n{i}/>" for i in range(40))
        store.insert_into_last(60, fragment)
        return store

    store = benchmark.pedantic(run, rounds=1, iterations=1)
    memoized = dict(store.partial_snapshot())
    assert 60 in memoized  # the lookup performed during the update was kept
    entry = store.partial_index.probe(60, store.ranges)
    assert entry is not None
    assert entry.has_end  # begin AND end token locations, as in Table 4
    # the end token lives in a different range than the begin (the split)
    assert entry.end_range_id != entry.range_id
