"""Benchmark: Table 5 — lazy indexing vs. the full-index strawman.

Regenerates the paper's only experimental table.  Each (approach, phase)
cell is one pytest-benchmark measurement; the final test assembles the
whole table, asserts the paper's qualitative shape, and writes
``bench_results/table5.txt`` plus the cost-model calibration report
(the second gate of ``tools/bench_compare.py --calibration``).  Run with
``--profile`` to attach a cost profile to every phase row and write the
``PROFILE_table5.json`` artifact.
"""

import json

import pytest

from repro.bench.harness import insert_phase, random_read_phase, sequential_scan_phase
from repro.bench.reporting import format_table5, table5_to_json
from repro.bench.table5 import (
    APPROACHES,
    Table5Config,
    Table5Row,
    build_store,
    check_shape,
    run_row,
    sample_read_ids,
)
from repro.workloads.generator import purchase_order_stream

from conftest import write_artifact

CONFIG = Table5Config.small()
IDS = ["full", "granular", "coarse", "coarse+partial"]


@pytest.mark.parametrize(("approach", "policy", "granularity"), APPROACHES, ids=IDS)
def test_insert_throughput(benchmark, approach, policy, granularity):
    def setup():
        store, root = build_store(policy, granularity, CONFIG)
        fragments = list(
            purchase_order_stream(
                CONFIG.insert_orders,
                CONFIG.items_per_order,
                seed=CONFIG.seed + 1,
                start_no=CONFIG.base_orders,
            )
        )
        return (store, root, fragments), {}

    result = benchmark.pedantic(insert_phase, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["simulated_kb_per_s"] = round(result.kb_per_second, 2)
    assert result.operations == CONFIG.insert_orders


@pytest.mark.parametrize(("approach", "policy", "granularity"), APPROACHES, ids=IDS)
def test_sequential_scan_throughput(benchmark, approach, policy, granularity):
    def setup():
        store, _ = build_store(policy, granularity, CONFIG)
        return (store,), {}

    result = benchmark.pedantic(
        sequential_scan_phase, setup=setup, rounds=1, iterations=1
    )
    benchmark.extra_info["simulated_kb_per_s"] = round(result.kb_per_second, 2)
    assert result.xml_bytes > 0


@pytest.mark.parametrize(("approach", "policy", "granularity"), APPROACHES, ids=IDS)
def test_random_read_throughput(benchmark, approach, policy, granularity):
    def setup():
        store, _ = build_store(policy, granularity, CONFIG)
        read_ids = sample_read_ids(store, CONFIG)
        return (store, read_ids), {}

    result = benchmark.pedantic(
        random_read_phase, setup=setup, rounds=1, iterations=1
    )
    benchmark.extra_info["simulated_kb_per_s"] = round(result.kb_per_second, 2)
    assert result.operations == CONFIG.random_reads


@pytest.fixture(scope="session")
def table5_config(request):
    """The shared scale preset, profiled when ``--profile`` is given."""
    config = Table5Config.small()
    config.profile = request.config.getoption("--profile")
    return config


def test_table5_shape(benchmark, results_dir, table5_config):
    """The whole table, with the paper's qualitative claims asserted."""

    def run():
        return [
            run_row(approach, policy, granularity, table5_config)
            for approach, policy, granularity in APPROACHES
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table5(rows)
    write_artifact(results_dir, "table5.txt", table)
    write_artifact(results_dir, "BENCH_table5.json", table5_to_json(rows))
    _write_calibration_artifacts(results_dir, rows, table5_config)
    for row in rows:
        benchmark.extra_info[row.approach] = {
            "insert": round(row.insert.kb_per_second, 2),
            "seq_scan": round(row.seq_scan.kb_per_second, 2),
            "random_reads": round(row.random_reads.kb_per_second, 2),
        }
    violated = check_shape(rows)
    assert not violated, f"paper shape violated: {violated}\n{table}"


def _write_calibration_artifacts(results_dir, rows, config):
    """The wall-vs-simulated calibration report, and — when the run was
    profiled — every phase's cost profile as one JSON artifact."""
    from repro.obs.calibration import calibration_report, render_calibration

    payload = json.loads(table5_to_json(rows))
    write_artifact(
        results_dir,
        "CALIBRATION_table5.json",
        json.dumps(calibration_report(payload), indent=2, sort_keys=True),
    )
    write_artifact(results_dir, "calibration.txt", render_calibration(payload))
    if config.profile:
        profiles = {
            row.approach: {
                phase: getattr(row, phase).profile
                for phase in ("insert", "seq_scan", "random_reads")
            }
            for row in rows
        }
        write_artifact(
            results_dir,
            "PROFILE_table5.json",
            json.dumps(profiles, indent=2, sort_keys=True),
        )
