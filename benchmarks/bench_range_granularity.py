"""Benchmark: Ablation A — range granularity sweep (§9, variable-sized
ranges as the logical unit).

Writes ``bench_results/granularity.csv`` with insert and random-read
throughput per range size.  Expected shape: random reads degrade as
ranges grow (longer scans per lookup); inserts mildly prefer coarse
ranges (fewer index entries).
"""

from repro.bench.reporting import format_csv
from repro.bench.sweeps import run_granularity_sweep

from conftest import write_artifact

RANGE_SIZES = (32, 128, 512, 2048, None)


def test_granularity_sweep(benchmark, results_dir):
    points = benchmark.pedantic(
        run_granularity_sweep,
        kwargs={
            "range_sizes": RANGE_SIZES,
            "base_orders": 120,
            "insert_orders": 12,
            "reads": 150,
            "pool_capacity": 16,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            str(p.max_range_tokens),
            p.ranges,
            round(p.insert.kb_per_second, 2),
            round(p.random_reads.kb_per_second, 2),
        )
        for p in points
    ]
    write_artifact(
        results_dir,
        "granularity.csv",
        format_csv(
            ["max_range_tokens", "ranges", "insert_kb_s", "random_read_kb_s"], rows
        ),
    )
    for p in points:
        benchmark.extra_info[str(p.max_range_tokens)] = {
            "ranges": p.ranges,
            "insert": round(p.insert.kb_per_second, 2),
            "reads": round(p.random_reads.kb_per_second, 2),
        }
    # shape: the coarsest configuration must have the slowest random reads
    coarsest = points[-1]
    finest = points[0]
    assert coarsest.ranges == 1
    assert finest.random_reads.kb_per_second > coarsest.random_reads.kb_per_second
    # and granularity must actually vary the number of ranges monotonically
    range_counts = [p.ranges for p in points]
    assert range_counts == sorted(range_counts, reverse=True)
