"""Benchmark: Ablation B — partial-index capacity and skew (§5).

Writes ``bench_results/partial_capacity.csv``.  Expected shape: random
reads improve with capacity until the hot set fits, then flatten; hit
rate grows monotonically with capacity.
"""

from repro.bench.reporting import format_csv
from repro.bench.sweeps import run_partial_capacity_sweep

from conftest import write_artifact

CAPACITIES = (0, 8, 32, 128, None)


def test_partial_capacity_sweep(benchmark, results_dir):
    points = benchmark.pedantic(
        run_partial_capacity_sweep,
        kwargs={
            "capacities": CAPACITIES,
            "base_orders": 120,
            "reads": 300,
            "hot_fraction": 0.1,
            "pool_capacity": 16,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            str(p.capacity),
            round(p.hit_rate, 3),
            round(p.random_reads.kb_per_second, 2),
        )
        for p in points
    ]
    write_artifact(
        results_dir,
        "partial_capacity.csv",
        format_csv(["capacity", "hit_rate", "random_read_kb_s"], rows),
    )
    for p in points:
        benchmark.extra_info[str(p.capacity)] = {
            "hit_rate": round(p.hit_rate, 3),
            "reads": round(p.random_reads.kb_per_second, 2),
        }
    # shape: capacity 0 (no partial index) is the floor; unbounded the
    # ceiling; hit rates grow monotonically with capacity
    speeds = [p.random_reads.kb_per_second for p in points]
    assert speeds[0] == min(speeds)
    assert max(speeds) == speeds[-1] or max(speeds) == speeds[-2]
    hit_rates = [p.hit_rate for p in points]
    assert hit_rates == sorted(hit_rates)
