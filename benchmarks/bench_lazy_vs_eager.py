"""Benchmark: Ablation C — lazy vs. eager segment indexing (§8).

The Catania et al. comparison: eagerly indexing the content of inserted
segments degrades "especially as the segments increase in number", while
the lazy store indexes only on demand.  Writes
``bench_results/lazy_vs_eager.csv``.
"""

from repro.bench.reporting import format_csv
from repro.bench.sweeps import run_lazy_vs_eager

from conftest import write_artifact

SEGMENT_COUNTS = (10, 25, 50, 100)


def test_lazy_vs_eager(benchmark, results_dir):
    points = benchmark.pedantic(
        run_lazy_vs_eager,
        kwargs={"segment_counts": SEGMENT_COUNTS},
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p.segments,
            round(p.lazy_insert.kb_per_second, 2),
            round(p.eager_memory_insert.kb_per_second, 2),
            round(p.eager_full_insert.kb_per_second, 2),
            round(p.lazy_advantage, 2),
        )
        for p in points
    ]
    write_artifact(
        results_dir,
        "lazy_vs_eager.csv",
        format_csv(
            [
                "segments",
                "lazy_kb_s",
                "eager_memory_kb_s",
                "eager_full_kb_s",
                "lazy_advantage",
            ],
            rows,
        ),
    )
    for p in points:
        benchmark.extra_info[str(p.segments)] = {
            "lazy": round(p.lazy_insert.kb_per_second, 2),
            "eager_full": round(p.eager_full_insert.kb_per_second, 2),
            "advantage": round(p.lazy_advantage, 2),
        }
    # shape: lazy always wins, and the advantage grows with segment count
    for p in points:
        assert p.lazy_insert.kb_per_second > p.eager_full_insert.kb_per_second
    advantages = [p.lazy_advantage for p in points]
    assert advantages[-1] > advantages[0]
