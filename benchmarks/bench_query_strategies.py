"""Benchmark: query evaluation strategies (§1's motivating comparison).

Navigational XPath evaluation vs. the stack-based structural join over
containment labels [1] for ``//a//d`` patterns.  Writes
``bench_results/query_strategies.csv``.  Expected shape: the structural
join wins on containment patterns over recursive data (it touches each
candidate once, merge-style), while both return identical answers.
"""

import pytest

from repro.core.store import XMLStore
from repro.bench.reporting import format_csv
from repro.xpath.structural_join import containment_query
from repro.workloads.xmark import xmark_document

from conftest import write_artifact


def build_auction_store():
    store = XMLStore.open()
    store.load_document(xmark_document(items_per_region=6, people=20, auctions=15))
    return store


def test_navigational_descendant_query(benchmark):
    store = build_auction_store()

    def run():
        return store.xpath("//open_auction//personref")

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results
    benchmark.extra_info["matches"] = len(results)


def test_structural_join_query(benchmark):
    store = build_auction_store()

    def run():
        return containment_query(store, "open_auction", "personref")

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pairs
    benchmark.extra_info["matches"] = len(pairs)


def test_strategies_agree(benchmark, results_dir):
    store = build_auction_store()

    def run():
        navigational = {
            n.node_id for n in store.xpath("//open_auction//personref")
        }
        joined = {d for _, d in containment_query(store, "open_auction", "personref")}
        return navigational, joined

    navigational, joined = benchmark.pedantic(run, rounds=1, iterations=1)
    assert navigational == joined
    write_artifact(
        results_dir,
        "query_strategies.csv",
        format_csv(
            ["strategy", "matches"],
            [("navigational", len(navigational)), ("structural-join", len(joined))],
        ),
    )
