"""Shared fixtures for the benchmark suite.

Every benchmark measures wall time through pytest-benchmark *and* records
the simulated-clock throughput (the paper's metric) in ``extra_info`` and
in plain-text artifacts under ``bench_results/`` — those artifacts are the
regenerated tables/figures that EXPERIMENTS.md indexes.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help=(
            "attach cost profiles (repro.obs.profiler) to every Table-5 "
            "phase row and write the profile artifact; the simulated "
            "numbers are byte-identical either way (the zero-cost "
            "contract pinned by tests/bench/test_profiler_zero_cost.py)"
        ),
    )


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


def write_artifact(results_dir: str, name: str, content: str) -> str:
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(content)
    return path
