"""Benchmark: Ablation E — adaptivity across read/update mixes (§2.1).

Sweeps the read fraction of a mixed workload under fixed policies and the
adaptive controller.  Writes ``bench_results/adaptive_mixed.csv``.
Expected shape: the adaptive policy tracks the best fixed policy across
the whole sweep.
"""

from collections import defaultdict

from repro.bench.reporting import format_csv
from repro.bench.sweeps import run_adaptive_mixed

from conftest import write_artifact

READ_FRACTIONS = (0.05, 0.25, 0.5, 0.75, 0.95)


def test_adaptive_mixed_sweep(benchmark, results_dir):
    points = benchmark.pedantic(
        run_adaptive_mixed,
        kwargs={
            "read_fractions": READ_FRACTIONS,
            "operations": 200,
            "base_orders": 60,
            "pool_capacity": 16,
        },
        rounds=1,
        iterations=1,
    )
    by_fraction = defaultdict(dict)
    for p in points:
        by_fraction[p.read_fraction][p.policy] = p.simulated_seconds
    rows = [
        (
            fraction,
            round(policies["range"], 4),
            round(policies["range+partial"], 4),
            round(policies["eager-partial"], 4),
            round(policies["adaptive"], 4),
        )
        for fraction, policies in sorted(by_fraction.items())
    ]
    write_artifact(
        results_dir,
        "adaptive_mixed.csv",
        format_csv(
            [
                "read_fraction",
                "range_s",
                "range_partial_s",
                "eager_partial_s",
                "adaptive_s",
            ],
            rows,
        ),
    )
    for fraction, policies in sorted(by_fraction.items()):
        benchmark.extra_info[str(fraction)] = {
            name: round(seconds, 4) for name, seconds in policies.items()
        }
        # shape: adaptive within 1.5x of the best fixed policy everywhere
        best_fixed = min(
            policies["range"], policies["range+partial"], policies["eager-partial"]
        )
        assert policies["adaptive"] <= best_fixed * 1.5
    # and the lazy partial index beats the plain range index on both ends
    assert by_fraction[0.05]["range+partial"] < by_fraction[0.05]["range"]
    assert by_fraction[0.95]["range+partial"] < by_fraction[0.95]["range"]
