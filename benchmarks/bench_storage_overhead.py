"""Benchmark: storage overhead (paper §2 requirement 6, §4.1 claim (b)).

"a full index has two main disadvantages: (a) inserts are expensive, and
(b) storage requirements are very high."  We measure device bytes per XML
byte for each indexing policy, split into data blocks vs index blocks,
and the effect of range compaction on a fragmented store.  Writes
``bench_results/storage_overhead.csv``.
"""

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.bench.reporting import format_csv
from repro.workloads.generator import purchase_orders_document

from conftest import write_artifact

POLICIES = [
    IndexingPolicy.FULL,
    IndexingPolicy.RANGE,
    IndexingPolicy.RANGE_PLUS_PARTIAL,
]


def measure_policy(policy):
    store = XMLStore.open(StoreConfig(policy=policy, buffer_pool_capacity=256))
    document = purchase_orders_document(150, items_per_order=5, seed=3)
    store.load_document(document)
    store.pool.flush_all()
    xml_bytes = len(document.encode("utf-8"))
    data_blocks = store.layout.chain.num_blocks
    total_blocks = store.device.num_blocks
    index_blocks = total_blocks - data_blocks
    page = store.config.page_size
    return {
        "xml_bytes": xml_bytes,
        "data_bytes": data_blocks * page,
        "index_bytes": index_blocks * page,
        "overhead": (total_blocks * page) / xml_bytes,
        "partial_entries": len(store.partial_index) if store.partial_index else 0,
    }


def test_storage_overhead(benchmark, results_dir):
    def run():
        return {policy: measure_policy(policy) for policy in POLICIES}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            policy.value,
            m["xml_bytes"],
            m["data_bytes"],
            m["index_bytes"],
            round(m["overhead"], 3),
        )
        for policy, m in measured.items()
    ]
    write_artifact(
        results_dir,
        "storage_overhead.csv",
        format_csv(
            ["policy", "xml_bytes", "data_bytes", "index_bytes", "overhead"], rows
        ),
    )
    for policy, m in measured.items():
        benchmark.extra_info[policy.value] = round(m["overhead"], 3)
    full = measured[IndexingPolicy.FULL]
    coarse = measured[IndexingPolicy.RANGE]
    partial = measured[IndexingPolicy.RANGE_PLUS_PARTIAL]
    # shape: the full index costs several times the range index's blocks
    assert full["index_bytes"] > 3 * coarse["index_bytes"]
    # the partial index costs no disk at all — it is memory-resident
    assert partial["index_bytes"] == coarse["index_bytes"]
    # the lazy store never indexed anything it was not asked about
    assert partial["partial_entries"] == 0


def test_compaction_shrinks_range_index(benchmark):
    """After a fragmenting append workload, compaction merges ranges and
    shrinks the Range Index (the §9 maintenance optimization)."""

    def run():
        store = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE))
        root = store.load_document("<log/>")
        for index in range(120):
            store.insert_into_last(root, f"<e n='{index}'/>")
        entries_before = len(store.range_index)
        report = store.compact()
        return store, entries_before, report

    store, entries_before, report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["entries_before"] = entries_before
    benchmark.extra_info["entries_after"] = len(store.range_index)
    assert report.removed > 100
    assert len(store.range_index) < entries_before / 10
    store.check_integrity()
