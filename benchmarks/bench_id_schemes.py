"""Benchmark: Ablation D — identifier-scheme orthogonality (§6).

Relabeling cost of sequential store ids, ORDPATH, Dewey and pre/post
labels under repeated middle-sibling insertion.  Writes
``bench_results/id_schemes.csv``.
"""

from repro.bench.reporting import format_csv
from repro.bench.sweeps import run_id_scheme_comparison

from conftest import write_artifact


def test_id_scheme_relabeling(benchmark, results_dir):
    results = benchmark.pedantic(
        run_id_scheme_comparison,
        kwargs={"siblings": 500, "middle_inserts": 100},
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            r.scheme,
            r.inserts,
            r.labels_changed,
            str(r.supports_order),
            str(r.supports_ancestry),
        )
        for r in results
    ]
    write_artifact(
        results_dir,
        "id_schemes.csv",
        format_csv(
            ["scheme", "inserts", "labels_changed", "order", "ancestry"], rows
        ),
    )
    by_scheme = {r.scheme: r for r in results}
    for r in results:
        benchmark.extra_info[r.scheme] = r.labels_changed
    # shape (§6): the store's scheme and ORDPATH never relabel; the
    # gap-free schemes pay per insert, pre/post the most on flat trees
    assert by_scheme["sequential (store)"].labels_changed == 0
    assert by_scheme["ordpath"].labels_changed == 0
    assert by_scheme["dewey"].labels_changed > 0
    assert by_scheme["prepost"].labels_changed > 0


def test_ordpath_label_growth(benchmark):
    """The price ORDPATH pays instead: labels grow under adversarial
    repeated careting (never relabeling is not free)."""
    from repro.ids.ordpath import OrdpathScheme

    def run():
        scheme = OrdpathScheme()
        left, right = (1, 1), (1, 3)
        for _ in range(200):
            right = scheme.between(left, right)
        return right

    label = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["final_label_components"] = len(label)
    assert len(label) > 2  # grew beyond a plain sibling ordinal
