"""Navigational XPath evaluation over the store.

The evaluator materializes a lightweight node view of the store (one pass
over the token sequence, regenerating node identifiers with the locator's
scan so every result carries its *store* node id) and then walks it per
the XPath semantics of the supported subset.  Results are
:class:`XPathNode` objects; ``store.read(result.node_id)`` — or
``result.xml()`` — serializes the matched subtree.

This is the *navigational* strategy; :mod:`repro.xpath.structural_join`
implements the containment-join strategy the paper contrasts it with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.errors import XPathUnsupportedError
from repro.obs.events import NOOP_EVENT_LOG
from repro.xpath.ast import (
    Axis,
    BooleanOp,
    Comparison,
    Expr,
    FunctionCall,
    NodeTest,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    TestKind,
)
from repro.xpath.parser import parse
from repro.xmltoken.tokens import TokenKind


@dataclass
class XPathNode:
    """One node of the materialized view."""

    node_id: Optional[int]
    kind: TokenKind
    name: str = ""
    value: str = ""
    parent: Optional["XPathNode"] = None
    children: List["XPathNode"] = field(default_factory=list)
    attributes: List["XPathNode"] = field(default_factory=list)
    _store: Optional[object] = None

    @property
    def is_element(self) -> bool:
        return self.kind == TokenKind.BEGIN_ELEMENT

    @property
    def string_value(self) -> str:
        """XPath string-value: concatenated descendant text."""
        if self.kind in (TokenKind.TEXT, TokenKind.COMMENT):
            return self.value
        if self.kind == TokenKind.BEGIN_ATTRIBUTE:
            return self.value
        parts: List[str] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if node.kind == TokenKind.TEXT:
                parts.append(node.value)
            stack.extend(reversed(node.children))
        return "".join(parts)

    def descendants_or_self(self) -> Iterable["XPathNode"]:
        yield self
        for child in self.children:
            yield from child.descendants_or_self()

    def xml(self) -> str:
        """Serialize this node through the store (attribute nodes render
        as ``name="value"``)."""
        if self._store is not None and self.node_id is not None:
            if self.kind == TokenKind.BEGIN_ATTRIBUTE:
                return f'{self.name}="{self.value}"'
            return self._store.read(self.node_id)  # type: ignore[attr-defined]
        raise XPathUnsupportedError("node is not backed by a store")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.kind.name
        return f"<XPathNode #{self.node_id} {label}>"


def build_view(store) -> XPathNode:
    """Materialize the store's node tree under a synthetic root."""
    root = XPathNode(node_id=None, kind=TokenKind.BEGIN_DOCUMENT, _store=store)
    stack: List[XPathNode] = [root]
    current_attribute: Optional[XPathNode] = None
    for item in store.locator.scan():
        token = item.token
        kind = token.kind
        if kind == TokenKind.BEGIN_ELEMENT:
            node = XPathNode(
                node_id=item.last_id,
                kind=kind,
                name=token.name,
                parent=stack[-1],
                _store=store,
            )
            stack[-1].children.append(node)
            stack.append(node)
        elif kind == TokenKind.END_ELEMENT:
            stack.pop()
        elif kind == TokenKind.BEGIN_ATTRIBUTE:
            current_attribute = XPathNode(
                node_id=item.last_id,
                kind=kind,
                name=token.name,
                parent=stack[-1],
                _store=store,
            )
            stack[-1].attributes.append(current_attribute)
        elif kind == TokenKind.ATTRIBUTE_VALUE:
            if current_attribute is not None:
                current_attribute.value += token.value
        elif kind == TokenKind.END_ATTRIBUTE:
            current_attribute = None
        elif kind in (TokenKind.TEXT, TokenKind.COMMENT, TokenKind.PROCESSING_INSTRUCTION):
            node = XPathNode(
                node_id=item.last_id,
                kind=kind,
                name=token.name,
                value=token.value,
                parent=stack[-1],
                _store=store,
            )
            stack[-1].children.append(node)
        # namespaces are not part of the navigable view
    return root


def evaluate(store, expression: str) -> List[XPathNode]:
    """Evaluate ``expression`` against ``store``; results in document order."""
    path = parse(expression)
    before_scanned = store.locator.stats.tokens_scanned
    root = build_view(store)
    matches = evaluate_path(path, context=[root], root=root)
    event_log = getattr(store, "event_log", NOOP_EVENT_LOG)
    if event_log.enabled:
        event_log.emit(
            "xpath", "evaluate", severity="info",
            expression=expression,
            matches=len(matches),
            view_tokens=store.locator.stats.tokens_scanned - before_scanned,
        )
    return matches


def evaluate_path(
    path: Path, context: Sequence[XPathNode], root: XPathNode
) -> List[XPathNode]:
    current: List[XPathNode] = [root] if path.absolute else list(context)
    for step in path.steps:
        current = _apply_step(step, current, root)
    return current


def _apply_step(
    step: Step, context: Sequence[XPathNode], root: XPathNode
) -> List[XPathNode]:
    gathered: List[XPathNode] = []
    seen = set()
    for node in context:
        for candidate in _axis_candidates(step.axis, node):
            if _test_matches(step.test, step.axis, candidate):
                key = id(candidate)
                if key not in seen:
                    seen.add(key)
                    gathered.append(candidate)
    for predicate in step.predicates:
        gathered = _filter_predicate(predicate, gathered, root)
    return gathered


def _axis_candidates(axis: Axis, node: XPathNode) -> Iterable[XPathNode]:
    if axis is Axis.CHILD:
        return node.children
    if axis is Axis.DESCENDANT_OR_SELF:
        return node.descendants_or_self()
    if axis is Axis.ATTRIBUTE:
        return node.attributes
    if axis is Axis.SELF:
        return [node]
    if axis is Axis.PARENT:
        return [node.parent] if node.parent is not None else []
    raise XPathUnsupportedError(f"axis {axis} not supported")


def _test_matches(test: NodeTest, axis: Axis, node: XPathNode) -> bool:
    if test.kind is TestKind.NODE:
        return True
    if test.kind is TestKind.TEXT:
        return node.kind == TokenKind.TEXT
    if test.kind is TestKind.COMMENT:
        return node.kind == TokenKind.COMMENT
    if axis is Axis.ATTRIBUTE:
        if node.kind != TokenKind.BEGIN_ATTRIBUTE:
            return False
        return test.kind is TestKind.WILDCARD or node.name == test.name
    if node.kind != TokenKind.BEGIN_ELEMENT:
        return False
    return test.kind is TestKind.WILDCARD or node.name == test.name


def _filter_predicate(
    predicate: Expr, nodes: List[XPathNode], root: XPathNode
) -> List[XPathNode]:
    kept: List[XPathNode] = []
    size = len(nodes)
    for position, node in enumerate(nodes, start=1):
        value = _evaluate_expr(predicate, node, root, position, size)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if position == int(value):
                kept.append(node)
        elif _to_boolean(value):
            kept.append(node)
    return kept


def _evaluate_expr(
    expr: Expr, node: XPathNode, root: XPathNode, position: int, size: int
):
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, StringLiteral):
        return expr.value
    if isinstance(expr, Path):
        return evaluate_path(expr, [node], root)
    if isinstance(expr, BooleanOp):
        values = (
            _to_boolean(_evaluate_expr(operand, node, root, position, size))
            for operand in expr.operands
        )
        return any(values) if expr.op == "or" else all(values)
    if isinstance(expr, Comparison):
        left = _evaluate_expr(expr.left, node, root, position, size)
        right = _evaluate_expr(expr.right, node, root, position, size)
        return _compare(expr.op, left, right)
    if isinstance(expr, FunctionCall):
        if expr.name == "position":
            return float(position)
        if expr.name == "last":
            return float(size)
        if expr.name == "not":
            return not _to_boolean(
                _evaluate_expr(expr.args[0], node, root, position, size)
            )
        if expr.name == "count":
            result = _evaluate_expr(expr.args[0], node, root, position, size)
            if not isinstance(result, list):
                raise XPathUnsupportedError("count() expects a node-set")
            return float(len(result))
        if expr.name == "contains":
            haystack = _to_string(
                _evaluate_expr(expr.args[0], node, root, position, size)
            )
            needle = _to_string(
                _evaluate_expr(expr.args[1], node, root, position, size)
            )
            return needle in haystack
    raise XPathUnsupportedError(f"cannot evaluate {expr!r}")


def _to_boolean(value) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _to_string(value) -> str:
    if isinstance(value, list):
        return value[0].string_value if value else ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _as_number(text: str) -> Optional[float]:
    try:
        return float(text.strip())
    except ValueError:
        return None


def _compare(op: str, left, right) -> bool:
    """XPath 1.0 comparison semantics for the supported operand types."""
    if isinstance(left, list) or isinstance(right, list):
        left_values = (
            [n.string_value for n in left] if isinstance(left, list) else [left]
        )
        right_values = (
            [n.string_value for n in right] if isinstance(right, list) else [right]
        )
        return any(
            _compare_atomic(op, lv, rv)
            for lv in left_values
            for rv in right_values
        )
    return _compare_atomic(op, left, right)


def _compare_atomic(op: str, left, right) -> bool:
    # numeric comparison when either side is a number (or looks like one)
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        left_number = left if isinstance(left, (int, float)) else _as_number(str(left))
        right_number = (
            right if isinstance(right, (int, float)) else _as_number(str(right))
        )
        if left_number is None or right_number is None:
            return False
        left, right = left_number, right_number
    elif op in ("<", "<=", ">", ">="):
        left_number, right_number = _as_number(str(left)), _as_number(str(right))
        if left_number is None or right_number is None:
            return False
        left, right = left_number, right_number
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise XPathUnsupportedError(f"operator {op!r}")
