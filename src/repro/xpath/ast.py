"""Abstract syntax for the XPath subset.

The supported grammar (a practical XPath 1.0 core, enough for the query
workloads the paper's motivation names)::

    path        := '/'? step (('/' | '//') step)*
    step        := '.' | '..' | '@'? node_test predicate*
    node_test   := NCName | '*' | 'text()' | 'node()' | 'comment()'
    predicate   := '[' expr ']'
    expr        := or_expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := comparison ('and' comparison)*
    comparison  := operand (('=' | '!=' | '<=' | '>=' | '<' | '>') operand)?
    operand     := number | string | function | relative path
    function    := 'position()' | 'last()' | 'not(' expr ')'
                 | 'count(' path ')' | 'contains(' operand ',' operand ')'

A bare number predicate (``item[2]``) is positional, as in XPath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Union


class Axis(Enum):
    CHILD = "child"
    DESCENDANT_OR_SELF = "descendant-or-self"
    ATTRIBUTE = "attribute"
    SELF = "self"
    PARENT = "parent"


class TestKind(Enum):
    NAME = "name"          # element/attribute QName
    WILDCARD = "*"
    TEXT = "text()"
    NODE = "node()"
    COMMENT = "comment()"


@dataclass(frozen=True)
class NodeTest:
    kind: TestKind
    name: str = ""

    def __str__(self) -> str:
        return self.name if self.kind is TestKind.NAME else self.kind.value


@dataclass(frozen=True)
class Step:
    axis: Axis
    test: NodeTest
    predicates: tuple = ()

    def __str__(self) -> str:
        prefix = "@" if self.axis is Axis.ATTRIBUTE else ""
        predicates = "".join(f"[{p}]" for p in self.predicates)
        return f"{prefix}{self.test}{predicates}"


@dataclass(frozen=True)
class Path:
    """A location path: sequence of steps, optionally absolute."""

    steps: tuple
    absolute: bool = False

    def __str__(self) -> str:
        sep = "/"
        rendered = sep.join(str(step) for step in self.steps)
        return (sep if self.absolute else "") + rendered


# --------------------------------------------------------------- expressions --

@dataclass(frozen=True)
class NumberLiteral:
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringLiteral:
    value: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Comparison:
    op: str  # '=', '!=', '<', '<=', '>', '>='
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BooleanOp:
    op: str  # 'and' | 'or'
    operands: tuple

    def __str__(self) -> str:
        return f" {self.op} ".join(str(o) for o in self.operands)


@dataclass(frozen=True)
class FunctionCall:
    name: str  # position, last, not, count, contains
    args: tuple = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


Expr = Union[Path, NumberLiteral, StringLiteral, Comparison, BooleanOp, FunctionCall]
