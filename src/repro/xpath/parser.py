"""Recursive-descent parser for the XPath subset (grammar in ast.py)."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Axis,
    BooleanOp,
    Comparison,
    Expr,
    FunctionCall,
    NodeTest,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    TestKind,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<dslash>//)
  | (?P<slash>/)
  | (?P<lbracket>\[) | (?P<rbracket>\])
  | (?P<lparen>\() | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<at>@)
  | (?P<dotdot>\.\.) | (?P<dot>\.)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<star>\*)
  | (?P<name>[A-Za-z_][\w.-]*(?::[A-Za-z_][\w.-]*)?)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_NODE_TYPE_TESTS = {
    "text": TestKind.TEXT,
    "node": TestKind.NODE,
    "comment": TestKind.COMMENT,
}

_FUNCTIONS = {"position", "last", "not", "count", "contains"}


class _Tokens:
    def __init__(self, source: str) -> None:
        self.source = source
        self.items: List[Tuple[str, str, int]] = []
        position = 0
        while position < len(source):
            match = _TOKEN_RE.match(source, position)
            if match is None:
                raise XPathSyntaxError(
                    f"unexpected character {source[position]!r} at {position} "
                    f"in {source!r}"
                )
            kind = match.lastgroup
            assert kind is not None
            if kind != "ws":
                self.items.append((kind, match.group(), position))
            position = match.end()
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[Tuple[str, str, int]]:
        index = self.index + offset
        return self.items[index] if index < len(self.items) else None

    def next(self) -> Tuple[str, str, int]:
        item = self.peek()
        if item is None:
            raise XPathSyntaxError(f"unexpected end of expression in {self.source!r}")
        self.index += 1
        return item

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        item = self.peek()
        if item is not None and item[0] == kind and (value is None or item[1] == value):
            self.index += 1
            return item[1]
        return None

    def expect(self, kind: str) -> str:
        item = self.peek()
        if item is None or item[0] != kind:
            got = item[1] if item else "end of expression"
            raise XPathSyntaxError(f"expected {kind}, got {got!r} in {self.source!r}")
        self.index += 1
        return item[1]

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.items)


def parse(source: str) -> Path:
    """Parse an XPath expression into a :class:`Path`."""
    tokens = _Tokens(source)
    path = _parse_path(tokens)
    if not tokens.exhausted:
        kind, value, position = tokens.peek()  # type: ignore[misc]
        raise XPathSyntaxError(
            f"trailing input {value!r} at {position} in {source!r}"
        )
    return path


def _parse_path(tokens: _Tokens) -> Path:
    steps: List[Step] = []
    absolute = False
    if tokens.accept("dslash"):
        absolute = True
        steps.append(_parse_step(tokens, descendant=True))
    elif tokens.accept("slash"):
        absolute = True
        steps.append(_parse_step(tokens))
    else:
        steps.append(_parse_step(tokens))
    while True:
        if tokens.accept("dslash"):
            steps.append(_parse_step(tokens, descendant=True))
        elif tokens.accept("slash"):
            steps.append(_parse_step(tokens))
        else:
            break
    return Path(steps=tuple(steps), absolute=absolute)


def _parse_step(tokens: _Tokens, descendant: bool = False) -> Step:
    if tokens.accept("dotdot"):
        return Step(Axis.PARENT, NodeTest(TestKind.NODE))
    if tokens.accept("dot"):
        return Step(Axis.SELF, NodeTest(TestKind.NODE))
    axis = Axis.DESCENDANT_OR_SELF if descendant else Axis.CHILD
    if tokens.accept("at"):
        axis = Axis.ATTRIBUTE
        if descendant:
            raise XPathSyntaxError("'//@name' is not supported; use '//*/@name'")
    test = _parse_node_test(tokens)
    predicates = []
    while tokens.accept("lbracket"):
        predicates.append(_parse_expr(tokens))
        tokens.expect("rbracket")
    return Step(axis, test, tuple(predicates))


def _parse_node_test(tokens: _Tokens) -> NodeTest:
    if tokens.accept("star"):
        return NodeTest(TestKind.WILDCARD)
    name = tokens.expect("name")
    if name in _NODE_TYPE_TESTS and tokens.peek() and tokens.peek()[0] == "lparen":
        tokens.expect("lparen")
        tokens.expect("rparen")
        return NodeTest(_NODE_TYPE_TESTS[name])
    return NodeTest(TestKind.NAME, name)


# ------------------------------------------------------------- expressions --

def _parse_expr(tokens: _Tokens) -> Expr:
    return _parse_or(tokens)


def _parse_or(tokens: _Tokens) -> Expr:
    operands = [_parse_and(tokens)]
    while tokens.accept("name", "or"):
        operands.append(_parse_and(tokens))
    if len(operands) == 1:
        return operands[0]
    return BooleanOp("or", tuple(operands))


def _parse_and(tokens: _Tokens) -> Expr:
    operands = [_parse_comparison(tokens)]
    while tokens.accept("name", "and"):
        operands.append(_parse_comparison(tokens))
    if len(operands) == 1:
        return operands[0]
    return BooleanOp("and", tuple(operands))


def _parse_comparison(tokens: _Tokens) -> Expr:
    left = _parse_operand(tokens)
    item = tokens.peek()
    if item is not None and item[0] == "op":
        op = tokens.next()[1]
        right = _parse_operand(tokens)
        return Comparison(op, left, right)
    return left


def _parse_operand(tokens: _Tokens) -> Expr:
    item = tokens.peek()
    if item is None:
        raise XPathSyntaxError("expected an operand")
    kind, value, _ = item
    if kind == "number":
        tokens.next()
        return NumberLiteral(float(value))
    if kind == "string":
        tokens.next()
        return StringLiteral(value[1:-1])
    if kind == "name" and value in _FUNCTIONS:
        after = tokens.peek(1)
        if after is not None and after[0] == "lparen":
            return _parse_function(tokens)
    # otherwise a relative path (possibly starting with @ or . or ..)
    return _parse_path(tokens)


def _parse_function(tokens: _Tokens) -> Expr:
    name = tokens.expect("name")
    tokens.expect("lparen")
    args: List[Expr] = []
    if not tokens.accept("rparen"):
        args.append(_parse_function_arg(tokens, name))
        while tokens.accept("comma"):
            args.append(_parse_function_arg(tokens, name))
        tokens.expect("rparen")
    arity = {"position": 0, "last": 0, "not": 1, "count": 1, "contains": 2}[name]
    if len(args) != arity:
        raise XPathSyntaxError(f"{name}() takes {arity} argument(s), got {len(args)}")
    return FunctionCall(name, tuple(args))


def _parse_function_arg(tokens: _Tokens, function: str) -> Expr:
    if function in ("not",):
        return _parse_expr(tokens)
    return _parse_operand(tokens)
