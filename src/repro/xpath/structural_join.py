"""Stack-based structural join [1] over containment labels.

The comparator strategy the paper's introduction discusses: containment
(pre/post) labels make ancestor–descendant joins a merge ("structural
joins: a primitive for efficient XML query pattern matching",
Al-Khalifa et al., ICDE 2002) — at the cost of update-hostile labels
(see :mod:`repro.ids.prepost`).

:func:`stack_tree_desc` is the Stack-Tree-Desc algorithm: given an
ancestor list and a descendant list, both sorted by ``pre``, it produces
all containment pairs in one merge pass with a stack of open ancestors.
:func:`containment_query` runs an ``//a//d`` query against a store by
building the element label lists on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ids.prepost import PrePostLabel
from repro.xmltoken.tokens import TokenKind


@dataclass(frozen=True)
class LabeledElement:
    """An element with its containment label and store node id.

    The label uses *region* numbering: a single counter ticks on every
    element begin **and** end, giving each element an interval
    ``(start, end)`` with ``a`` containing ``d`` iff
    ``a.start < d.start`` and ``d.end < a.end``.  Region numbering is what
    makes the stack-tree merge's "finished ancestor" test
    (``top.end < next.start``) sound; the separate pre-/post-order
    counters of :mod:`repro.ids.prepost` satisfy the same containment
    predicate but not that test.  ``PrePostLabel`` is reused as the
    interval container (pre = start, post = end).
    """

    name: str
    label: PrePostLabel
    node_id: int


def label_elements(store) -> Dict[str, List[LabeledElement]]:
    """One scan: region labels + node ids for every element, grouped by
    tag name, each group sorted by ``start`` (document order)."""
    groups: Dict[str, List[LabeledElement]] = {}
    open_stack: List[Tuple[str, int, int]] = []  # (name, start, node_id)
    counter = 0
    for item in store.locator.scan():
        kind = item.token.kind
        if kind == TokenKind.BEGIN_ELEMENT:
            assert item.last_id is not None
            open_stack.append((item.token.name, counter, item.last_id))
            counter += 1
        elif kind == TokenKind.END_ELEMENT:
            name, start, node_id = open_stack.pop()
            element = LabeledElement(name, PrePostLabel(start, counter), node_id)
            groups.setdefault(name, []).append(element)
            counter += 1
    for elements in groups.values():
        elements.sort(key=lambda e: e.label.pre)
    return groups


def stack_tree_desc(
    ancestors: List[LabeledElement], descendants: List[LabeledElement]
) -> List[Tuple[LabeledElement, LabeledElement]]:
    """Stack-Tree-Desc: all (ancestor, descendant) containment pairs.

    Both inputs must be sorted by ``pre``.  Output is sorted by
    (descendant.pre, ancestor.pre) — the natural order the algorithm
    produces.
    """
    pairs: List[Tuple[LabeledElement, LabeledElement]] = []
    stack: List[LabeledElement] = []
    a_index = d_index = 0
    while a_index < len(ancestors) or d_index < len(descendants):
        if a_index < len(ancestors) and (
            d_index >= len(descendants)
            or ancestors[a_index].label.pre < descendants[d_index].label.pre
        ):
            nxt = ancestors[a_index]
            # pop finished ancestors (their subtree ended before nxt)
            while stack and stack[-1].label.post < nxt.label.pre:
                stack.pop()
            stack.append(nxt)
            a_index += 1
        else:
            descendant = descendants[d_index]
            while stack and stack[-1].label.post < descendant.label.pre:
                stack.pop()
            for ancestor in stack:
                if ancestor.label.contains(descendant.label):
                    pairs.append((ancestor, descendant))
            d_index += 1
    return pairs


def containment_query(
    store, ancestor_name: str, descendant_name: str
) -> List[Tuple[int, int]]:
    """Evaluate ``//ancestor_name//descendant_name``; returns (ancestor
    node id, descendant node id) pairs."""
    groups = label_elements(store)
    ancestors = groups.get(ancestor_name, [])
    descendants = groups.get(descendant_name, [])
    return [
        (a.node_id, d.node_id)
        for a, d in stack_tree_desc(ancestors, descendants)
    ]
