"""XPath subset: navigational evaluator + structural-join baseline."""

from repro.xpath.ast import Axis, NodeTest, Path, Step, TestKind
from repro.xpath.evaluator import XPathNode, build_view, evaluate
from repro.xpath.parser import parse
from repro.xpath.structural_join import (
    LabeledElement,
    containment_query,
    label_elements,
    stack_tree_desc,
)

__all__ = [
    "Axis",
    "LabeledElement",
    "NodeTest",
    "Path",
    "Step",
    "TestKind",
    "XPathNode",
    "build_view",
    "containment_query",
    "evaluate",
    "label_elements",
    "parse",
    "stack_tree_desc",
]
