"""Command-line interface: operate a directory-backed store from a shell.

Usage::

    python -m repro.cli <store-dir> <command> [args...]

Commands:

    load <file.xml | ->        bulk-insert a document (- reads stdin)
    read [node-id]             serialize the store or one subtree
    xpath <expression>         evaluate an XPath query
    insert-last <id> <xml>     insert as last child of node <id>
    insert-before <id> <xml>   insert as preceding sibling
    delete <id>                delete a node (and subtree)
    replace <id> <xml>         replace a node
    ranges                     show the Range Index snapshot (Tables 2-3)
    stats [--json|--prometheus|--top]
                               show store statistics (human summary by
                               default; machine formats for scripts)
    trace [--limit N]          dump recorded spans as JSON lines
    explain <op> [args...]     run one operation and report its access
                               path, blocks touched and tokens replayed
    profile <op> [args...]     run one operation and report where its
                               cost went (call tree, component table;
                               --format top|collapsed|speedscope|
                               components|json, --sample for the
                               wall-clock stack sampler)
    heatmap [--top N]          per-block access counts and hot ranges
    compact                    merge adjacent ranges
    verify [--json]            run every integrity check and report each
    scrub [--budget N] [--json]
                               out-of-band checksum verification of every
                               owned block against the raw device image
                               (read-only; bad blocks exit 2)
    repair [--json]            self-healing repair: full-log rebuild when
                               the WAL is usable, structural salvage
                               otherwise (degraded result exits 1)
    torture [--seed N] [--ops N] [--crash-points N] [--json]
                               crash-consistency torture: enumerate every
                               crash point of a seeded workload, crash at
                               each, recover and verify (in-memory; the
                               store directory is left untouched)
    monitor [--window N] [--json]
                               show the workload-history timeline:
                               snapshots, the current fingerprint and the
                               rolling drift series
    advise [--window N] [--json]
                               run the tuning advisor over the workload
                               history; every recommendation carries its
                               evidence and a what-if cost estimate

``trace``, ``explain``, ``profile``, ``heatmap``, ``verify``, ``scrub``,
``repair``, ``monitor`` and ``advise`` accept ``--output FILE`` to write
the report to a file instead of stdout; an unwritable path exits
non-zero.  The global
``--verbose`` flag turns on the ``repro.*`` log hierarchy on stderr.

Exit codes distinguish *how bad* things are (mirroring
``tools/bench_compare.py``): **0** clean, **1** degraded — the store
works but something was lost or needs attention (``repair`` that could
not save every record, ``verify`` on a store carrying a degraded-repair
sidecar), **2** corrupt — verification failed outright (``scrub``
finding bad blocks, ``verify`` with failing checks, an unrepairable
store).

Every invocation opens the store, applies the command, checkpoints and
closes — so the directory is always consistent afterwards.  The CLI
opens stores with telemetry, the event log, the heatmap and workload
history enabled, so ``stats``/``trace``/``explain``/``heatmap``/
``monitor``/``advise`` always have data for the work the invocation
itself performed — and, because the history persists to
``store.history.jsonl``, for every earlier invocation too.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.errors import ReproError, StoreCorruptError, StoreDegradedError
from repro.core.config import StoreConfig
from repro.core.filestore import close_directory, open_directory
from repro.log import install_handler


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Adaptive XML store (Duda & Kossmann, SIGMOD 2005)",
    )
    parser.add_argument("store", help="store directory (created on demand)")
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log repro.* debug output to stderr",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    load = commands.add_parser("load", help="bulk-insert a document")
    load.add_argument("source", help="XML file path, or - for stdin")

    read = commands.add_parser("read", help="serialize the store or a node")
    read.add_argument("node_id", nargs="?", type=int)
    read.add_argument("--pretty", action="store_true", help="indent output")

    xpath = commands.add_parser("xpath", help="evaluate an XPath query")
    xpath.add_argument("expression")

    insert_last = commands.add_parser("insert-last", help="insert as last child")
    insert_last.add_argument("node_id", type=int)
    insert_last.add_argument("xml")

    insert_before = commands.add_parser("insert-before", help="insert before")
    insert_before.add_argument("node_id", type=int)
    insert_before.add_argument("xml")

    delete = commands.add_parser("delete", help="delete a node")
    delete.add_argument("node_id", type=int)

    replace = commands.add_parser("replace", help="replace a node")
    replace.add_argument("node_id", type=int)
    replace.add_argument("xml")

    commands.add_parser("ranges", help="show the Range Index snapshot")

    stats = commands.add_parser("stats", help="show store statistics")
    stats_format = stats.add_mutually_exclusive_group()
    stats_format.add_argument(
        "--json", action="store_true", help="flat JSON metrics snapshot"
    )
    stats_format.add_argument(
        "--prometheus", action="store_true", help="Prometheus text format"
    )
    stats_format.add_argument(
        "--top", action="store_true", help="top-style span/metric summary"
    )

    trace = commands.add_parser("trace", help="dump recorded spans (JSON lines)")
    trace.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        help="only the most recent N spans",
    )
    trace.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    explain = commands.add_parser(
        "explain",
        help="run one operation and report its access path",
        description=(
            "Runs <op> exactly like the plain command would, and reports "
            "which access path it took (partial-index hit, full-index "
            "probe, range scan), the blocks and tokens it touched, and a "
            "per-stage cost breakdown."
        ),
    )
    explain.add_argument(
        "op", help="operation to explain: read, xpath, insert-last, ..."
    )
    explain.add_argument(
        "op_args", nargs="*", help="the operation's own arguments"
    )
    explain.add_argument(
        "--json", action="store_true", help="full report as JSON"
    )
    explain.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    profile = commands.add_parser(
        "profile",
        help="run one operation and report where its cost went",
        description=(
            "Runs <op> exactly like the plain command would, and reports "
            "a deterministic cost profile: the span call tree and a per-"
            "component table on both the simulated and the wall axis.  "
            "--sample switches to the statistical wall-clock stack "
            "sampler (collapsed/speedscope formats only)."
        ),
    )
    profile.add_argument(
        "op", help="operation to profile: read, xpath, insert-last, ..."
    )
    profile.add_argument(
        "op_args", nargs="*", help="the operation's own arguments"
    )
    profile.add_argument(
        "--format",
        choices=("top", "collapsed", "speedscope", "components", "json"),
        default="top",
        help="output shape (default: pstats-style top table)",
    )
    profile.add_argument(
        "--axis",
        choices=("simulated", "wall"),
        default="simulated",
        help="which clock weights collapsed/speedscope output",
    )
    profile.add_argument(
        "--sample",
        action="store_true",
        help="use the wall-clock stack sampler instead of span folding",
    )
    profile.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    heatmap = commands.add_parser(
        "heatmap", help="per-block access counts and hot ranges"
    )
    heatmap.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        help="rows per section (default 10)",
    )
    heatmap.add_argument(
        "--xpath",
        default=None,
        metavar="EXPR",
        help="evaluate EXPR first so the heatmap shows that query's accesses",
    )
    heatmap.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    heatmap.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    commands.add_parser("compact", help="merge adjacent ranges")

    verify = commands.add_parser(
        "verify",
        help="run every integrity check and report each",
        description=(
            "Runs every store invariant check (layout, range-index, "
            "id-density, partial-memo, block-checksum, quarantine) and "
            "reports each individually."
        ),
        epilog=(
            "exit codes: 0 = every check passed and no degraded-repair "
            "sidecar; 1 = checks pass but the store carries a "
            "store.repair.json sidecar (an earlier repair lost data); "
            "2 = one or more checks failed (corrupt)"
        ),
    )
    verify.add_argument(
        "--json", action="store_true", help="per-check report as JSON"
    )
    verify.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    scrub = commands.add_parser(
        "scrub",
        help="verify every owned block's checksum against the raw device",
        description=(
            "Walks every block the store owns (data chain + index trees) "
            "and verifies each raw device image's checksum frame out-of-"
            "band, bypassing the buffer pool cache.  Read-only: nothing "
            "is modified (bad blocks are reported, and would be "
            "quarantined by a running store).  Vacuous on legacy "
            "no-checksum stores."
        ),
        epilog="exit codes: 0 = all blocks verify; 2 = bad block(s) found",
    )
    scrub.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        metavar="N",
        help="verify in incremental steps of N blocks (default: one pass)",
    )
    scrub.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    scrub.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    repair = commands.add_parser(
        "repair",
        help="self-heal the store around checksum-dead blocks",
        description=(
            "Tries a full-log rebuild first (the WAL holds the complete "
            "operation history, so a readable log recovers everything); "
            "falls back to structural salvage: surviving records are "
            "re-chained, provable id prefixes/suffixes are reassigned, "
            "ambiguous runs are dropped and every derived structure "
            "(range index, partial memos, full index) is rebuilt.  A "
            "degraded salvage writes a store.repair.json sidecar that "
            "'verify' reports as exit 1."
        ),
        epilog=(
            "exit codes: 0 = fully recovered; 1 = repaired but degraded "
            "(data provably lost); 2 = repair could not restore integrity"
        ),
    )
    repair.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    repair.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    torture = commands.add_parser(
        "torture",
        help="crash-consistency torture: crash at every I/O point, verify recovery",
        description=(
            "Generates a seeded workload, enumerates every crash point it "
            "exposes (block writes, per-block fsync flushes, WAL frame "
            "appends), replays the workload once per point with a "
            "simulated crash there, recovers, and verifies the result "
            "against an oracle run plus every integrity invariant.  Runs "
            "entirely on in-memory stores; the store directory is left "
            "untouched.  Exits non-zero if any crash point fails."
        ),
    )
    torture.add_argument(
        "--seed", type=int, default=0, help="workload + fault seed (default 0)"
    )
    torture.add_argument(
        "--ops",
        type=_positive_int,
        default=30,
        help="mutating operations in the workload (default 30)",
    )
    torture.add_argument(
        "--workload",
        choices=("mixed", "insert"),
        default="mixed",
        help="mixed random updates, or the Table-5 insert stream",
    )
    from repro.storage.faults import fault_classes_help

    torture.add_argument(
        "--fault-classes",
        default="all",
        metavar="LIST",
        help=(
            "comma list of fault classes, or all (crash classes) / none. "
            + fault_classes_help()
        ),
    )
    torture.add_argument(
        "--media-rate",
        type=float,
        default=None,
        metavar="P",
        help=(
            "per-flush probability of injecting an enabled media fault "
            "(default 0.05; only meaningful with bitrot / lost_write / "
            "misdirect classes)"
        ),
    )
    torture.add_argument(
        "--crash-points",
        type=_positive_int,
        default=None,
        metavar="N",
        help="test at most N points (seeded sample; default: all of them)",
    )
    torture.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    torture.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    monitor = commands.add_parser(
        "monitor",
        help="show the workload-history timeline and drift",
        description=(
            "Reads the store's workload history (periodic counter-delta "
            "snapshots persisted in store.history.jsonl) and shows the "
            "timeline, the current workload fingerprint and the rolling "
            "drift series (0 = steady workload, 1 = completely changed)."
        ),
    )
    monitor.add_argument(
        "--window",
        type=_positive_int,
        default=4,
        help="snapshots per drift window (default 4)",
    )
    monitor.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    monitor.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    advise = commands.add_parser(
        "advise",
        help="run the tuning advisor over the workload history",
        description=(
            "Runs the rule-based tuning advisor: recommendations to "
            "split/merge range granularity, resize the partial index, "
            "grow the buffer pool or compact, each backed by the history "
            "counters that triggered it and a what-if simulated-cost "
            "estimate from the store's own cost model.  Vacuous (zero "
            "recommendations, reason stated) without enough evidence."
        ),
    )
    advise.add_argument(
        "--window",
        type=_positive_int,
        default=4,
        help="snapshots per drift window (default 4)",
    )
    advise.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    advise.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )
    return parser


def run(argv: Optional[List[str]] = None, stdin=None) -> str:
    """Execute one CLI invocation; returns the text that was printed."""
    arguments = build_parser().parse_args(argv)
    if arguments.verbose:
        install_handler(logging.DEBUG)
    stdin = stdin if stdin is not None else sys.stdin
    if arguments.command == "torture":
        # torture runs on throwaway in-memory stores: never open (or
        # mutate) the user's store directory
        return _run_torture(arguments)
    if arguments.command == "scrub":
        # scrub is read-only and must see the *device* images, not a
        # replayed store: never go through open/close (which replays the
        # WAL and checkpoints on close)
        return _run_scrub(arguments)
    if arguments.command == "repair":
        # repair manages the directory's files itself (and must open in
        # repair mode: a normal open would choke on the corruption)
        return _run_repair(arguments)
    store = open_directory(
        arguments.store,
        config=StoreConfig(
            telemetry_enabled=True,
            events_enabled=True,
            heatmap_enabled=True,
            profiling_enabled=True,
            history_enabled=True,
        ),
    )
    try:
        output = _dispatch(store, arguments, stdin)
    finally:
        close_directory(arguments.store, store)
    return output


def _deliver(text: str, output_path: Optional[str]) -> str:
    """Print-or-write plumbing shared by trace/explain/heatmap."""
    if output_path is None:
        return text
    try:
        with open(output_path, "w") as handle:
            handle.write(text + "\n")
    except OSError as error:
        raise ReproError(f"cannot write {output_path}: {error}") from error
    return f"wrote {output_path}"


def _run_torture(arguments) -> str:
    from repro.storage.faults import FaultConfig
    from repro.testing.torture import TortureConfig, run_torture

    fault_classes = FaultConfig.from_classes(
        arguments.fault_classes, media_fault_rate=arguments.media_rate
    )
    config = TortureConfig(
        seed=arguments.seed,
        ops=arguments.ops,
        workload=arguments.workload,
        torn_page_writes=fault_classes.torn_page_writes,
        torn_wal_appends=fault_classes.torn_wal_appends,
        reorder_sync=fault_classes.reorder_sync,
        bitrot=fault_classes.bitrot,
        lost_writes=fault_classes.lost_writes,
        misdirected_writes=fault_classes.misdirected_writes,
        media_fault_rate=fault_classes.media_fault_rate,
        crash_points=arguments.crash_points,
    )
    report = run_torture(config)
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render()
    delivered = _deliver(text, arguments.output)
    if not report.ok:
        # the report was delivered (file written) before failing
        raise ReproError(
            f"torture failed at {len(report.failures)} of "
            f"{report.tested_points} tested case(s) (seed {config.seed})"
        )
    return delivered


def _run_scrub(arguments) -> str:
    import os

    from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
    from repro.core.store import XMLStore
    from repro.storage.disk import FileBlockDevice, InstrumentedDevice
    from repro.storage.scrub import scrub_store

    config = StoreConfig()
    catalog_path = os.path.join(arguments.store, CATALOG_FILE)
    device_path = os.path.join(arguments.store, DEVICE_FILE)
    if not (os.path.exists(catalog_path) and os.path.exists(device_path)):
        raise ReproError(
            f"{arguments.store}: not a store directory (no catalog/device)"
        )
    with open(catalog_path, "rb") as handle:
        catalog = handle.read()
    device = InstrumentedDevice(
        FileBlockDevice(device_path, block_size=config.page_size),
        cost_model=config.cost_model,
    )
    try:
        store = XMLStore.from_catalog(
            device, catalog, config=config, repair_mode=True
        )
        report = scrub_store(store, blocks_per_call=arguments.budget)
    finally:
        device.close()
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render()
    delivered = _deliver(text, arguments.output)
    if not report.ok:
        # the report was delivered (file written) before failing
        raise StoreCorruptError(
            f"scrub found {len(report.issues)} bad block(s): "
            f"{report.bad_blocks()}"
        )
    return delivered


def _run_repair(arguments) -> str:
    from repro.core.repair import repair_directory

    report = repair_directory(arguments.store, config=StoreConfig())
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render()
    delivered = _deliver(text, arguments.output)
    if not report.integrity_ok:
        raise StoreCorruptError(
            "repair could not restore integrity (see report)"
        )
    if report.degraded:
        raise StoreDegradedError(
            f"store repaired but degraded: {report.lost_ids} id(s) lost, "
            f"{report.records_dropped} ambiguous record(s) dropped, "
            f"{report.skipped_ops} WAL op(s) skipped"
        )
    return delivered


def _dispatch(store, arguments, stdin) -> str:
    command = arguments.command
    if command == "load":
        if arguments.source == "-":
            text = stdin.read()
        else:
            with open(arguments.source) as handle:
                text = handle.read()
        first_id = store.load_document(text)
        return f"loaded; first node id = {first_id}"
    if command == "read":
        from repro.xmltoken.parser import tokenize_fragment
        from repro.xmltoken.serializer import serialize

        text = store.read(arguments.node_id)
        if arguments.pretty and text:
            text = serialize(tokenize_fragment(text), indent="  ")
        return text
    if command == "xpath":
        results = store.xpath(arguments.expression)
        lines = [f"{len(results)} match(es)"]
        lines.extend(f"#{node.node_id}\t{node.xml()}" for node in results)
        return "\n".join(lines)
    if command == "insert-last":
        first_id = store.insert_into_last(arguments.node_id, arguments.xml)
        return f"inserted; first node id = {first_id}"
    if command == "insert-before":
        first_id = store.insert_before(arguments.node_id, arguments.xml)
        return f"inserted; first node id = {first_id}"
    if command == "delete":
        store.delete_node(arguments.node_id)
        return f"deleted node {arguments.node_id}"
    if command == "replace":
        first_id = store.replace_node(arguments.node_id, arguments.xml)
        return f"replaced; new node id = {first_id}"
    if command == "ranges":
        lines = ["RangeId  BlockId  StartId  EndId"]
        for range_id, block_id, start_id, end_id in store.range_snapshot():
            lines.append(
                f"{range_id:>7}  {block_id:>7}  {str(start_id):>7}  {str(end_id):>5}"
            )
        return "\n".join(lines)
    if command == "stats":
        from repro.obs.bridge import snapshot_families, store_families
        from repro.obs.exporters import prometheus_text, render_top

        if arguments.json:
            snapshot = snapshot_families(store_families(store))
            return json.dumps(snapshot.values, indent=2, sort_keys=True)
        if arguments.prometheus:
            return prometheus_text(store_families(store)).rstrip("\n")
        if arguments.top:
            return render_top(store_families(store)).rstrip("\n")
        return store.stats.summary()
    if command == "trace":
        from repro.obs.exporters import events_jsonl

        events = store.telemetry.events()
        if arguments.limit is not None:
            events = events[-arguments.limit :]
        return _deliver(events_jsonl(events).rstrip("\n"), arguments.output)
    if command == "explain":
        from repro.obs.explain import explain_operation

        report = explain_operation(store, arguments.op, arguments.op_args)
        if arguments.json:
            text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        else:
            text = report.render()
        return _deliver(text, arguments.output)
    if command == "profile":
        from repro.obs.explain import run_operation
        from repro.obs.profile_export import (
            collapsed_stacks,
            render_profile_top,
            speedscope_json,
        )
        from repro.obs.profiler import profile_operation

        if arguments.sample:
            from repro.obs.sampler import StackSampler

            if arguments.format not in ("collapsed", "speedscope"):
                raise ReproError(
                    "--sample emits raw stacks; use --format collapsed "
                    "or speedscope"
                )
            with StackSampler(store.config.sampler_interval) as sampler:
                run_operation(store, arguments.op, arguments.op_args)
            if arguments.format == "collapsed":
                text = sampler.collapsed().rstrip("\n")
            else:
                text = sampler.speedscope_json(
                    name=f"{arguments.op} (sampled)"
                )
            return _deliver(text, arguments.output)
        profile = profile_operation(store, arguments.op, arguments.op_args)
        if arguments.format == "collapsed":
            text = collapsed_stacks(profile, axis=arguments.axis).rstrip("\n")
        elif arguments.format == "components":
            text = collapsed_stacks(
                profile, axis=arguments.axis, by="component"
            ).rstrip("\n")
        elif arguments.format == "speedscope":
            text = speedscope_json(
                profile, name=arguments.op, axis=arguments.axis
            )
        elif arguments.format == "json":
            text = json.dumps(profile.to_dict(), indent=2, sort_keys=True)
        else:
            text = render_profile_top(profile)
        return _deliver(text, arguments.output)
    if command == "heatmap":
        from repro.obs.heatmap import heatmap_json, render_heatmap

        if arguments.xpath is not None:
            for node in store.xpath(arguments.xpath):
                node.xml()  # serialize so per-node locates hit the heatmap
        if arguments.json:
            text = heatmap_json(store, top=arguments.top)
        else:
            text = render_heatmap(store, top=arguments.top).rstrip("\n")
        return _deliver(text, arguments.output)
    if command == "compact":
        report = store.compact()
        return (
            f"compacted: {report.ranges_before} -> {report.ranges_after} "
            f"ranges ({report.merges} merges)"
        )
    if command == "verify":
        from repro.core.integrity import integrity_report
        from repro.core.repair import read_sidecar

        report = integrity_report(store)
        sidecar = read_sidecar(arguments.store)
        if arguments.json:
            payload = report.to_dict()
            if sidecar is not None:
                payload["degraded_repair"] = sidecar
            text = json.dumps(payload, indent=2, sort_keys=True)
        else:
            text = report.render()
            if sidecar is not None:
                text += (
                    "\nDEGRADED: an earlier repair lost data "
                    f"(lost_ids={sidecar.get('lost_ids', '?')}); "
                    "see store.repair.json"
                )
        delivered = _deliver(text, arguments.output)
        if not report.ok:
            # the report was delivered (file written) before failing
            names = ", ".join(check.name for check in report.failed())
            raise StoreCorruptError(f"integrity check(s) failed: {names}")
        if sidecar is not None:
            raise StoreDegradedError(
                "store verifies but an earlier repair lost data "
                "(store.repair.json present)"
            )
        return delivered
    if command == "monitor":
        from repro.obs.fingerprint import drift_series, fingerprint_window
        from repro.obs.schema import stamp

        snapshots = store.history.snapshots()
        finger = fingerprint_window(snapshots)
        drift = drift_series(snapshots, window=arguments.window)
        if arguments.json:
            payload = stamp(
                {
                    "snapshots": [snap.to_dict() for snap in snapshots],
                    "fingerprint": finger.to_dict() if finger else None,
                    "drift": drift,
                }
            )
            text = json.dumps(payload, indent=2, sort_keys=True)
        else:
            lines = [f"workload history: {len(snapshots)} snapshot(s)"]
            for snap in snapshots:
                lines.append(
                    f"  #{snap.seq:<4} {snap.label:<12} "
                    f"ops={snap.operations:<8} "
                    f"simulated={snap.simulated_seconds:.4f}s"
                    + (f"  (x{snap.merged} merged)" if snap.merged > 1 else "")
                )
            if finger is not None:
                lines.append("fingerprint")
                for key, value in finger.to_dict().items():
                    lines.append(f"  {key:<20} {value:.4f}")
            if drift:
                lines.append("drift (rolling windows)")
                for point in drift:
                    lines.append(
                        f"  up to #{point['seq']:<4} drift={point['drift']:.3f}"
                    )
            text = "\n".join(lines)
        return _deliver(text, arguments.output)
    if command == "advise":
        from repro.obs.advisor import advise as run_advisor

        report = run_advisor(store, window=arguments.window)
        if arguments.json:
            text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        else:
            text = report.render()
        return _deliver(text, arguments.output)
    raise AssertionError(f"unhandled command {command}")  # pragma: no cover


def main() -> int:  # pragma: no cover - thin wrapper
    try:
        print(run())
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        # 1 = degraded-but-working, 2 = corrupt (ChecksumError,
        # StoreCorruptError); see the module docstring
        return getattr(error, "exit_code", 1)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
