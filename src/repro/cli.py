"""Command-line interface: operate a directory-backed store from a shell.

Usage::

    python -m repro.cli <store-dir> <command> [args...]

Commands:

    load <file.xml | ->        bulk-insert a document (- reads stdin)
    read [node-id]             serialize the store or one subtree
    xpath <expression>         evaluate an XPath query
    insert-last <id> <xml>     insert as last child of node <id>
    insert-before <id> <xml>   insert as preceding sibling
    delete <id>                delete a node (and subtree)
    replace <id> <xml>         replace a node
    ranges                     show the Range Index snapshot (Tables 2-3)
    stats [--json|--prometheus|--top]
                               show store statistics (human summary by
                               default; machine formats for scripts)
    trace [--limit N]          dump recorded spans as JSON lines
    explain <op> [args...]     run one operation and report its access
                               path, blocks touched and tokens replayed
    profile <op> [args...]     run one operation and report where its
                               cost went (call tree, component table;
                               --format top|collapsed|speedscope|
                               components|json, --sample for the
                               wall-clock stack sampler)
    heatmap [--top N]          per-block access counts and hot ranges
    compact                    merge adjacent ranges
    verify [--json]            run every integrity check and report each
    scrub [--budget N] [--json]
                               out-of-band checksum verification of every
                               owned block against the raw device image
                               (read-only; bad blocks exit 2)
    repair [--json]            self-healing repair: full-log rebuild when
                               the WAL is usable, structural salvage
                               otherwise (degraded result exits 1)
    torture [--seed N] [--ops N] [--crash-points N] [--json]
                               crash-consistency torture: enumerate every
                               crash point of a seeded workload, crash at
                               each, recover and verify (in-memory; the
                               store directory is left untouched)
    monitor [--window N] [--json]
                               show the workload-history timeline:
                               snapshots, the current fingerprint and the
                               rolling drift series
    advise [--window N] [--json]
                               run the tuning advisor over the workload
                               history; every recommendation carries its
                               evidence and a what-if cost estimate
    alerts [--json]            evaluate the deterministic alert rules
                               and list the currently-firing alerts
                               (critical exits 2, warning exits 1)
    health [--json]            composite health verdict (integrity,
                               quarantine, checksums, repair sidecar,
                               scrub recency, WAL growth, drift, SLOs)
                               with verify's 0/1/2 exit-code scheme
    watch [--interval F] [--iterations N] [--top N]
                               live top-style view: tails the history
                               and alert files without opening the
                               store, so it can run next to a workload
    diagnose [--incident NAME] [--json]
                               post-mortem timeline + root cause from
                               persisted artifacts alone (alert log,
                               history, repair sidecar, incident
                               bundles); never opens the store
    bundle [--json] [--output FILE.tar]
                               pack every observability artifact plus a
                               fresh diagnosis into one portable,
                               deterministic support tarball
    serve [--host H] [--port N] [--seed N]
                               serve the store to concurrent clients
                               over TCP (newline-delimited JSON)
    client --port N [--retries N] [--retry-backoff F] [PROGRAM]
                               submit one session (or --ping/--stats/
                               --shutdown) to a running server, with
                               capped reconnect on dropped connections
    replicate <replica-dir> [--channel-faults CLASSES] [--seed N]
                               catch a read replica up to this store's
                               change stream: idempotent resumable
                               apply, seeded channel faults, bounded
                               retry/backoff, digest-checked with
                               auto-resync on divergence
    lag [--json]               per-replica lag from the registry and
                               checkpoints (files only; stale exits 1)

``trace``, ``explain``, ``profile``, ``heatmap``, ``verify``, ``scrub``,
``repair``, ``monitor``, ``advise``, ``alerts``, ``health``,
``diagnose``, ``replicate`` and ``lag`` accept ``--output FILE`` to
write the report to a file
instead of stdout; an unwritable path exits non-zero.  The global
``--verbose`` flag turns on the ``repro.*`` log hierarchy on stderr.

Exit codes distinguish *how bad* things are (mirroring
``tools/bench_compare.py``; the canonical table lives in README.md):
**0** clean, **1** degraded — the store works but something was lost or
needs attention (``repair`` that could not save every record,
``verify`` on a store carrying a degraded-repair sidecar, ``diagnose``
over incidents a clean repair resolved), **2** corrupt — verification
failed outright (``scrub`` finding bad blocks, ``verify`` with failing
checks, an unrepairable store, ``diagnose`` over unresolved incidents).

Every invocation opens the store, applies the command, checkpoints and
closes — so the directory is always consistent afterwards.  The CLI
opens stores with telemetry, the event log, the heatmap, workload
history, the alert engine and the flight recorder enabled, so
``stats``/``trace``/``explain``/``heatmap``/``monitor``/``advise``/
``alerts``/``health`` always have data for the work the invocation
itself performed — and, because the history and alert logs persist to
``store.history.jsonl`` and ``store.alerts.jsonl`` and incident
bundles to ``store.incidents/``, for every earlier invocation too.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.errors import ReproError, StoreCorruptError, StoreDegradedError
from repro.core.config import StoreConfig
from repro.core.filestore import close_directory, open_directory
from repro.log import install_handler


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Adaptive XML store (Duda & Kossmann, SIGMOD 2005)",
    )
    parser.add_argument("store", help="store directory (created on demand)")
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log repro.* debug output to stderr",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    load = commands.add_parser("load", help="bulk-insert a document")
    load.add_argument("source", help="XML file path, or - for stdin")

    read = commands.add_parser("read", help="serialize the store or a node")
    read.add_argument("node_id", nargs="?", type=int)
    read.add_argument("--pretty", action="store_true", help="indent output")

    xpath = commands.add_parser("xpath", help="evaluate an XPath query")
    xpath.add_argument("expression")

    insert_last = commands.add_parser("insert-last", help="insert as last child")
    insert_last.add_argument("node_id", type=int)
    insert_last.add_argument("xml")

    insert_before = commands.add_parser("insert-before", help="insert before")
    insert_before.add_argument("node_id", type=int)
    insert_before.add_argument("xml")

    delete = commands.add_parser("delete", help="delete a node")
    delete.add_argument("node_id", type=int)

    replace = commands.add_parser("replace", help="replace a node")
    replace.add_argument("node_id", type=int)
    replace.add_argument("xml")

    ranges = commands.add_parser("ranges", help="show the Range Index snapshot")
    ranges.add_argument(
        "--json", action="store_true", help="snapshot as stamped JSON"
    )

    stats = commands.add_parser("stats", help="show store statistics")
    stats_format = stats.add_mutually_exclusive_group()
    stats_format.add_argument(
        "--json", action="store_true", help="flat JSON metrics snapshot"
    )
    stats_format.add_argument(
        "--prometheus", action="store_true", help="Prometheus text format"
    )
    stats_format.add_argument(
        "--top", action="store_true", help="top-style span/metric summary"
    )

    trace = commands.add_parser("trace", help="dump recorded spans (JSON lines)")
    trace.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        help="only the most recent N spans",
    )
    trace.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    explain = commands.add_parser(
        "explain",
        help="run one operation and report its access path",
        description=(
            "Runs <op> exactly like the plain command would, and reports "
            "which access path it took (partial-index hit, full-index "
            "probe, range scan), the blocks and tokens it touched, and a "
            "per-stage cost breakdown."
        ),
    )
    explain.add_argument(
        "op", help="operation to explain: read, xpath, insert-last, ..."
    )
    explain.add_argument(
        "op_args", nargs="*", help="the operation's own arguments"
    )
    explain.add_argument(
        "--json", action="store_true", help="full report as JSON"
    )
    explain.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    profile = commands.add_parser(
        "profile",
        help="run one operation and report where its cost went",
        description=(
            "Runs <op> exactly like the plain command would, and reports "
            "a deterministic cost profile: the span call tree and a per-"
            "component table on both the simulated and the wall axis.  "
            "--sample switches to the statistical wall-clock stack "
            "sampler (collapsed/speedscope formats only)."
        ),
    )
    profile.add_argument(
        "op", help="operation to profile: read, xpath, insert-last, ..."
    )
    profile.add_argument(
        "op_args", nargs="*", help="the operation's own arguments"
    )
    profile.add_argument(
        "--format",
        choices=("top", "collapsed", "speedscope", "components", "json"),
        default="top",
        help="output shape (default: pstats-style top table)",
    )
    profile.add_argument(
        "--axis",
        choices=("simulated", "wall"),
        default="simulated",
        help="which clock weights collapsed/speedscope output",
    )
    profile.add_argument(
        "--sample",
        action="store_true",
        help="use the wall-clock stack sampler instead of span folding",
    )
    profile.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    heatmap = commands.add_parser(
        "heatmap", help="per-block access counts and hot ranges"
    )
    heatmap.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        help="rows per section (default 10)",
    )
    heatmap.add_argument(
        "--xpath",
        default=None,
        metavar="EXPR",
        help="evaluate EXPR first so the heatmap shows that query's accesses",
    )
    heatmap.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    heatmap.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    commands.add_parser("compact", help="merge adjacent ranges")

    verify = commands.add_parser(
        "verify",
        help="run every integrity check and report each",
        description=(
            "Runs every store invariant check (layout, range-index, "
            "id-density, partial-memo, block-checksum, quarantine) and "
            "reports each individually."
        ),
        epilog=(
            "exit codes: 0 = every check passed and no degraded-repair "
            "sidecar; 1 = checks pass but the store carries a "
            "store.repair.json sidecar (an earlier repair lost data); "
            "2 = one or more checks failed (corrupt).  See the canonical "
            "exit-code table in README.md."
        ),
    )
    verify.add_argument(
        "--json", action="store_true", help="per-check report as JSON"
    )
    verify.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    scrub = commands.add_parser(
        "scrub",
        help="verify every owned block's checksum against the raw device",
        description=(
            "Walks every block the store owns (data chain + index trees) "
            "and verifies each raw device image's checksum frame out-of-"
            "band, bypassing the buffer pool cache.  Read-only: nothing "
            "is modified (bad blocks are reported, and would be "
            "quarantined by a running store).  Vacuous on legacy "
            "no-checksum stores."
        ),
        epilog=(
            "exit codes: 0 = all blocks verify; 2 = bad block(s) found.  "
            "See the canonical exit-code table in README.md."
        ),
    )
    scrub.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        metavar="N",
        help="verify in incremental steps of N blocks (default: one pass)",
    )
    scrub.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    scrub.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    repair = commands.add_parser(
        "repair",
        help="self-heal the store around checksum-dead blocks",
        description=(
            "Tries a full-log rebuild first (the WAL holds the complete "
            "operation history, so a readable log recovers everything); "
            "falls back to structural salvage: surviving records are "
            "re-chained, provable id prefixes/suffixes are reassigned, "
            "ambiguous runs are dropped and every derived structure "
            "(range index, partial memos, full index) is rebuilt.  A "
            "degraded salvage writes a store.repair.json sidecar that "
            "'verify' reports as exit 1."
        ),
        epilog=(
            "exit codes: 0 = fully recovered; 1 = repaired but degraded "
            "(data provably lost); 2 = repair could not restore "
            "integrity.  See the canonical exit-code table in README.md."
        ),
    )
    repair.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    repair.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    torture = commands.add_parser(
        "torture",
        help="crash-consistency torture: crash at every I/O point, verify recovery",
        description=(
            "Generates a seeded workload, enumerates every crash point it "
            "exposes (block writes, per-block fsync flushes, WAL frame "
            "appends), replays the workload once per point with a "
            "simulated crash there, recovers, and verifies the result "
            "against an oracle run plus every integrity invariant.  Runs "
            "entirely on in-memory stores; the store directory is left "
            "untouched.  Exits non-zero if any crash point fails."
        ),
    )
    torture.add_argument(
        "--seed", type=int, default=0, help="workload + fault seed (default 0)"
    )
    torture.add_argument(
        "--ops",
        type=_positive_int,
        default=30,
        help="mutating operations in the workload (default 30)",
    )
    torture.add_argument(
        "--workload",
        choices=("mixed", "insert"),
        default="mixed",
        help="mixed random updates, or the Table-5 insert stream",
    )
    from repro.storage.faults import fault_classes_help

    torture.add_argument(
        "--fault-classes",
        default="all",
        metavar="LIST",
        help=(
            "comma list of fault classes, or all (crash classes) / none. "
            + fault_classes_help()
        ),
    )
    torture.add_argument(
        "--media-rate",
        type=float,
        default=None,
        metavar="P",
        help=(
            "per-flush probability of injecting an enabled media fault "
            "(default 0.05; only meaningful with bitrot / lost_write / "
            "misdirect classes)"
        ),
    )
    torture.add_argument(
        "--crash-points",
        type=_positive_int,
        default=None,
        metavar="N",
        help="test at most N points (seeded sample; default: all of them)",
    )
    torture.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    torture.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    monitor = commands.add_parser(
        "monitor",
        help="show the workload-history timeline and drift",
        description=(
            "Reads the store's workload history (periodic counter-delta "
            "snapshots persisted in store.history.jsonl) and shows the "
            "timeline, the current workload fingerprint and the rolling "
            "drift series (0 = steady workload, 1 = completely changed)."
        ),
    )
    monitor.add_argument(
        "--window",
        type=_positive_int,
        default=4,
        help="snapshots per drift window (default 4)",
    )
    monitor.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    monitor.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    advise = commands.add_parser(
        "advise",
        help="run the tuning advisor over the workload history",
        description=(
            "Runs the rule-based tuning advisor: recommendations to "
            "split/merge range granularity, resize the partial index, "
            "grow the buffer pool or compact, each backed by the history "
            "counters that triggered it and a what-if simulated-cost "
            "estimate from the store's own cost model.  Vacuous (zero "
            "recommendations, reason stated) without enough evidence."
        ),
    )
    advise.add_argument(
        "--window",
        type=_positive_int,
        default=4,
        help="snapshots per drift window (default 4)",
    )
    advise.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    advise.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    alerts = commands.add_parser(
        "alerts",
        help="evaluate the alert rules and list firing alerts",
        description=(
            "Evaluates the deterministic alert rule set (threshold / "
            "ratio / delta-over-window / absence rules over the metric "
            "registry, history snapshots and SLO budgets) and lists the "
            "currently-firing alerts plus the persisted transition log "
            "(store.alerts.jsonl)."
        ),
        epilog=(
            "exit codes: 0 = nothing firing above info; 1 = warning "
            "alert(s) firing; 2 = critical alert(s) firing.  See the "
            "canonical exit-code table in README.md."
        ),
    )
    alerts.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    alerts.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    health = commands.add_parser(
        "health",
        help="composite health verdict with verify's exit codes",
        description=(
            "Folds every liveness signal — integrity checks, block "
            "quarantine, checksum errors, the degraded-repair sidecar, "
            "scrub recency, WAL growth, workload drift and the "
            "simulated-axis SLO statuses — into one healthy / degraded "
            "/ unhealthy verdict a supervisor can poll."
        ),
        epilog=(
            "exit codes: 0 = healthy; 1 = degraded; 2 = unhealthy.  See "
            "the canonical exit-code table in README.md."
        ),
    )
    health.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    health.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    watch = commands.add_parser(
        "watch",
        help="live top-style view over the history and alert files",
        description=(
            "Tails store.history.jsonl and store.alerts.jsonl (plus the "
            "store file sizes) and renders a refreshing top-style frame "
            "with cumulative counters, firing alerts and recent "
            "transitions.  Read-only and lock-free: the store is never "
            "opened, so it can run beside a live workload."
        ),
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval (default 2.0)",
    )
    watch.add_argument(
        "--iterations",
        type=_positive_int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    watch.add_argument(
        "--top",
        type=_positive_int,
        default=8,
        metavar="N",
        help="counters shown in the hot-counter section (default 8)",
    )

    diagnose = commands.add_parser(
        "diagnose",
        help="post-mortem timeline + root cause from persisted artifacts",
        description=(
            "Merges every persisted observability artifact — the alert "
            "log, workload-history snapshots, the degraded-repair "
            "sidecar and incident bundles (store.incidents/, including "
            "their flight-recorder dumps) — into one causally-ordered "
            "post-mortem timeline with a root-cause summary.  Purely "
            "file-based: the store is never opened, so it works on a "
            "store too corrupt to open and beside a live workload."
        ),
        epilog=(
            "exit codes: 0 = clean (no incidents); 1 = incidents "
            "resolved by a clean repair; 2 = unresolved incident(s).  "
            "See the canonical exit-code table in README.md."
        ),
    )
    diagnose.add_argument(
        "--incident",
        default=None,
        metavar="NAME",
        help="focus the timeline on one bundle (e.g. incident-0)",
    )
    diagnose.add_argument(
        "--json", action="store_true", help="report as JSON"
    )
    diagnose.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    bundle = commands.add_parser(
        "bundle",
        help="pack observability artifacts into a support tarball",
        description=(
            "Packs every observability artifact the store directory "
            "carries (alert log, history, repair sidecar, incident "
            "bundles) plus a fresh diagnosis into one portable tarball "
            "for hand-off.  The tar is deterministic (uncompressed, "
            "zeroed member metadata): identical seeded runs produce "
            "byte-identical bundles.  Read-only: the store is never "
            "opened."
        ),
        epilog=(
            "exit codes: 0 = bundle written; 1 = cannot write.  See the "
            "canonical exit-code table in README.md."
        ),
    )
    bundle.add_argument(
        "--output",
        default=None,
        metavar="FILE.tar",
        help="tarball path (default: <store>/support-bundle.tar)",
    )
    bundle.add_argument(
        "--json", action="store_true", help="print the manifest as JSON"
    )

    serve = commands.add_parser(
        "serve",
        help="serve the store to concurrent clients over a TCP socket",
        description=(
            "Opens the store and serves newline-delimited JSON sessions "
            "over TCP.  Requests arriving together are multiplexed "
            "through one deterministic scheduler run, so concurrent "
            "writers share group-commit sync barriers and read-only "
            "sessions are served from lock-free snapshots.  Runs until "
            "a client sends {\"cmd\": \"shutdown\"}."
        ),
        epilog=(
            "exit codes: 0 = served and shut down cleanly; 1 = failed to "
            "bind or serve.  See the canonical exit-code table in "
            "README.md."
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = pick a free port, printed on startup)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="scheduler seed (default 0)"
    )

    client = commands.add_parser(
        "client",
        help="send one session (or control request) to a running server",
        description=(
            "Connects to a `repro serve` instance and submits one "
            "session program: a JSON list of ops such as "
            "'[{\"op\": \"read\", \"node_id\": 1}]'.  Control requests "
            "(--ping, --stats, --shutdown) skip the session machinery."
        ),
        epilog=(
            "exit codes: 0 = session committed (or control request ok); "
            "1 = session aborted, shed, or the server refused.  See the "
            "canonical exit-code table in README.md."
        ),
    )
    client.add_argument(
        "--host", default="127.0.0.1", help="server address (default 127.0.0.1)"
    )
    client.add_argument(
        "--port", type=int, required=True, help="server TCP port"
    )
    client.add_argument(
        "--read-only",
        action="store_true",
        help="run the program in a snapshot (lock-free) session",
    )
    client.add_argument(
        "--ping", action="store_true", help="liveness check instead of a session"
    )
    client.add_argument(
        "--stats",
        action="store_true",
        help="fetch server + group-commit counters instead of a session",
    )
    client.add_argument(
        "--shutdown", action="store_true", help="ask the server to stop"
    )
    client.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "reconnect attempts after a refused/dropped connection "
            "(default 0 = fail on the first); exhaustion exits 1 with a "
            "typed server-unavailable error"
        ),
    )
    client.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help=(
            "base seconds between reconnect attempts, doubled each retry "
            "(default 0.1)"
        ),
    )
    client.add_argument(
        "program",
        nargs="?",
        default=None,
        help="session program: JSON list of {op, node_id, xml} objects",
    )

    from repro.replication.channel import channel_fault_classes_help

    replicate = commands.add_parser(
        "replicate",
        help="catch a read replica up to this store's change stream",
        description=(
            "Tails the primary's WAL as a logical change stream and "
            "applies it onto the replica directory (created on demand; "
            "a standard store directory afterwards, so read/xpath/serve/"
            "health all work on it).  Apply is idempotent and resumes "
            "from the replica's durable checkpoint; a seeded hostile "
            "channel (--channel-faults) and deterministic retry/backoff "
            "exercise the convergence machinery; divergence is detected "
            "by state digest and healed by auto-resync.  The primary is "
            "only ever read."
        ),
        epilog=(
            "exit codes: 0 = replica converged (digest verified); 1 = "
            "the retry budget ran out (checkpoint committed — rerun to "
            "resume); 2 = the replica diverges and resync is disabled or "
            "failed.  See the canonical exit-code table in README.md."
        ),
    )
    replicate.add_argument("replica", help="replica directory (created on demand)")
    replicate.add_argument(
        "--name", default="replica", help="replica name in the registry"
    )
    replicate.add_argument(
        "--channel-faults",
        default="none",
        help=channel_fault_classes_help(),
    )
    replicate.add_argument(
        "--seed", type=int, default=0, help="channel fault seed (default 0)"
    )
    replicate.add_argument(
        "--fault-rate",
        type=float,
        default=0.5,
        help="per-fetch probability of injecting one enabled fault",
    )
    replicate.add_argument(
        "--max-faults",
        type=int,
        default=16,
        help="fault injections before the channel turns honest",
    )
    replicate.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        help="change records per channel fetch (default from config)",
    )
    replicate.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=None,
        help="fetch attempts per batch before giving up (default from config)",
    )
    replicate.add_argument(
        "--no-resync",
        action="store_true",
        help="report divergence as an error instead of auto-resyncing",
    )
    replicate.add_argument(
        "--force-diverge",
        action="store_true",
        help=(
            "write directly to the replica before catch-up (a split-brain "
            "drill: the digest check must detect it and resync heal it)"
        ),
    )
    replicate.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    replicate.add_argument("--output", default=None, help="write the report to a file")

    lag = commands.add_parser(
        "lag",
        help="show replica lag against this store's change stream",
        description=(
            "Reads the primary's WAL, the replica registry "
            "(store.replicas.json) and each replica's persisted "
            "replication checkpoint — files only, the store is never "
            "opened — and reports per-replica lag in committed "
            "operations."
        ),
        epilog=(
            "exit codes: 0 = every replica is fresh (or none configured); "
            "1 = a replica's checkpoint is stale (no recent apply "
            "progress).  See the canonical exit-code table in README.md."
        ),
    )
    lag.add_argument(
        "--stale-after",
        type=_positive_int,
        default=None,
        help="staleness bound in operations (default from config)",
    )
    lag.add_argument("--json", action="store_true", help="machine-readable report")
    lag.add_argument("--output", default=None, help="write the report to a file")
    return parser


def run(argv: Optional[List[str]] = None, stdin=None) -> str:
    """Execute one CLI invocation; returns the text that was printed."""
    arguments = build_parser().parse_args(argv)
    if arguments.verbose:
        install_handler(logging.DEBUG)
    stdin = stdin if stdin is not None else sys.stdin
    if arguments.command == "torture":
        # torture runs on throwaway in-memory stores: never open (or
        # mutate) the user's store directory
        return _run_torture(arguments)
    if arguments.command == "scrub":
        # scrub is read-only and must see the *device* images, not a
        # replayed store: never go through open/close (which replays the
        # WAL and checkpoints on close)
        return _run_scrub(arguments)
    if arguments.command == "repair":
        # repair manages the directory's files itself (and must open in
        # repair mode: a normal open would choke on the corruption)
        return _run_repair(arguments)
    if arguments.command == "watch":
        # watch only tails the JSONL files and file sizes: never open
        # the store, so it can run beside a live workload
        return _run_watch(arguments)
    if arguments.command == "diagnose":
        # diagnose reads persisted artifacts only: it must work on a
        # store too corrupt to open (that is its whole point)
        return _run_diagnose(arguments)
    if arguments.command == "bundle":
        # same stance: the support bundle is built from files alone
        return _run_bundle(arguments)
    if arguments.command == "serve":
        # serve owns the open/close lifecycle (long-running loop)
        return _run_serve(arguments)
    if arguments.command == "client":
        # client talks to a running server: never touches the store files
        return _run_client(arguments)
    if arguments.command == "replicate":
        # replicate reads the primary's WAL bytes and owns the replica
        # directory's lifecycle; the primary's files are never written
        return _run_replicate(arguments)
    if arguments.command == "lag":
        # lag reads the registry, checkpoints and WAL bytes only: it can
        # run beside a live primary without opening the store
        return _run_lag(arguments)
    if arguments.command == "health":
        # health must not crash on the stores it exists to diagnose: a
        # normal open walks every chain block and dies on the first
        # corrupt one, so fall back to a repair-mode open and report
        return _run_health(arguments, stdin)
    store = open_directory(arguments.store, config=_cli_store_config())
    try:
        output = _dispatch(store, arguments, stdin)
    finally:
        close_directory(arguments.store, store)
    return output


def _cli_store_config() -> StoreConfig:
    return StoreConfig(
        telemetry_enabled=True,
        events_enabled=True,
        heatmap_enabled=True,
        profiling_enabled=True,
        history_enabled=True,
        alerts_enabled=True,
        recorder_enabled=True,
    )


def _run_serve(arguments) -> str:
    import asyncio

    from repro.server.netadapter import AsyncXMLServer
    from repro.server.sessions import XMLServer

    store = open_directory(arguments.store, config=_cli_store_config())
    try:
        server = XMLServer(store)
        adapter = AsyncXMLServer(
            server, host=arguments.host, port=arguments.port, seed=arguments.seed
        )

        async def _serve() -> None:
            await adapter.start()
            print(
                f"serving {arguments.store} on {arguments.host}:{adapter.port} "
                f"(seed {adapter.seed})",
                flush=True,
            )
            await adapter.serve_until_shutdown()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        stats = server.stats
        return (
            f"served {adapter.requests_served} request(s) in "
            f"{adapter.batches_driven} batch(es): "
            f"{stats.sessions_committed} committed, "
            f"{stats.sessions_aborted} aborted, "
            f"{stats.sessions_shed} shed; "
            f"{store.wal.group_commits} group commit(s)"
        )
    finally:
        close_directory(arguments.store, store)


def _run_client(arguments) -> str:
    from repro.server.netadapter import client_request

    if arguments.ping:
        payload = {"cmd": "ping"}
    elif arguments.stats:
        payload = {"cmd": "stats"}
    elif arguments.shutdown:
        payload = {"cmd": "shutdown"}
    else:
        if arguments.program is None:
            raise ReproError(
                "client needs a session program (JSON list of ops) or one "
                "of --ping/--stats/--shutdown"
            )
        try:
            ops = json.loads(arguments.program)
        except json.JSONDecodeError as exc:
            raise ReproError(f"bad session program: {exc}")
        if not isinstance(ops, list):
            raise ReproError("session program must be a JSON list of ops")
        payload = {
            "cmd": "session",
            "read_only": arguments.read_only,
            "ops": ops,
        }
    response = client_request(
        arguments.host,
        arguments.port,
        payload,
        retries=arguments.retries,
        retry_backoff=arguments.retry_backoff,
    )
    text = json.dumps(response, indent=2, sort_keys=True)
    if not response.get("ok", False):
        # session aborted/shed or server refused: print the response and
        # exit degraded (code 1), mirroring the canonical table
        error = ReproError(
            f"request failed "
            f"(outcome={response.get('outcome', 'unknown')}): {text}"
        )
        error.exit_code = 1
        raise error
    return text


def _primary_stream_image(primary_dir: str) -> bytes:
    """The primary's durable WAL bytes — replication's only input."""
    import os

    from repro.core.filestore import WAL_FILE

    wal_path = os.path.join(primary_dir, WAL_FILE)
    if not os.path.exists(wal_path):
        raise ReproError(f"{primary_dir}: not a store directory (no WAL)")
    with open(wal_path, "rb") as handle:
        return handle.read()


def _run_replicate(arguments) -> str:
    import os

    from repro.core.store import XMLStore
    from repro.replication.changestream import ChangeStream
    from repro.replication.channel import (
        ChannelFaultConfig,
        ReplicationChannel,
        RetryPolicy,
    )
    from repro.replication.replica import Replica
    from repro.replication.service import catch_up, register_replica
    from repro.storage.wal import WriteAheadLog

    primary_dir = arguments.store
    replica_dir = arguments.replica
    if os.path.abspath(primary_dir) == os.path.abspath(replica_dir):
        raise ReproError("the replica directory must differ from the primary's")
    image = _primary_stream_image(primary_dir)
    # the primary's committed state, reconstructed from its durable log
    # alone (full restore is always sound) — the primary's files are
    # never opened for writing
    primary_wal = WriteAheadLog.from_bytes(image)
    primary_state = XMLStore.recover(WriteAheadLog.from_bytes(image))
    stream = ChangeStream(primary_wal)
    config = StoreConfig()
    faults = ChannelFaultConfig.from_classes(
        arguments.channel_faults,
        seed=arguments.seed,
        fault_rate=arguments.fault_rate,
        max_faults=arguments.max_faults,
    )
    channel = ReplicationChannel(stream, faults)
    retry = RetryPolicy(
        max_attempts=(
            arguments.max_attempts
            if arguments.max_attempts is not None
            else config.replication_max_attempts
        ),
        base_delay=config.replication_backoff_base,
        max_delay=config.replication_backoff_max,
    )
    store = open_directory(replica_dir, config=_cli_store_config())
    replica = None
    try:
        replica = Replica(store, directory=replica_dir, name=arguments.name)
        if arguments.force_diverge:
            if replica.cursor == 0:
                raise ReproError(
                    "--force-diverge needs a replica with applied state "
                    "(run replicate once first)"
                )
            # a split-brain drill: write around the stream, directly on
            # the replica — the digest check must catch it
            store.insert_into_last(1, "<diverged>forced</diverged>")
        register_replica(
            primary_dir, arguments.name, os.path.abspath(replica_dir)
        )
        report = catch_up(
            channel,
            replica,
            primary_store=primary_state,
            batch_size=(
                arguments.batch_size
                if arguments.batch_size is not None
                else config.replication_batch_size
            ),
            retry=retry,
            auto_resync=not arguments.no_resync,
            source=os.path.abspath(primary_dir),
        )
    finally:
        # a resync swaps the replica's store object wholesale — close
        # whichever store is live now, not the one opened above
        close_directory(
            replica_dir, replica.store if replica is not None else store
        )
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = (
            f"replica {report.replica!r} caught up: cursor "
            f"{report.started_cursor} -> {report.final_cursor} of "
            f"{report.head} (applied {report.applied}, "
            f"{report.duplicates_skipped} duplicate(s) skipped, "
            f"{report.gaps_detected} gap(s), {report.retries} retrie(s), "
            f"{report.faults_injected} channel fault(s), "
            f"{report.resyncs} resync(s); digest "
            f"{'ok' if report.digest_match else 'MISMATCH'})"
        )
    return _deliver(text, arguments.output)


def _run_lag(arguments) -> str:
    from repro.obs.schema import stamp
    from repro.replication.replica import read_checkpoint
    from repro.replication.service import list_replicas, stream_head_of

    replicas = list_replicas(arguments.store)
    head = stream_head_of(arguments.store)
    if head is None:
        raise ReproError(
            f"{arguments.store}: not a store directory (no WAL)"
        )
    stale_after = (
        arguments.stale_after
        if arguments.stale_after is not None
        else StoreConfig().replication_stale_after_ops
    )
    rows = []
    for entry in replicas:
        checkpoint = read_checkpoint(entry.get("path", ""))
        cursor = int(checkpoint["cursor"]) if checkpoint else 0
        lag = max(0, head - cursor)
        rows.append(
            {
                "name": entry.get("name", "?"),
                "path": entry.get("path", ""),
                "cursor": cursor,
                "lag": lag,
                "stale": lag > stale_after,
                "has_checkpoint": checkpoint is not None,
            }
        )
    stale = [row for row in rows if row["stale"]]
    if arguments.json:
        text = json.dumps(
            stamp(
                {
                    "head": head,
                    "stale_after_ops": stale_after,
                    "replicas": rows,
                    "stale_count": len(stale),
                }
            ),
            indent=2,
            sort_keys=True,
        )
    else:
        lines = [f"stream head: {head} committed operation(s)"]
        if not rows:
            lines.append("no replicas configured")
        for row in rows:
            status = "STALE" if row["stale"] else "fresh"
            lines.append(
                f"  {row['name']:<12} cursor {row['cursor']:>6} "
                f"lag {row['lag']:>6}  [{status}]"
            )
        text = "\n".join(lines)
    delivered = _deliver(text, arguments.output)
    if stale:
        raise StoreDegradedError(
            f"{len(stale)} replica(s) stale (lag > {stale_after} ops): "
            + ", ".join(row["name"] for row in stale)
        )
    return delivered


def _run_health(arguments, stdin) -> str:
    import os

    from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
    from repro.core.store import XMLStore
    from repro.errors import ChecksumError, StoreError
    from repro.obs.health import health_report
    from repro.storage.disk import FileBlockDevice, InstrumentedDevice

    try:
        store = open_directory(arguments.store, config=_cli_store_config())
    except (ChecksumError, StoreError):
        pass
    else:
        try:
            return _dispatch(store, arguments, stdin)
        finally:
            close_directory(arguments.store, store)
    # the normal open choked on corruption: diagnose what can still be
    # seen through a read-only repair-mode open (no WAL replay, no
    # residency walk — the same stance scrub takes); recorder +
    # incidents stay on so quarantines found here dump bundles too
    from repro.obs.incident import INCIDENTS_DIR

    config = StoreConfig(
        events_enabled=True,
        recorder_enabled=True,
        recorder_incidents_dir=os.path.join(arguments.store, INCIDENTS_DIR),
    )
    catalog_path = os.path.join(arguments.store, CATALOG_FILE)
    device_path = os.path.join(arguments.store, DEVICE_FILE)
    if not (os.path.exists(catalog_path) and os.path.exists(device_path)):
        raise ReproError(
            f"{arguments.store}: not a store directory (no catalog/device)"
        )
    with open(catalog_path, "rb") as handle:
        catalog = handle.read()
    device = InstrumentedDevice(
        FileBlockDevice(device_path, block_size=config.page_size),
        cost_model=config.cost_model,
    )
    try:
        store = XMLStore.from_catalog(
            device, catalog, config=config, repair_mode=True
        )
        report = health_report(store, store_path=arguments.store)
    finally:
        device.close()
    return _deliver_health(report, arguments)


def _deliver(text: str, output_path: Optional[str]) -> str:
    """Print-or-write plumbing shared by trace/explain/heatmap."""
    if output_path is None:
        return text
    try:
        with open(output_path, "w") as handle:
            handle.write(text + "\n")
    except OSError as error:
        raise ReproError(f"cannot write {output_path}: {error}") from error
    return f"wrote {output_path}"


def _run_torture(arguments) -> str:
    from repro.storage.faults import FaultConfig
    from repro.testing.torture import TortureConfig, run_torture

    fault_classes = FaultConfig.from_classes(
        arguments.fault_classes, media_fault_rate=arguments.media_rate
    )
    config = TortureConfig(
        seed=arguments.seed,
        ops=arguments.ops,
        workload=arguments.workload,
        torn_page_writes=fault_classes.torn_page_writes,
        torn_wal_appends=fault_classes.torn_wal_appends,
        reorder_sync=fault_classes.reorder_sync,
        bitrot=fault_classes.bitrot,
        lost_writes=fault_classes.lost_writes,
        misdirected_writes=fault_classes.misdirected_writes,
        media_fault_rate=fault_classes.media_fault_rate,
        crash_points=arguments.crash_points,
    )
    report = run_torture(config)
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render()
    delivered = _deliver(text, arguments.output)
    if not report.ok:
        # the report was delivered (file written) before failing
        raise ReproError(
            f"torture failed at {len(report.failures)} of "
            f"{report.tested_points} tested case(s) (seed {config.seed})"
        )
    return delivered


def _run_scrub(arguments) -> str:
    import os

    from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
    from repro.core.store import XMLStore
    from repro.obs.incident import INCIDENTS_DIR
    from repro.storage.disk import FileBlockDevice, InstrumentedDevice
    from repro.storage.scrub import scrub_store

    # recorder + incidents on: a scrub that quarantines a block should
    # leave an incident bundle behind, exactly like a running store
    config = StoreConfig(
        events_enabled=True,
        recorder_enabled=True,
        recorder_incidents_dir=os.path.join(arguments.store, INCIDENTS_DIR),
    )
    catalog_path = os.path.join(arguments.store, CATALOG_FILE)
    device_path = os.path.join(arguments.store, DEVICE_FILE)
    if not (os.path.exists(catalog_path) and os.path.exists(device_path)):
        raise ReproError(
            f"{arguments.store}: not a store directory (no catalog/device)"
        )
    with open(catalog_path, "rb") as handle:
        catalog = handle.read()
    device = InstrumentedDevice(
        FileBlockDevice(device_path, block_size=config.page_size),
        cost_model=config.cost_model,
    )
    try:
        store = XMLStore.from_catalog(
            device, catalog, config=config, repair_mode=True
        )
        report = scrub_store(store, blocks_per_call=arguments.budget)
    finally:
        device.close()
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render()
    delivered = _deliver(text, arguments.output)
    if not report.ok:
        # the report was delivered (file written) before failing
        raise StoreCorruptError(
            f"scrub found {len(report.issues)} bad block(s): "
            f"{report.bad_blocks()}"
        )
    return delivered


def _run_repair(arguments) -> str:
    from repro.core.repair import repair_directory

    report = repair_directory(arguments.store, config=StoreConfig())
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render()
    delivered = _deliver(text, arguments.output)
    if not report.integrity_ok:
        raise StoreCorruptError(
            "repair could not restore integrity (see report)"
        )
    if report.degraded:
        raise StoreDegradedError(
            f"store repaired but degraded: {report.lost_ids} id(s) lost, "
            f"{report.records_dropped} ambiguous record(s) dropped, "
            f"{report.skipped_ops} WAL op(s) skipped"
        )
    return delivered


def _watch_frame(arguments, engine, tick: int) -> str:
    """One rendered frame of the live view (pure function of the files)."""
    import os

    from repro.core.filestore import (
        ALERTS_FILE,
        DEVICE_FILE,
        HISTORY_FILE,
        WAL_FILE,
    )
    from repro.obs.alerts import history_view, load_events
    from repro.obs.history import load_snapshots

    history_path = os.path.join(arguments.store, HISTORY_FILE)
    alerts_path = os.path.join(arguments.store, ALERTS_FILE)
    snapshots = (
        load_snapshots(history_path) if os.path.exists(history_path) else []
    )
    persisted = (
        load_events(alerts_path) if os.path.exists(alerts_path) else []
    )
    lines = [f"watch {arguments.store}  frame {tick}"]
    sizes = []
    for name in (DEVICE_FILE, WAL_FILE):
        file_path = os.path.join(arguments.store, name)
        if os.path.exists(file_path):
            sizes.append(f"{name} {os.path.getsize(file_path)}B")
    lines.append(
        "files: " + (" | ".join(sizes) if sizes else "no store files yet")
    )
    if not snapshots:
        lines.append("history: no snapshots yet (store.history.jsonl absent)")
    else:
        last = snapshots[-1]
        lines.append(
            f"history: {len(snapshots)} snapshot(s), "
            f"ops={last.operations}, "
            f"simulated={last.simulated_seconds:.4f}s"
        )
        view = history_view(snapshots)
        transitions = engine.evaluate(view, f"watch-{tick}")
        del transitions  # the active set below is what the frame shows
        active = engine.active()
        if active:
            lines.append(f"alerts firing: {len(active)}")
            for event in active:
                lines.append(f"  {event.render()}")
        else:
            lines.append("alerts firing: none")
        counters = sorted(
            view.values.items(), key=lambda item: (-item[1], item[0])
        )
        lines.append("top counters (cumulative from history deltas):")
        for key, value in counters[: arguments.top]:
            lines.append(f"  {key:<56} {value:g}")
    if persisted:
        lines.append(f"alert log: {len(persisted)} transition(s)")
        for event in persisted[-5:]:
            lines.append(f"  #{event.seq} {event.render()}")
    else:
        lines.append("alert log: empty (store.alerts.jsonl absent)")
    return "\n".join(lines)


def _run_watch(arguments) -> str:
    from repro.obs.alerts import AlertEngine
    from repro.obs.clock import sleep

    # in-memory engine: watch observes, it never writes the store's log
    engine = AlertEngine()
    tick = 0
    frame = ""
    try:
        while True:
            tick += 1
            frame = _watch_frame(arguments, engine, tick)
            if (
                arguments.iterations is not None
                and tick >= arguments.iterations
            ):
                return frame
            if sys.stdout.isatty():
                # clear between frames only on a real terminal
                print("\x1b[2J\x1b[H", end="")
            print(frame)
            print(flush=True)
            sleep(arguments.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return frame


def _run_diagnose(arguments) -> str:
    from repro.obs.timeline import diagnose

    report = diagnose(arguments.store, incident=arguments.incident)
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render().rstrip("\n")
    delivered = _deliver(text, arguments.output)
    if report.verdict == "unresolved":
        # the report was delivered (file written) before failing
        raise StoreCorruptError(
            f"{len(report.incidents)} incident(s) with no clean repair "
            "after them (see the timeline)"
        )
    if report.verdict == "resolved":
        raise StoreDegradedError(
            f"{len(report.incidents)} incident(s) occurred; a later "
            "repair came back clean"
        )
    if report.verdict == "degraded":
        stale = (report.replication or {}).get("stale_replicas") or []
        raise StoreDegradedError(
            f"replication stale: {len(stale)} configured replica(s) "
            "show no recent apply progress (see the report)"
        )
    return delivered


def _run_bundle(arguments) -> str:
    import os

    from repro.obs.timeline import write_support_bundle

    output = arguments.output
    if output is None:
        output = os.path.join(arguments.store, "support-bundle.tar")
    manifest = write_support_bundle(arguments.store, output)
    if arguments.json:
        return json.dumps(manifest, indent=2, sort_keys=True)
    return (
        f"wrote {output}: {len(manifest['members'])} artifact member(s), "
        f"verdict {manifest['verdict']}"
    )


def _dispatch(store, arguments, stdin) -> str:
    command = arguments.command
    if command == "load":
        if arguments.source == "-":
            text = stdin.read()
        else:
            with open(arguments.source) as handle:
                text = handle.read()
        first_id = store.load_document(text)
        return f"loaded; first node id = {first_id}"
    if command == "read":
        from repro.xmltoken.parser import tokenize_fragment
        from repro.xmltoken.serializer import serialize

        text = store.read(arguments.node_id)
        if arguments.pretty and text:
            text = serialize(tokenize_fragment(text), indent="  ")
        return text
    if command == "xpath":
        results = store.xpath(arguments.expression)
        lines = [f"{len(results)} match(es)"]
        lines.extend(f"#{node.node_id}\t{node.xml()}" for node in results)
        return "\n".join(lines)
    if command == "insert-last":
        first_id = store.insert_into_last(arguments.node_id, arguments.xml)
        return f"inserted; first node id = {first_id}"
    if command == "insert-before":
        first_id = store.insert_before(arguments.node_id, arguments.xml)
        return f"inserted; first node id = {first_id}"
    if command == "delete":
        store.delete_node(arguments.node_id)
        return f"deleted node {arguments.node_id}"
    if command == "replace":
        first_id = store.replace_node(arguments.node_id, arguments.xml)
        return f"replaced; new node id = {first_id}"
    if command == "ranges":
        if arguments.json:
            from repro.obs.schema import stamp

            payload = stamp(
                {
                    "ranges": [
                        {
                            "range_id": range_id,
                            "block_id": block_id,
                            "start_id": start_id,
                            "end_id": end_id,
                        }
                        for range_id, block_id, start_id, end_id
                        in store.range_snapshot()
                    ]
                }
            )
            return json.dumps(payload, indent=2, sort_keys=True)
        lines = ["RangeId  BlockId  StartId  EndId"]
        for range_id, block_id, start_id, end_id in store.range_snapshot():
            lines.append(
                f"{range_id:>7}  {block_id:>7}  {str(start_id):>7}  {str(end_id):>5}"
            )
        return "\n".join(lines)
    if command == "stats":
        from repro.obs.bridge import snapshot_families, store_families
        from repro.obs.exporters import prometheus_text, render_top
        from repro.obs.schema import stamp

        if arguments.json:
            snapshot = snapshot_families(store_families(store))
            return json.dumps(
                stamp(dict(snapshot.values)), indent=2, sort_keys=True
            )
        if arguments.prometheus:
            families = store_families(store)
            if store.slo.enabled:
                # SLO budgets ride along in the exposition (both axes:
                # the scrape is already wall-clock territory)
                families = families + store.slo.families(
                    store, axes=("simulated", "wall")
                )
            return prometheus_text(families).rstrip("\n")
        if arguments.top:
            return render_top(store_families(store)).rstrip("\n")
        return store.stats.summary()
    if command == "trace":
        from repro.obs.exporters import events_jsonl

        events = store.telemetry.events()
        if arguments.limit is not None:
            events = events[-arguments.limit :]
        return _deliver(events_jsonl(events).rstrip("\n"), arguments.output)
    if command == "explain":
        from repro.obs.explain import explain_operation

        report = explain_operation(store, arguments.op, arguments.op_args)
        if arguments.json:
            text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        else:
            text = report.render()
        return _deliver(text, arguments.output)
    if command == "profile":
        from repro.obs.explain import run_operation
        from repro.obs.profile_export import (
            collapsed_stacks,
            render_profile_top,
            speedscope_json,
        )
        from repro.obs.profiler import profile_operation

        if arguments.sample:
            from repro.obs.sampler import StackSampler

            if arguments.format not in ("collapsed", "speedscope"):
                raise ReproError(
                    "--sample emits raw stacks; use --format collapsed "
                    "or speedscope"
                )
            with StackSampler(store.config.sampler_interval) as sampler:
                run_operation(store, arguments.op, arguments.op_args)
            if arguments.format == "collapsed":
                text = sampler.collapsed().rstrip("\n")
            else:
                text = sampler.speedscope_json(
                    name=f"{arguments.op} (sampled)"
                )
            return _deliver(text, arguments.output)
        profile = profile_operation(store, arguments.op, arguments.op_args)
        if arguments.format == "collapsed":
            text = collapsed_stacks(profile, axis=arguments.axis).rstrip("\n")
        elif arguments.format == "components":
            text = collapsed_stacks(
                profile, axis=arguments.axis, by="component"
            ).rstrip("\n")
        elif arguments.format == "speedscope":
            text = speedscope_json(
                profile, name=arguments.op, axis=arguments.axis
            )
        elif arguments.format == "json":
            text = json.dumps(profile.to_dict(), indent=2, sort_keys=True)
        else:
            text = render_profile_top(profile)
        return _deliver(text, arguments.output)
    if command == "heatmap":
        from repro.obs.heatmap import heatmap_json, render_heatmap

        if arguments.xpath is not None:
            for node in store.xpath(arguments.xpath):
                node.xml()  # serialize so per-node locates hit the heatmap
        if arguments.json:
            text = heatmap_json(store, top=arguments.top)
        else:
            text = render_heatmap(store, top=arguments.top).rstrip("\n")
        return _deliver(text, arguments.output)
    if command == "compact":
        report = store.compact()
        return (
            f"compacted: {report.ranges_before} -> {report.ranges_after} "
            f"ranges ({report.merges} merges)"
        )
    if command == "verify":
        from repro.core.integrity import integrity_report
        from repro.core.repair import read_sidecar

        report = integrity_report(store)
        sidecar = read_sidecar(arguments.store)
        if arguments.json:
            payload = report.to_dict()
            if sidecar is not None:
                payload["degraded_repair"] = sidecar
            text = json.dumps(payload, indent=2, sort_keys=True)
        else:
            text = report.render()
            if sidecar is not None:
                text += (
                    "\nDEGRADED: an earlier repair lost data "
                    f"(lost_ids={sidecar.get('lost_ids', '?')}); "
                    "see store.repair.json"
                )
        delivered = _deliver(text, arguments.output)
        if not report.ok:
            # the report was delivered (file written) before failing
            names = ", ".join(check.name for check in report.failed())
            raise StoreCorruptError(f"integrity check(s) failed: {names}")
        if sidecar is not None:
            raise StoreDegradedError(
                "store verifies but an earlier repair lost data "
                "(store.repair.json present)"
            )
        return delivered
    if command == "monitor":
        from repro.obs.fingerprint import drift_series, fingerprint_window
        from repro.obs.schema import stamp

        snapshots = store.history.snapshots()
        finger = fingerprint_window(snapshots)
        drift = drift_series(snapshots, window=arguments.window)
        if arguments.json:
            payload = stamp(
                {
                    "snapshots": [snap.to_dict() for snap in snapshots],
                    "fingerprint": finger.to_dict() if finger else None,
                    "drift": drift,
                }
            )
            text = json.dumps(payload, indent=2, sort_keys=True)
        else:
            lines = [f"workload history: {len(snapshots)} snapshot(s)"]
            for snap in snapshots:
                lines.append(
                    f"  #{snap.seq:<4} {snap.label:<12} "
                    f"ops={snap.operations:<8} "
                    f"simulated={snap.simulated_seconds:.4f}s"
                    + (f"  (x{snap.merged} merged)" if snap.merged > 1 else "")
                )
            if finger is not None:
                lines.append("fingerprint")
                for key, value in finger.to_dict().items():
                    lines.append(f"  {key:<20} {value:.4f}")
            if drift:
                lines.append("drift (rolling windows)")
                for point in drift:
                    lines.append(
                        f"  up to #{point['seq']:<4} drift={point['drift']:.3f}"
                    )
            text = "\n".join(lines)
        return _deliver(text, arguments.output)
    if command == "advise":
        from repro.obs.advisor import advise as run_advisor

        report = run_advisor(store, window=arguments.window)
        if arguments.json:
            text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        else:
            text = report.render()
        return _deliver(text, arguments.output)
    if command == "alerts":
        from repro.obs.schema import stamp

        engine = store.alerts
        if engine.enabled:
            engine.evaluate_store(store, "cli")
        active = engine.active()
        if arguments.json:
            payload = stamp(
                {
                    "active": [event.to_dict() for event in active],
                    "log": [event.to_dict() for event in engine.events()],
                    "rules": [rule.name for rule in engine.rules],
                    "evaluations": engine.evaluations,
                }
            )
            text = json.dumps(payload, indent=2, sort_keys=True)
        else:
            lines = [
                f"alerts: {len(active)} firing "
                f"({len(engine.rules)} rule(s) evaluated)"
            ]
            for event in active:
                lines.append(f"  {event.render()}")
            recent = engine.events()[-5:]
            if recent:
                lines.append("recent transitions:")
                for event in recent:
                    lines.append(f"  #{event.seq} {event.render()}")
            text = "\n".join(lines)
        delivered = _deliver(text, arguments.output)
        worst = engine.worst_active_severity()
        if worst == "critical":
            # the report was delivered (file written) before failing
            raise StoreCorruptError(
                "critical alert(s) firing: "
                + ", ".join(e.rule for e in active if e.severity == "critical")
            )
        if worst == "warning":
            raise StoreDegradedError(
                "warning alert(s) firing: "
                + ", ".join(e.rule for e in active if e.severity == "warning")
            )
        return delivered
    if command == "health":
        from repro.obs.health import health_report

        report = health_report(store, store_path=arguments.store)
        return _deliver_health(report, arguments)
    raise AssertionError(f"unhandled command {command}")  # pragma: no cover


def _deliver_health(report, arguments) -> str:
    if arguments.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.render().rstrip("\n")
    delivered = _deliver(text, arguments.output)
    if report.verdict == "unhealthy":
        # the report was delivered (file written) before failing
        raise StoreCorruptError(
            "store is unhealthy: "
            + ", ".join(c.name for c in report.failed())
        )
    if report.verdict == "degraded":
        raise StoreDegradedError(
            "store is degraded: "
            + ", ".join(c.name for c in report.failed())
        )
    return delivered


def main() -> int:  # pragma: no cover - thin wrapper
    try:
        print(run())
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        # 1 = degraded-but-working, 2 = corrupt (ChecksumError,
        # StoreCorruptError); see the module docstring
        return getattr(error, "exit_code", 1)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
