"""The full-index baseline (paper §4.1): every node id indexed eagerly.

"The advantages of a full index are the ability to quickly locate nodes.
However, a full index has two main disadvantages: (a) inserts are
expensive, and (b) storage requirements are very high."

The full index is a disk-based B+-tree (same buffer pool, same simulated
clock as everything else) mapping every node id to its physical location,
stamped with the owning range's version.  Inserting N nodes costs N tree
insertions — that is the cost Table 5 row 1 pays.  When a relocation bumps
a range's version, affected entries become stale; they are repaired on
access by falling back to a range scan and re-stamping, mirroring how the
paper's position-based full indexes degrade under physical movement.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.core.partial_index import LocationEntry
from repro.core.ranges import RangeTable
from repro.index.bptree import INT_KEY_CODEC, PagedBPlusTree
from repro.obs.events import NOOP_EVENT_LOG
from repro.storage.buffer import BufferPool
from repro.storage.heap import Position

_ENTRY = struct.Struct("<qqqqq")  # range_id, version, block, slot, offset


class FullIndex:
    """node_id -> (range_id, version, position, offset) over a B+-tree."""

    def __init__(
        self, pool: BufferPool, order: int = 64, root_block: Optional[int] = None
    ) -> None:
        self._tree: PagedBPlusTree[int] = PagedBPlusTree(
            pool, INT_KEY_CODEC, order=order, root_block=root_block
        )
        self.lookups = 0
        self.stale_lookups = 0
        #: Structured event log (no-op unless the store attaches one).
        self.event_log = NOOP_EVENT_LOG

    @property
    def root_block(self) -> int:
        return self._tree.root_block

    def put(
        self,
        node_id: int,
        range_id: int,
        version: int,
        pos: Position,
        offset: int,
    ) -> None:
        self._tree.insert(
            node_id, _ENTRY.pack(range_id, version, pos.block_no, pos.slot, offset)
        )

    def put_entry(self, entry: LocationEntry) -> None:
        self.put(
            entry.node_id,
            entry.range_id,
            entry.version,
            entry.begin_pos,
            entry.begin_offset,
        )

    def lookup(self, node_id: int, ranges: RangeTable) -> Optional[LocationEntry]:
        """A *current* location for ``node_id``; stale entries return None
        (the caller re-locates by scan and calls :meth:`put` to repair)."""
        self.lookups += 1
        value = self._tree.get(node_id)
        if value is None:
            if self.event_log.enabled:
                self.event_log.emit("full_index", "probe",
                                    node_id=node_id, outcome="miss")
            return None
        range_id, version, block_no, slot, offset = _ENTRY.unpack(value)
        entry = LocationEntry(
            node_id=node_id,
            range_id=range_id,
            version=version,
            begin_pos=Position(block_no, slot),
            begin_offset=offset,
        )
        if not entry.is_current(ranges):
            self.stale_lookups += 1
            if self.event_log.enabled:
                self.event_log.emit("full_index", "probe",
                                    node_id=node_id, outcome="stale",
                                    range_id=range_id)
            return None
        if self.event_log.enabled:
            self.event_log.emit("full_index", "probe",
                                node_id=node_id, outcome="hit",
                                range_id=range_id)
        return entry

    def remove(self, node_id: int) -> bool:
        return self._tree.delete(node_id)

    def remove_interval(self, low: int, high: int) -> int:
        """Remove every entry with ``low <= node_id <= high`` (bulk path
        for deleted subtrees); returns how many were removed."""
        doomed = [node_id for node_id, _ in self._tree.items(low=low, high=high)]
        for node_id in doomed:
            self._tree.delete(node_id)
        return len(doomed)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def node_ids(self) -> Iterator[int]:
        return (node_id for node_id, _ in self._tree.items())
