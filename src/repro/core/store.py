"""The adaptive XML store: the paper's Table-1 interface.

:class:`XMLStore` ties the substrates together: tokens live in chained
blocks (document order), every insert operation creates Ranges, a coarse
Range Index locates the range of an identifier, and — depending on the
:class:`~repro.core.config.IndexingPolicy` — a lazy Partial Index and/or
an eager Full Index accelerate node location.

Interface (paper Table 1)::

    read()                      read(id)
    insert_before(id, xml)      insert_after(id, xml)
    insert_into_first(id, xml)  insert_into_last(id, xml)
    delete_node(id)             replace_node(id, xml)
    replace_content(id, xml)

plus ``load_document`` (the initial bulk insert), ``xpath`` (query entry
point), ``checkpoint``/``from_catalog`` (durability), and statistics.

Internal invariants (checked by :meth:`check_integrity`):

* ranges tile the chain exactly, in document order;
* each range's node-starting tokens carry exactly the dense id interval
  ``[start_id, end_id]`` in scan order (which is what makes id
  *regeneration* sound — ids are never stored with tokens);
* id intervals of distinct ranges are disjoint;
* the range index has exactly one entry per non-empty range.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    InvalidOperationError,
    NodeNotFoundError,
    StoreError,
)
from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.full_index import FullIndex
from repro.core.indexing import AdaptiveController
from repro.core.layout import TokenLayout
from repro.core.locator import Locator, NodeLocation, ScanItem
from repro.core.partial_index import LocationEntry, PartialIndex
from repro.core.range_index import RangeIndex
from repro.core.ranges import RangeMeta, RangeTable
from repro.core.stats import OperationCounts, StoreStatistics
from repro.ids.sequential import SequentialIdScheme
from repro.obs.alerts import create_alerts
from repro.obs.incident import create_incidents
from repro.obs.recorder import create_recorder
from repro.obs.events import create_event_log
from repro.obs.heatmap import create_heatmap
from repro.obs.history import create_history
from repro.obs.slo import create_slo
from repro.obs.telemetry import create_telemetry
from repro.storage.buffer import BufferPool
from repro.storage.disk import BlockDevice, InstrumentedDevice, MemoryBlockDevice
from repro.storage.heap import ChainedFile, Position
from repro.storage.pages import PageCodec
from repro.storage.recovery import encode_op_payload
from repro.storage.wal import RecordType, WriteAheadLog
from repro.xmltoken.binary import decode_token, encode_tokens
from repro.xmltoken.datamodel import strip_document_tokens, validate_stream
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.serializer import serialize
from repro.xmltoken.tokens import Token, TokenKind, count_nodes

_ATTRIBUTE_KINDS = frozenset(
    {
        TokenKind.BEGIN_ATTRIBUTE,
        TokenKind.ATTRIBUTE_VALUE,
        TokenKind.END_ATTRIBUTE,
        TokenKind.NAMESPACE,
    }
)

_CATALOG_HEADER = struct.Struct("<qqqI")  # range_root, full_root(-1), scheme_len, n_sections

#: Third catalog section: the on-disk page format (version, flags).  The
#: catalog — not the page bytes — is the authority on whether a store's
#: blocks are checksum-framed, so decoding is always strict: a flipped
#: bit can never demote a framed page to the legacy raw read path.
#: Two-section catalogs predate this marker and always mean legacy raw.
_FORMAT_SECTION = struct.Struct("<HH")
PAGE_FORMAT_VERSION = 1
_FORMAT_CHECKSUMS = 1  # flags bit 0

#: Span names pre-registered at store setup so exporters show every
#: Table-1 operation (plus the maintenance entry points) even at zero.
TABLE1_SPANS = (
    "read",
    "node_read",
    "load_document",
    "insert_before",
    "insert_after",
    "insert_into_first",
    "insert_into_last",
    "delete_node",
    "replace_node",
    "replace_content",
    "xpath",
    "compact",
    "checkpoint",
    "wal.append",
    "wal.fsync",
    "lock.wait",
    "locator.scan",
    "store.open",
)


@dataclass
class _InsertPoint:
    """Where a fragment goes: before the token at ``pos`` (which is token
    ``offset`` of range ``meta``), with ``last_id_before`` the id of the
    last node-starting token strictly before the point within the range."""

    meta: RangeMeta
    offset: int
    pos: Position
    last_id_before: Optional[int]


def effective_btree_order(configured: int, page_size: int) -> int:
    """Cap the B+-tree order so a full node serializes into one page.

    The widest node record is a full-index leaf entry: 2-byte slot length
    + 2-byte key length + 8-byte key + 40-byte packed location = 52 bytes,
    plus the node-header record and the page header.
    """
    widest_entry = 52
    fits = max(3, (page_size - 16) // widest_entry)
    return max(3, min(configured, fits))


@dataclass
class _InsertOutcome:
    """What an internal fragment insert produced."""

    first_id: Optional[int]
    #: Post-insert home of the token the fragment displaced (the token
    #: that was *at* the insert point): (range, position).  None when the
    #: fragment was appended at the end of the document.
    displaced: Optional[Tuple[RangeMeta, Position]] = None


class XMLStore:
    """An adaptive, lazily indexed XML store."""

    def __init__(
        self,
        config: Optional[StoreConfig] = None,
        device: Optional[BlockDevice] = None,
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        self.config = config if config is not None else StoreConfig()
        if device is None:
            backend = MemoryBlockDevice(block_size=self.config.page_size)
            device = InstrumentedDevice(backend, cost_model=self.config.cost_model)
        if device.block_size != self.config.page_size:
            raise StoreError(
                f"device block size {device.block_size} != configured "
                f"page size {self.config.page_size}"
            )
        self.device = device
        self.codec = PageCodec(
            self.config.page_size, checksums=self.config.checksums_enabled
        )
        self.pool = BufferPool(
            device, capacity=self.config.buffer_pool_capacity, codec=self.codec
        )
        self.wal = wal if wal is not None else WriteAheadLog()
        self.id_scheme = SequentialIdScheme()
        self.ranges = RangeTable()
        self.layout = TokenLayout(self.pool, self.ranges)
        order = effective_btree_order(self.config.btree_order, self.codec.page_size)
        self.range_index = RangeIndex(self.pool, order=order)
        policy = self.config.policy
        self.partial_index: Optional[PartialIndex] = None
        self.full_index: Optional[FullIndex] = None
        if policy in (IndexingPolicy.RANGE_PLUS_PARTIAL, IndexingPolicy.ADAPTIVE):
            self.partial_index = PartialIndex(self.config.partial_index_capacity)
        if policy is IndexingPolicy.FULL:
            self.full_index = FullIndex(self.pool, order=order)
        self.locator = Locator(
            layout=self.layout,
            ranges=self.ranges,
            range_index=self.range_index,
            id_scheme=self.id_scheme,
            partial_index=self.partial_index,
            full_index=self.full_index,
        )
        self.adaptive: Optional[AdaptiveController] = None
        if policy is IndexingPolicy.ADAPTIVE:
            self.adaptive = AdaptiveController(
                self.locator,
                self.partial_index,
                self.ranges,
                window=self.config.adaptive_window,
                read_threshold=self.config.adaptive_read_threshold,
            )
        self.operations = OperationCounts()
        #: tokens decoded for serialization (part of the simulated CPU cost)
        self.tokens_emitted = 0
        #: never-stale parent-link memo (see repro.core.navigation)
        from repro.core.navigation import StructuralHints

        self.structural_hints = StructuralHints()
        self._setup_telemetry()

    def _setup_telemetry(self) -> None:
        """Select the live or no-op recorder and attach it everywhere."""
        self.telemetry = create_telemetry(
            # the profiler folds spans, so profiling implies telemetry
            self.config.telemetry_enabled or self.config.profiling_enabled,
            simulated_clock=lambda: self.simulated_seconds,
            ring_capacity=self.config.telemetry_ring_capacity,
        )
        self.telemetry.preregister_spans(TABLE1_SPANS)
        self.locator.attach_telemetry(self.telemetry)
        self.wal.telemetry = self.telemetry
        # the cost model prices sync barriers (0.0 by default, so the
        # committed baselines are untouched); the WAL charges it per flush
        self.wal.sync_cost = self.config.cost_model.sync_seconds
        self.event_log = create_event_log(
            self.config.events_enabled,
            capacity=self.config.events_capacity,
            simulated_clock=lambda: self.simulated_seconds,
            tracer=self.telemetry.tracer,
        )
        self.heatmap = create_heatmap(self.config.heatmap_enabled)
        self.history = create_history(
            self.config.history_enabled,
            path=self.config.history_path,
            capacity=self.config.history_capacity,
            interval=self.config.history_interval,
        )
        self.slo = create_slo(self.config.alerts_enabled)
        self.alerts = create_alerts(
            self.config.alerts_enabled,
            path=self.config.alerts_path,
            interval=self.config.alerts_interval,
        )
        self.recorder = create_recorder(
            self.config.recorder_enabled,
            capacity=self.config.recorder_capacity,
            interval=self.config.recorder_interval,
        )
        self.incidents = create_incidents(
            self.config.recorder_enabled,
            directory=self.config.recorder_incidents_dir,
            limit=self.config.recorder_incident_limit,
        )
        self.incidents.attach(self)
        #: scrub recency (bridge-exported, health-checked): completed
        #: passes on this store instance and the Table-1 operation count
        #: at the most recent one (None = never scrubbed)
        self.scrub_completions = 0
        self.operations_at_last_scrub: Optional[int] = None
        self.pool.event_log = self.event_log
        self.pool.heatmap = self.heatmap
        self.pool.incidents = self.incidents
        # the tee/trigger attachments assign attributes, which the
        # slotted no-op twins refuse by design: guard on .enabled
        if self.event_log.enabled:
            self.event_log.recorder = self.recorder
        if self.alerts.enabled:
            self.alerts.recorder = self.recorder
            self.alerts.incidents = self.incidents
        self.locator.event_log = self.event_log
        self.range_index.event_log = self.event_log
        if self.partial_index is not None:
            self.partial_index.event_log = self.event_log
        if self.full_index is not None:
            self.full_index.event_log = self.event_log
        self.wal.event_log = self.event_log
        # fault-injection layer (if any): crash/torn-write events land in
        # the same log so EXPLAIN can attribute recovery work to faults
        from repro.storage.faults import find_fault_layer

        faulty = find_fault_layer(self.device)
        if faulty is not None:
            faulty.event_log = self.event_log
        if self.wal.fault_adapter is not None:
            self.wal.fault_adapter.event_log = self.event_log

    # -- convenience constructors -----------------------------------------------------

    @classmethod
    def open(
        cls,
        config: Optional[StoreConfig] = None,
        device: Optional[BlockDevice] = None,
        wal: Optional[WriteAheadLog] = None,
    ) -> "XMLStore":
        """Create a store (alias of the constructor, reads like a DB API)."""
        return cls(config=config, device=device, wal=wal)

    # ==================================================================== reads ==

    def read(self, node_id: Optional[int] = None) -> str:
        """Serialize the whole data source, or the subtree of ``node_id``."""
        if node_id is None:
            with self.telemetry.span("read"):
                self.operations.reads += 1
                self._observe(is_read=True)
                return serialize(self.tokens())
        with self.telemetry.span("node_read", node_id=node_id):
            return self._read_node(node_id)

    def _read_node(self, node_id: int) -> str:
        self.operations.node_reads += 1
        self._observe(is_read=True)
        location = self.locator.locate_span(node_id)
        tokens = self._span_tokens(location)
        first = tokens[0].kind
        if first == TokenKind.BEGIN_ATTRIBUTE:
            # attribute nodes serialize as name="value" (they have no
            # standalone XML form)
            value = "".join(
                t.value for t in tokens if t.kind == TokenKind.ATTRIBUTE_VALUE
            )
            from repro.xmltoken.serializer import escape_attribute

            return f'{tokens[0].name}="{escape_attribute(value)}"'
        if first == TokenKind.NAMESPACE:
            name = f"xmlns:{tokens[0].name}" if tokens[0].name else "xmlns"
            from repro.xmltoken.serializer import escape_attribute

            return f'{name}="{escape_attribute(tokens[0].value)}"'
        return serialize(tokens)

    def tokens(self) -> Iterator[Token]:
        """The store's full token sequence, in document order."""
        for _, record in self.layout.iter_from(None):
            self.tokens_emitted += 1
            yield decode_token(record)

    def node_tokens(self, node_id: int) -> List[Token]:
        """The complete token sequence of one node."""
        location = self.locator.locate_span(node_id)
        return self._span_tokens(location)

    def _span_tokens(self, location: NodeLocation) -> List[Token]:
        assert location.end is not None
        begin_pos, end_pos = location.begin.pos, location.end.pos
        collected: List[Token] = []
        for pos, record in self.layout.iter_from(begin_pos):
            collected.append(decode_token(record))
            self.tokens_emitted += 1
            if pos == end_pos:
                return collected
        raise StoreError("end token not reached (bug)")

    def exists(self, node_id: int) -> bool:
        """Whether a node with ``node_id`` is currently in the store."""
        try:
            self.locator.locate(node_id)
            return True
        except NodeNotFoundError:
            return False

    @property
    def is_empty(self) -> bool:
        return self.layout.is_empty

    # ==================================================================== loads ==

    def load_document(self, xml_text: str, log: bool = True) -> Optional[int]:
        """Bulk-insert a document/fragment at the end of the data source.

        Returns the id of the first inserted node (the root for a
        single-rooted document), or None for an all-markup fragment.
        """
        with self.telemetry.span("load_document", bytes=len(xml_text)):
            tokens = self._ingest(xml_text)
            if not tokens:
                return None
            if log:
                self.wal.append(
                    RecordType.LOAD_DOCUMENT, encode_op_payload(b"", xml_text)
                )
            first_id = self._insert_fragment(None, tokens).first_id
            self.operations.loads += 1
            self._observe(is_read=False)
            return first_id

    # ================================================================== updates ==

    def insert_before(self, node_id: int, xml_text: str, log: bool = True) -> Optional[int]:
        """Insert ``xml_text`` as the preceding sibling(s) of ``node_id``."""
        with self.telemetry.span("insert_before", node_id=node_id):
            tokens = self._ingest(xml_text, require_content=True)
            location = self.locator.locate(node_id)
            self._require_sibling_target(location)
            if log:
                self._log(RecordType.INSERT_BEFORE, node_id, xml_text)
            begin = location.begin
            last_before = (
                node_id - 1
                if begin.meta.start_id is not None and node_id > begin.meta.start_id
                else None
            )
            point = _InsertPoint(begin.meta, begin.offset, begin.pos, last_before)
            first_id = self._insert_fragment(point, tokens).first_id
            self.operations.inserts += 1
            self._observe(is_read=False)
            return first_id

    def insert_after(self, node_id: int, xml_text: str, log: bool = True) -> Optional[int]:
        """Insert ``xml_text`` as the following sibling(s) of ``node_id``."""
        with self.telemetry.span("insert_after", node_id=node_id):
            tokens = self._ingest(xml_text, require_content=True)
            location = self.locator.locate(node_id)
            self._require_sibling_target(location)
            if log:
                self._log(RecordType.INSERT_AFTER, node_id, xml_text)
            end = self._end_item(location)
            point = self._point_after(end)
            first_id = self._insert_fragment(point, tokens).first_id
            self.operations.inserts += 1
            self._observe(is_read=False)
            return first_id

    def insert_into_first(self, node_id: int, xml_text: str, log: bool = True) -> Optional[int]:
        """Insert ``xml_text`` as the first child(ren) of element
        ``node_id`` (after its attributes)."""
        with self.telemetry.span("insert_into_first", node_id=node_id):
            tokens = self._ingest(xml_text, require_content=True)
            location = self.locator.locate(node_id)
            self._require_element_target(location)
            if log:
                self._log(RecordType.INSERT_INTO_FIRST, node_id, xml_text)
            point = self._point_after_attributes(location.begin)
            first_id = self._insert_fragment(point, tokens).first_id
            self.operations.inserts += 1
            self._observe(is_read=False)
            return first_id

    def insert_into_last(self, node_id: int, xml_text: str, log: bool = True) -> Optional[int]:
        """Insert ``xml_text`` as the last child(ren) of element
        ``node_id`` — the paper's running example (§4.5)."""
        with self.telemetry.span("insert_into_last", node_id=node_id):
            tokens = self._ingest(xml_text, require_content=True)
            location = self.locator.locate(node_id)
            self._require_element_target(location)
            if log:
                self._log(RecordType.INSERT_INTO_LAST, node_id, xml_text)
            end = self._end_item(location)
            point = _InsertPoint(end.meta, end.offset, end.pos, end.last_id)
            outcome = self._insert_fragment(point, tokens)
            # Table 4 discipline: the lookups this update performed are kept,
            # updated to the post-split locations of the target's tokens.
            self._refresh_entry_after_insert(location, outcome)
            self.operations.inserts += 1
            self._observe(is_read=False)
            return outcome.first_id

    def delete_node(self, node_id: int, log: bool = True) -> None:
        """Remove the node and its entire subtree."""
        with self.telemetry.span("delete_node", node_id=node_id):
            location = self.locator.locate(node_id)
            if log:
                self._log(RecordType.DELETE_NODE, node_id, "")
            end = self._end_item(location)
            self._delete_span(location.begin, end)
            self.operations.deletes += 1
            self._observe(is_read=False)

    def replace_node(self, node_id: int, xml_text: str, log: bool = True) -> Optional[int]:
        """Replace the node (and subtree) with ``xml_text``."""
        with self.telemetry.span("replace_node", node_id=node_id):
            tokens = self._ingest(xml_text, require_content=True)
            location = self.locator.locate(node_id)
            if log:
                self._log(RecordType.REPLACE_NODE, node_id, xml_text)
            end = self._end_item(location)
            point = self._delete_span(location.begin, end)
            first_id = self._insert_fragment(point, tokens).first_id
            self.operations.replaces += 1
            self._observe(is_read=False)
            return first_id

    def replace_content(self, node_id: int, xml_text: str, log: bool = True) -> Optional[int]:
        """Replace an element's content (children), keeping attributes."""
        with self.telemetry.span("replace_content", node_id=node_id):
            tokens = self._ingest(xml_text)
            location = self.locator.locate(node_id)
            self._require_element_target(location)
            if log:
                self._log(RecordType.REPLACE_CONTENT, node_id, xml_text)
            content_start = self._first_content_item(location.begin)
            point: Optional[_InsertPoint]
            if content_start.token.is_end and content_start.token.kind == TokenKind.END_ELEMENT:
                # no existing content: check it is *our* end token (depth 0)
                point = _InsertPoint(
                    content_start.meta,
                    content_start.offset,
                    content_start.pos,
                    content_start.last_id,
                )
            else:
                last_content = self._last_item_before_end(content_start)
                point = self._delete_span(content_start, last_content)
            if tokens:
                self._insert_fragment(point, tokens)
            self.operations.replaces += 1
            self._observe(is_read=False)
            return node_id

    # =============================================================== inspection ==

    @property
    def tokens_processed(self) -> int:
        """Tokens scanned by lookups plus tokens emitted by reads."""
        return self.locator.stats.tokens_scanned + self.tokens_emitted

    @property
    def index_entries_loaded(self) -> int:
        """B+-tree entries decoded by the range index (and full index)."""
        total = self.range_index._tree.entries_loaded
        if self.full_index is not None:
            total += self.full_index._tree.entries_loaded
        return total

    @property
    def simulated_seconds(self) -> float:
        """The full simulated clock: disk I/O plus per-token and
        per-index-entry CPU cost."""
        disk = getattr(self.device, "stats", None)
        disk_seconds = disk.simulated_seconds if disk is not None else 0.0
        return (
            disk_seconds
            + self.wal.simulated_sync_seconds
            + self.tokens_emitted * self.config.cpu_cost_per_token
            + self.locator.stats.tokens_scanned * self.config.cpu_cost_per_scan_token
            + self.index_entries_loaded * self.config.cpu_cost_per_index_entry
        )

    @property
    def stats(self) -> StoreStatistics:
        disk_stats = getattr(self.device, "stats", None)
        if disk_stats is None:
            from repro.storage.disk import DiskStats

            disk_stats = DiskStats()
        return StoreStatistics(
            operations=self.operations,
            locator=self.locator.stats,
            disk=disk_stats,
            buffer=self.pool.stats,
            partial=self.partial_index.stats if self.partial_index is not None else None,
        )

    def range_snapshot(self) -> List[Tuple[int, int, Optional[int], Optional[int]]]:
        """Rows shaped like the paper's Tables 2–3:
        (RangeId, BlockId, StartId, EndId), in document order."""
        return [
            (meta.range_id, meta.start.block_no, meta.start_id, meta.end_id)
            for meta in self.ranges.in_order()
        ]

    def partial_snapshot(self) -> List[Tuple[int, int]]:
        """Rows shaped like the paper's Table 4: (NodeId, Range) of each
        memoized begin token."""
        if self.partial_index is None:
            return []
        return sorted(
            (entry.node_id, entry.range_id)
            for entry in self.partial_index._entries.values()
        )

    def check_integrity(self) -> None:
        """Verify every store invariant; raises on the first broken one.
        For a per-check structured report (what ``repro verify`` prints),
        see :func:`repro.core.integrity.integrity_report`."""
        from repro.core.integrity import integrity_report

        report = integrity_report(self)
        failed = report.failed()
        if failed:
            raise StoreError(
                f"integrity check {failed[0].name!r} failed: {failed[0].error}"
            )

    # ================================================================ durability ==

    def checkpoint(self) -> bytes:
        """Flush everything and return the catalog bytes; marks the WAL."""
        with self.telemetry.span("checkpoint"):
            self.pool.flush_all()
            self.wal.checkpoint()
            if self.history.enabled:
                self.history.capture(self, "checkpoint", skip_if_idle=True)
            if self.alerts.enabled:
                # after the history capture, so delta rules see this window
                self.alerts.evaluate_store(self, "checkpoint", skip_if_idle=True)
            return self.to_catalog()

    def to_catalog(self) -> bytes:
        scheme_state = self.id_scheme.to_catalog()
        flags = _FORMAT_CHECKSUMS if self.codec.checksums else 0
        sections = [
            self.layout.chain.to_catalog(),
            self.ranges.to_catalog(),
            _FORMAT_SECTION.pack(PAGE_FORMAT_VERSION, flags),
        ]
        full_root = self.full_index.root_block if self.full_index is not None else -1
        parts = [
            _CATALOG_HEADER.pack(
                self.range_index.root_block,
                full_root,
                len(scheme_state),
                len(sections),
            ),
            scheme_state,
        ]
        for section in sections:
            parts.append(struct.pack("<I", len(section)))
            parts.append(section)
        return b"".join(parts)

    @classmethod
    def from_catalog(
        cls,
        device: BlockDevice,
        catalog: bytes,
        config: Optional[StoreConfig] = None,
        wal: Optional[WriteAheadLog] = None,
        repair_mode: bool = False,
    ) -> "XMLStore":
        """Reopen a store from its device + catalog (last checkpoint state).

        The catalog's format section — not ``config.checksums_enabled`` —
        decides how block images are decoded: a legacy two-section
        catalog always opens via the raw read path, a framed store is
        always verified.  ``repair_mode=True`` skips the residency
        rebuild (which walks the whole chain and would raise on the
        first corrupt block); :func:`repro.core.repair.repair_store`
        rebuilds residency itself once the chain is clean.
        """
        config = config if config is not None else StoreConfig()
        store = cls.__new__(cls)
        store.config = config
        store.device = device
        range_root, full_root, scheme_len, n_sections = _CATALOG_HEADER.unpack_from(
            catalog, 0
        )
        offset = _CATALOG_HEADER.size
        store.id_scheme = SequentialIdScheme()
        store.id_scheme.restore_catalog(catalog[offset : offset + scheme_len])
        offset += scheme_len
        sections = []
        for _ in range(n_sections):
            (length,) = struct.unpack_from("<I", catalog, offset)
            offset += 4
            sections.append(catalog[offset : offset + length])
            offset += length
        checksums = False
        if len(sections) > 2:
            _version, flags = _FORMAT_SECTION.unpack_from(sections[2], 0)
            checksums = bool(flags & _FORMAT_CHECKSUMS)
        store.codec = PageCodec(device.block_size, checksums=checksums)
        store.pool = BufferPool(
            device, capacity=config.buffer_pool_capacity, codec=store.codec
        )
        store.wal = wal if wal is not None else WriteAheadLog()
        chain = ChainedFile.from_catalog(store.pool, sections[0])
        store.ranges = RangeTable.from_catalog(sections[1])
        store.layout = TokenLayout(store.pool, store.ranges, chain)
        order = effective_btree_order(config.btree_order, store.codec.page_size)
        store.range_index = RangeIndex(
            store.pool, order=order, root_block=range_root
        )
        store.partial_index = None
        store.full_index = None
        if config.policy in (IndexingPolicy.RANGE_PLUS_PARTIAL, IndexingPolicy.ADAPTIVE):
            store.partial_index = PartialIndex(config.partial_index_capacity)
        if config.policy is IndexingPolicy.FULL:
            if full_root == -1:
                raise StoreError("catalog has no full-index root for FULL policy")
            store.full_index = FullIndex(
                store.pool, order=order, root_block=full_root
            )
        store.locator = Locator(
            layout=store.layout,
            ranges=store.ranges,
            range_index=store.range_index,
            id_scheme=store.id_scheme,
            partial_index=store.partial_index,
            full_index=store.full_index,
        )
        store.adaptive = None
        if config.policy is IndexingPolicy.ADAPTIVE:
            store.adaptive = AdaptiveController(
                store.locator,
                store.partial_index,
                store.ranges,
                window=config.adaptive_window,
                read_threshold=config.adaptive_read_threshold,
            )
        store.operations = OperationCounts()
        store.tokens_emitted = 0
        from repro.core.navigation import StructuralHints

        store.structural_hints = StructuralHints()
        store._setup_telemetry()
        if not repair_mode:
            store._rebuild_residency()
        return store

    @classmethod
    def recover(
        cls,
        wal: WriteAheadLog,
        config: Optional[StoreConfig] = None,
        device: Optional[BlockDevice] = None,
    ) -> "XMLStore":
        """Crash recovery by logical full restore: build a fresh store and
        re-execute the entire operation log (see
        :func:`repro.storage.recovery.replay_all`)."""
        from repro.storage.recovery import replay_all

        store = cls(config=config, device=device, wal=wal)
        replay_all(store, wal)
        return store

    def _rebuild_residency(self) -> None:
        cursor = self.layout.iter_from(None)
        for meta in self.ranges.in_order():
            for _ in range(meta.token_count):
                try:
                    pos, _ = next(cursor)
                except StopIteration:
                    raise StoreError("chain shorter than range table") from None
                self.ranges.add_resident(pos.block_no, meta.range_id)

    def decode_node_id(self, id_bytes: bytes) -> int:
        """WAL-replay hook: decode an id serialized by this store."""
        return self.id_scheme.decode(id_bytes)

    # =============================================================== navigation ==

    def parent_of(self, node_id: int) -> Optional[int]:
        """Parent node id (None for top-level nodes); parent links are
        memoized and never go stale (§9 extension)."""
        from repro.core import navigation

        return navigation.parent_of(self, node_id)

    def ancestors_of(self, node_id: int) -> List[int]:
        """Ancestor ids, nearest first."""
        from repro.core import navigation

        return navigation.ancestors_of(self, node_id)

    def children_of(self, node_id: int) -> List[int]:
        """Child node ids in document order (attributes excluded)."""
        from repro.core import navigation

        return navigation.children_of(self, node_id)

    def attributes_of(self, node_id: int) -> List[int]:
        """Attribute node ids of an element, in document order."""
        from repro.core import navigation

        return navigation.attributes_of(self, node_id)

    def next_sibling_of(self, node_id: int) -> Optional[int]:
        """Id of the following sibling, or None."""
        from repro.core import navigation

        return navigation.next_sibling_of(self, node_id)

    # ================================================================ maintenance ==

    def compact(self, max_tokens: Optional[int] = None):
        """Merge adjacent ranges fragmented by updates (§9: "more
        optimizations of the read/update/storage overhead"); content and
        node ids are unchanged.  Returns a CompactionReport."""
        from repro.core.compaction import compact

        with self.telemetry.span("compact"):
            return compact(self, max_tokens=max_tokens)

    # ================================================================== queries ==

    def xpath(self, expression: str):
        """Evaluate an XPath (subset) expression against the store; see
        :mod:`repro.xpath` for the supported grammar."""
        from repro.xpath.evaluator import evaluate

        with self.telemetry.span("xpath", expression=expression):
            self._observe(is_read=True)
            return evaluate(self, expression)

    # ================================================================ internals ==

    def _observe(self, is_read: bool) -> None:
        if self.adaptive is not None:
            self.adaptive.observe(is_read)
        if self.history.enabled:
            self.history.observe(self, is_read)
        if self.alerts.enabled:
            self.alerts.observe(self)
        if self.recorder.enabled:
            self.recorder.observe(self)

    def _log(self, record_type: int, node_id: int, xml_text: str) -> None:
        self.wal.append(
            record_type,
            encode_op_payload(self.id_scheme.encode(node_id), xml_text),
        )


    def _end_item(self, location: NodeLocation) -> ScanItem:
        """The end-token item of a located node, reusing a memoized end
        when the partial index has a current one (paper Table 4)."""
        if location.end is not None:
            return location.end
        if self.partial_index is not None:
            cached = self.partial_index.probe(location.node_id, self.ranges)
            if cached is not None and cached.has_end:
                refreshed = self.locator._location_from_entry(cached)
                if refreshed.end is not None:
                    return refreshed.end
        end = self.locator.find_end(location.begin)
        location.end = end
        self.locator._memoize(location)
        return end

    def _ingest(self, xml_text: str, require_content: bool = False) -> List[Token]:
        tokens = strip_document_tokens(tokenize_fragment(xml_text))
        if self.config.validate_input:
            validate_stream(tokens, allow_document=False)
        if require_content and not tokens:
            raise InvalidOperationError("the inserted fragment is empty")
        return tokens

    @staticmethod
    def _require_element_target(location: NodeLocation) -> None:
        if location.begin.token.kind != TokenKind.BEGIN_ELEMENT:
            raise InvalidOperationError(
                f"target node {location.node_id} is not an element"
            )

    @staticmethod
    def _require_sibling_target(location: NodeLocation) -> None:
        if location.begin.token.kind in (
            TokenKind.BEGIN_ATTRIBUTE,
            TokenKind.NAMESPACE,
        ):
            raise InvalidOperationError(
                "cannot insert siblings next to an attribute or namespace node"
            )

    def _point_after(self, end: ScanItem) -> Optional[_InsertPoint]:
        """The insert point immediately following ``end``."""
        nxt = next(self.locator.continue_scan(end), None)
        if nxt is None:
            return None
        last_before = end.last_id if nxt.order_index == end.order_index else None
        # nxt's own last_id may include nxt itself (if it starts a node);
        # tokens strictly before nxt within its range end at `end`.
        if nxt.offset == 0:
            last_before = None
        return _InsertPoint(nxt.meta, nxt.offset, nxt.pos, last_before)

    def _point_after_attributes(self, begin: ScanItem) -> _InsertPoint:
        """The insert point after an element's attribute tokens."""
        previous = begin
        for item in self.locator.continue_scan(begin):
            if item.token.kind in _ATTRIBUTE_KINDS:
                previous = item
                continue
            last_before = (
                previous.last_id
                if item.order_index == previous.order_index and item.offset > 0
                else None
            )
            return _InsertPoint(item.meta, item.offset, item.pos, last_before)
        raise StoreError("element has no end token (bug)")

    def _first_content_item(self, begin: ScanItem) -> ScanItem:
        for item in self.locator.continue_scan(begin):
            if item.token.kind not in _ATTRIBUTE_KINDS:
                return item
        raise StoreError("element has no end token (bug)")

    def _last_item_before_end(self, content_start: ScanItem) -> ScanItem:
        """Last token item of the element content beginning at
        ``content_start`` (whose enclosing element's end token follows)."""
        depth = 0
        previous = content_start
        if content_start.token.is_begin:
            depth = 1
        for item in self.locator.continue_scan(content_start):
            if depth == 0 and item.token.kind == TokenKind.END_ELEMENT:
                return previous
            if item.token.is_begin:
                depth += 1
            elif item.token.is_end:
                depth -= 1
            previous = item
        return previous

    # ----------------------------------------------------------- insert engine --

    def _insert_fragment(
        self, point: Optional[_InsertPoint], tokens: Sequence[Token]
    ) -> _InsertOutcome:
        """Insert ``tokens`` as one-or-more fresh ranges at ``point``
        (None = end of document)."""
        if not tokens:
            return _InsertOutcome(first_id=None)
        records = encode_tokens(tokens)
        node_count = count_nodes(tokens)
        first_id: Optional[int] = None
        last_id: Optional[int] = None
        if node_count:
            first_id, last_id = self.id_scheme.allocate_interval(node_count)
        # ---- physical placement
        target_pos = point.pos if point is not None else None
        result = self.layout.insert_before(target_pos, records)
        # ---- logical range bookkeeping
        displaced: Optional[Tuple[RangeMeta, Position]] = None
        if point is None:
            anchor_after = self.ranges.last.range_id if len(self.ranges) else None
            new_metas = self._create_ranges(
                records, tokens, result.positions, first_id, after=anchor_after
            )
        elif point.offset == 0:
            new_metas = self._create_ranges(
                records, tokens, result.positions, first_id,
                before=point.meta.range_id,
            )
            assert result.following is not None
            displaced = (point.meta, result.following)
        else:
            new_metas, tail_meta = self._split_and_insert(
                point, result, records, tokens, first_id
            )
            displaced = (tail_meta, tail_meta.start)
        self.operations.ranges_created += len(new_metas)
        self.operations.nodes_inserted += node_count
        # ---- eager indexing (FULL policy / Ablation C)
        if self.full_index is not None or self.config.eager_partial_index:
            self._index_inserted(new_metas)
        return _InsertOutcome(first_id=first_id, displaced=displaced)

    def _refresh_entry_after_insert(
        self, location: NodeLocation, outcome: _InsertOutcome
    ) -> None:
        """Re-memoize the insert target's begin/end locations with their
        post-split coordinates (the paper's Table 4: the partial index is
        updated, not just invalidated, by the update operation)."""
        if (
            self.partial_index is None
            or not self.locator.populate_partial
            or outcome.displaced is None
        ):
            return
        begin = location.begin
        end_meta, end_pos = outcome.displaced
        # the begin token never moves during an insert after it, so its
        # position and offset are still valid against the *new* version
        self.partial_index.remember(
            LocationEntry(
                node_id=location.node_id,
                range_id=begin.meta.range_id,
                version=begin.meta.version,
                begin_pos=begin.pos,
                begin_offset=begin.offset,
                end_range_id=end_meta.range_id,
                end_version=end_meta.version,
                end_pos=end_pos,
                end_offset=0,
                end_last_id=None,
            )
        )

    def _chunk_counts(self, total_tokens: int) -> List[int]:
        limit = self.config.max_range_tokens
        if limit is None or total_tokens <= limit:
            return [total_tokens]
        counts = []
        remaining = total_tokens
        while remaining > 0:
            take = min(limit, remaining)
            counts.append(take)
            remaining -= take
        return counts

    def _create_ranges(
        self,
        records: Sequence[bytes],
        tokens: Sequence[Token],
        positions: Sequence[Position],
        first_id: Optional[int],
        after: Optional[int] = None,
        before: Optional[int] = None,
    ) -> List[RangeMeta]:
        """Create range metas (one per granularity chunk) over freshly
        inserted records, register them, and record residency."""
        metas: List[RangeMeta] = []
        offset = 0
        next_id = first_id
        anchor_after = after
        for chunk_tokens in self._chunk_counts(len(records)):
            chunk_nodes = count_nodes(tokens[offset : offset + chunk_tokens])
            if chunk_nodes and next_id is not None:
                start_id: Optional[int] = next_id
                end_id: Optional[int] = next_id + chunk_nodes - 1
                next_id = end_id + 1
            else:
                start_id = end_id = None
            meta = self.ranges.new_range(
                start=positions[offset],
                token_count=chunk_tokens,
                start_id=start_id,
                end_id=end_id,
                after=anchor_after,
                before=before if anchor_after is None else None,
            )
            self.range_index.register(meta)
            for pos in positions[offset : offset + chunk_tokens]:
                self.ranges.add_resident(pos.block_no, meta.range_id)
            metas.append(meta)
            anchor_after = meta.range_id
            offset += chunk_tokens
        return metas

    def _split_and_insert(
        self,
        point: _InsertPoint,
        result,
        records: Sequence[bytes],
        tokens: Sequence[Token],
        first_id: Optional[int],
    ) -> Tuple[List[RangeMeta], RangeMeta]:
        """Interior insert: split ``point.meta`` into head + tail around
        the fresh ranges (the paper's §4.5 walk-through)."""
        meta = point.meta
        old_start_id = meta.start_id
        old_end_id = meta.end_id
        old_count = meta.token_count
        tail_pos = result.following
        if tail_pos is None:
            raise StoreError("interior insert did not displace a record (bug)")
        # head keeps tokens [0, offset)
        meta.token_count = point.offset
        last_before = point.last_id_before
        if last_before is None:
            # head has no node-starting tokens: its interval empties
            self.range_index.unregister(old_start_id)
            meta.start_id = None
            meta.end_id = None
        else:
            meta.end_id = last_before
        meta.bump()
        # fresh ranges for the inserted fragment
        new_metas = self._create_ranges(
            records, tokens, result.positions, first_id, after=meta.range_id
        )
        # tail takes tokens [offset, old_count)
        tail_nodes_remain = (
            old_end_id is not None
            and (last_before if last_before is not None else (old_start_id or 0) - 1)
            < old_end_id
        )
        if last_before is None:
            tail_start_id: Optional[int] = old_start_id
        else:
            tail_start_id = last_before + 1
        tail_meta = self.ranges.new_range(
            start=tail_pos,
            token_count=old_count - point.offset,
            start_id=tail_start_id if tail_nodes_remain else None,
            end_id=old_end_id if tail_nodes_remain else None,
            after=new_metas[-1].range_id,
        )
        self.range_index.register(tail_meta)
        self.ranges.add_resident(tail_pos.block_no, tail_meta.range_id)
        # conservative: tail may span every block the old range touched
        for block_no in self.ranges.blocks_of(meta.range_id):
            self.ranges.add_resident(block_no, tail_meta.range_id)
        self.operations.ranges_split += 1
        return new_metas, tail_meta

    def _index_inserted(self, new_metas: Sequence[RangeMeta]) -> None:
        """Eagerly index every node of freshly created ranges."""
        for meta in new_metas:
            if not meta.has_interval:
                continue
            for item in self.locator.scan_range(meta):
                if not item.token.starts_node:
                    continue
                assert item.last_id is not None
                if self.full_index is not None:
                    self.full_index.put(
                        item.last_id, meta.range_id, meta.version, item.pos, item.offset
                    )
                if self.config.eager_partial_index and self.partial_index is not None:
                    self.partial_index.remember(
                        LocationEntry(
                            node_id=item.last_id,
                            range_id=meta.range_id,
                            version=meta.version,
                            begin_pos=item.pos,
                            begin_offset=item.offset,
                        )
                    )

    # ----------------------------------------------------------- delete engine --

    def _delete_span(
        self, begin: ScanItem, end: ScanItem
    ) -> Optional[_InsertPoint]:
        """Delete tokens from ``begin`` to ``end`` inclusive; returns the
        insert point at the deletion site (None = document end)."""
        same_range = end.order_index == begin.order_index
        first_meta = begin.meta
        last_meta = end.meta
        # token count of the span
        if same_range:
            span = end.offset - begin.offset + 1
        else:
            span = first_meta.token_count - begin.offset
            for index in range(begin.order_index + 1, end.order_index):
                span += self.ranges.at_order(index).token_count
            span += end.offset + 1
        # deleted id intervals (dense by the range-density invariant)
        deleted_intervals: List[Tuple[int, int]] = []
        begin_id = begin.last_id
        assert begin_id is not None  # begin token starts the target node
        head_last = begin_id - 1
        head_keeps_interval = (
            first_meta.start_id is not None and head_last >= first_meta.start_id
        )
        if same_range:
            assert end.last_id is not None
            deleted_intervals.append((begin_id, end.last_id))
            tail_start_id = end.last_id + 1
            tail_has_interval = (
                first_meta.end_id is not None and tail_start_id <= first_meta.end_id
            )
            tail_end_id = first_meta.end_id
            tail_count = first_meta.token_count - end.offset - 1
        else:
            if first_meta.end_id is not None:
                deleted_intervals.append((begin_id, first_meta.end_id))
            middles = [
                self.ranges.at_order(index)
                for index in range(begin.order_index + 1, end.order_index)
            ]
            for middle in middles:
                if middle.has_interval:
                    assert middle.start_id is not None and middle.end_id is not None
                    deleted_intervals.append((middle.start_id, middle.end_id))
            if end.last_id is not None:
                if last_meta.start_id is not None:
                    deleted_intervals.append((last_meta.start_id, end.last_id))
                tail_start_id = end.last_id + 1
                tail_has_interval = (
                    last_meta.end_id is not None and tail_start_id <= last_meta.end_id
                )
            else:
                tail_start_id = last_meta.start_id if last_meta.start_id is not None else 0
                tail_has_interval = last_meta.has_interval
            tail_end_id = last_meta.end_id
            tail_count = last_meta.token_count - end.offset - 1
        # ---- logical updates before the physical delete
        tail_meta: Optional[RangeMeta] = None
        if same_range:
            head_count = begin.offset
            if head_count == 0 and tail_count == 0:
                self.range_index.unregister(first_meta.start_id)
                self._drop_range(first_meta)
            elif head_count == 0:
                # the range *becomes* its tail
                old_key = first_meta.start_id
                first_meta.token_count = tail_count
                first_meta.start_id = tail_start_id if tail_has_interval else None
                first_meta.end_id = tail_end_id if tail_has_interval else None
                first_meta.bump()
                self.range_index.rekey(old_key, first_meta)
                if not first_meta.has_interval:
                    self.range_index.unregister(old_key)
                tail_meta = first_meta
            elif tail_count == 0:
                first_meta.token_count = head_count
                if head_keeps_interval:
                    first_meta.end_id = head_last
                else:
                    self.range_index.unregister(first_meta.start_id)
                    first_meta.start_id = None
                    first_meta.end_id = None
                first_meta.bump()
            else:
                first_meta.token_count = head_count
                if head_keeps_interval:
                    first_meta.end_id = head_last
                else:
                    self.range_index.unregister(first_meta.start_id)
                    first_meta.start_id = None
                    first_meta.end_id = None
                first_meta.bump()
                tail_meta = self.ranges.new_range(
                    start=end.pos,  # placeholder; fixed after the physical delete
                    token_count=tail_count,
                    start_id=tail_start_id if tail_has_interval else None,
                    end_id=tail_end_id if tail_has_interval else None,
                    after=first_meta.range_id,
                )
                self.range_index.register(tail_meta)
        else:
            head_count = begin.offset
            if head_count == 0:
                self.range_index.unregister(first_meta.start_id)
                self._drop_range(first_meta)
            else:
                first_meta.token_count = head_count
                if head_keeps_interval:
                    first_meta.end_id = head_last
                else:
                    self.range_index.unregister(first_meta.start_id)
                    first_meta.start_id = None
                    first_meta.end_id = None
                first_meta.bump()
            for middle in middles:
                self.range_index.unregister(middle.start_id)
                self._drop_range(middle)
            if tail_count == 0:
                self.range_index.unregister(last_meta.start_id)
                self._drop_range(last_meta)
            else:
                old_key = last_meta.start_id
                last_meta.token_count = tail_count
                last_meta.start_id = tail_start_id if tail_has_interval else None
                last_meta.end_id = tail_end_id if tail_has_interval else None
                last_meta.bump()
                if last_meta.has_interval:
                    self.range_index.rekey(old_key, last_meta)
                else:
                    self.range_index.unregister(old_key)
                tail_meta = last_meta
        # ---- physical delete
        after = self.layout.delete_run(begin.pos, span)
        # fix the tail's start to the post-delete coordinates
        if tail_meta is not None:
            if after is None:
                raise StoreError("surviving tail but no record after the run (bug)")
            tail_meta.start = after
            self.ranges.add_resident(after.block_no, tail_meta.range_id)
            tail_meta.bump()
        # ---- index maintenance
        deleted_nodes = 0
        for low, high in deleted_intervals:
            deleted_nodes += high - low + 1
            if self.full_index is not None:
                self.full_index.remove_interval(low, high)
        self.operations.nodes_deleted += deleted_nodes
        # ---- where did the deleted content live?  (for replace_*)
        if tail_meta is not None:
            assert after is not None
            return _InsertPoint(tail_meta, 0, after, None)
        if after is None:
            return None
        # the run ended exactly at a surviving later range's head
        for meta in self.ranges.in_order():
            if meta.token_count and meta.start == after:
                return _InsertPoint(meta, 0, after, None)
        raise StoreError("post-delete position matches no range head (bug)")

    def _drop_range(self, meta: RangeMeta) -> None:
        if self.partial_index is not None:
            self.partial_index.forget_range(meta.range_id)
        self.ranges.drop(meta.range_id)
        self.operations.ranges_dropped += 1
