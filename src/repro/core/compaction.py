"""Range compaction: merging adjacent ranges (paper §9's "more
optimizations of the read/update/storage overhead").

Update-heavy histories fragment the document into many small ranges; each
costs a Range-Index entry and a per-range scan restart.  Two ranges that
are adjacent in document order can be merged *without moving a single
token* whenever their id intervals concatenate densely — i.e. scanning
the combined token run still regenerates exactly ``[start_id .. end_id]``:

* both have intervals and ``right.start_id == left.end_id + 1``, or
* the left range contains no node-starting tokens (its interval is empty,
  so the merged range's first node-start is the right range's), or
* the right range's interval is empty (the merged interval is the left's).

Merging is purely a metadata operation: extend the left meta, drop the
right meta and its index entry, and invalidate cached locations for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.ranges import RangeMeta


@dataclass
class CompactionReport:
    """What a compaction pass did."""

    ranges_before: int
    ranges_after: int
    merges: int

    @property
    def removed(self) -> int:
        return self.ranges_before - self.ranges_after


def can_merge(left: RangeMeta, right: RangeMeta) -> bool:
    """Whether two document-order-adjacent ranges can merge losslessly."""
    if left.token_count == 0 or right.token_count == 0:
        return True
    if not left.has_interval or not right.has_interval:
        return True
    assert left.end_id is not None and right.start_id is not None
    return right.start_id == left.end_id + 1


def merged_interval(
    left: RangeMeta, right: RangeMeta
) -> Tuple[Optional[int], Optional[int]]:
    """The id interval of the merged range."""
    if not left.has_interval:
        return right.start_id, right.end_id
    if not right.has_interval:
        return left.start_id, left.end_id
    return left.start_id, right.end_id


def compact(store, max_tokens: Optional[int] = None) -> CompactionReport:
    """Greedily merge adjacent mergeable ranges of ``store``.

    ``max_tokens`` bounds the merged range size (so compaction does not
    undo a granularity policy); ``None`` merges without bound.  Returns a
    report; the store's content and every live node id are unchanged.
    """
    ranges = store.ranges
    before = len(ranges)
    merges = 0
    index = 0
    while index + 1 < len(ranges):
        left = ranges.at_order(index)
        right = ranges.at_order(index + 1)
        combined = left.token_count + right.token_count
        if (
            can_merge(left, right)
            and (max_tokens is None or combined <= max_tokens)
        ):
            _merge_pair(store, left, right)
            merges += 1
            # stay at the same index: the new neighbour may merge too
        else:
            index += 1
    return CompactionReport(
        ranges_before=before, ranges_after=len(ranges), merges=merges
    )


def _merge_pair(store, left: RangeMeta, right: RangeMeta) -> None:
    old_left_key = left.start_id
    old_right_key = right.start_id
    start_id, end_id = merged_interval(left, right)
    # the merged range may start at the right range's position when the
    # left one is empty (e.g. a fully deleted head)
    if left.token_count == 0:
        left.start = right.start
    left.token_count += right.token_count
    left.start_id = start_id
    left.end_id = end_id
    left.bump()
    # the right range's blocks now host the left range's tokens
    for block_no in store.ranges.blocks_of(right.range_id):
        store.ranges.add_resident(block_no, left.range_id)
    # index maintenance: one entry keyed by the merged start id
    store.range_index.unregister(old_right_key)
    if left.has_interval:
        store.range_index.rekey(old_left_key, left)
    elif old_left_key is not None:
        store.range_index.unregister(old_left_key)
    # cached locations into the right range die with it
    if store.partial_index is not None:
        store.partial_index.forget_range(right.range_id)
    store.ranges.drop(right.range_id)
    store.operations.ranges_dropped += 1
