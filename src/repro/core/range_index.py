"""The coarse Range Index (paper §4.3): id interval → range.

One entry per range — *not* per node.  The index maps a range's
``start_id`` to its ``range_id``; because ranges' id intervals are
disjoint, the floor lookup (largest ``start_id <= node_id``) names the
only candidate range, and the range's ``end_id`` confirms coverage.

The index lives in a paged B+-tree on the same buffer pool as the data,
so its maintenance cost is charged to the same simulated clock — a few
entries per *insert operation* instead of one per *node*, which is the
whole point (§4.1: "fewer entries are inserted to the range index — a big
step forward in comparison to the full index approach").
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.core.ranges import RangeMeta, RangeTable
from repro.index.bptree import INT_KEY_CODEC, PagedBPlusTree
from repro.obs.events import NOOP_EVENT_LOG
from repro.storage.buffer import BufferPool

_VALUE = struct.Struct("<q")


class RangeIndex:
    """start_id -> range_id over a paged B+-tree."""

    def __init__(
        self, pool: BufferPool, order: int = 64, root_block: Optional[int] = None
    ) -> None:
        self._tree: PagedBPlusTree[int] = PagedBPlusTree(
            pool, INT_KEY_CODEC, order=order, root_block=root_block
        )
        self.lookups = 0
        #: Structured event log (no-op unless the store attaches one).
        self.event_log = NOOP_EVENT_LOG

    @property
    def root_block(self) -> int:
        return self._tree.root_block

    def register(self, meta: RangeMeta) -> None:
        """Index a range's interval (no-op for empty intervals)."""
        if meta.has_interval:
            assert meta.start_id is not None
            self._tree.insert(meta.start_id, _VALUE.pack(meta.range_id))

    def unregister(self, start_id: Optional[int]) -> None:
        """Drop the entry keyed by ``start_id`` (no-op for None)."""
        if start_id is not None:
            self._tree.delete(start_id)

    def rekey(self, old_start_id: Optional[int], meta: RangeMeta) -> None:
        """A range's interval changed its start: move its entry."""
        if old_start_id is not None and old_start_id != meta.start_id:
            self._tree.delete(old_start_id)
        self.register(meta)

    def locate(self, node_id: int, ranges: RangeTable) -> Optional[RangeMeta]:
        """The paper's ``rangeIndexLocate: {ID} -> {R}``: the range whose
        interval covers ``node_id``, or None."""
        self.lookups += 1
        item = self._tree.floor_item(node_id)
        meta: Optional[RangeMeta] = None
        if item is not None:
            _, value = item
            (range_id,) = _VALUE.unpack(value)
            if range_id in ranges:
                candidate = ranges.get(range_id)
                if candidate.covers(node_id):
                    meta = candidate
        if self.event_log.enabled:
            self.event_log.emit(
                "range_index",
                "locate",
                node_id=node_id,
                range_id=meta.range_id if meta is not None else None,
                start_id=meta.start_id if meta is not None else None,
                end_id=meta.end_id if meta is not None else None,
            )
        return meta

    def entries(self) -> Iterator[Tuple[int, int]]:
        """(start_id, range_id) pairs in id order (for reports/tests)."""
        for key, value in self._tree.items():
            yield key, _VALUE.unpack(value)[0]

    def __len__(self) -> int:
        return len(self._tree)

    def check_integrity(self, ranges: RangeTable) -> None:
        """Every non-empty range indexed exactly once, and vice versa."""
        from repro.errors import StoreError

        indexed = dict(self.entries())
        expected = {
            meta.start_id: meta.range_id
            for meta in ranges.in_order()
            if meta.has_interval
        }
        if indexed != expected:
            raise StoreError(
                f"range index {indexed} disagrees with table {expected}"
            )
        self._tree.check_integrity()
