"""Self-healing repair: rebuild a store around checksum-dead blocks.

The scrubber (:mod:`repro.storage.scrub`) finds blocks whose device
image fails verification; this module decides what the store can still
prove about itself and rebuilds everything else.  Two strategies, in
order of preference:

**Full-log rebuild** (:func:`rebuild_from_wal`, mode ``wal-rebuild``).
The WAL is never truncated — checkpoints only append markers — so the
log holds the complete operation history and replaying it onto a fresh
device (:meth:`XMLStore.recover`) is a *complete* recovery: nothing is
lost, no matter how many data blocks rotted.  :func:`repair_directory`
always tries this first.

**Structural salvage** (:func:`repair_store`, mode ``salvage``).  When
no usable log exists, the chain itself is mined: every record in a
*live* (verifying) block survives; dead blocks take their records with
them.  The rebuild leans on the paper's range invariants — ranges tile
the chain in document order and each range's node-starting tokens carry
exactly the dense interval ``[start_id, end_id]`` in scan order — which
make id reassignment for *prefixes* and *suffixes* of a damaged range
provable:

* a surviving run anchored at the range's **start** holds the first
  ``a`` node-starting tokens, hence ids ``start_id .. start_id+a-1``;
* a surviving run extending to the range's **end** holds the last ``b``,
  hence ids ``end_id-b+1 .. end_id``;
* a run floating between two losses is *ambiguous* — the number of ids
  consumed before it is unknowable — so its records are dropped rather
  than guessed: repair never fabricates an id binding.

Ids in between are reported as **lost intervals**; looking one up after
repair raises ``NodeNotFoundError`` (a detected absence, never a wrong
answer).  Derived state is not patched but rebuilt from scratch: fresh
chain, fresh range index, cleared partial memos, re-scanned full index,
fresh structural hints.  The id allocator is preserved, so ids of lost
nodes are never reissued.

Degraded reads (:func:`degraded_read`) serve whatever still verifies
*without* repairing: ranges free of quarantined blocks are salvaged in
document order and minimally re-balanced for serialization (only
synthetic end-tags are ever added — surviving content is emitted
verbatim), with lost id intervals reported alongside.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ChecksumError,
    ReproError,
    StoreCorruptError,
    TokenStreamError,
)
from repro.core.config import StoreConfig
from repro.core.full_index import FullIndex
from repro.core.indexing import AdaptiveController
from repro.core.integrity import integrity_report
from repro.core.layout import TokenLayout
from repro.core.locator import Locator
from repro.core.range_index import RangeIndex
from repro.core.ranges import RangeMeta, RangeTable
from repro.log import get_logger
from repro.obs.incident import record_directory_incident
from repro.storage.heap import ChainedFile
from repro.storage.scrub import ScrubReport, scrub_store
from repro.storage.wal import LogRecord, WriteAheadLog
from repro.xmltoken.binary import decode_token
from repro.xmltoken.serializer import serialize
from repro.xmltoken.tokens import Token, TokenKind

#: Sidecar written next to a salvaged directory store that came back
#: *degraded* (data provably lost): ``repro verify`` reads it and exits
#: 1 (degraded-but-repaired) instead of 0.  Removed on full recovery.
SIDECAR_FILE = "store.repair.json"

_log = get_logger("core.repair")


@dataclass
class RepairReport:
    """What one repair pass did and what it could not save."""

    #: "clean" (nothing to do) | "salvage" | "wal-rebuild"
    mode: str = "clean"
    bad_blocks: List[int] = field(default_factory=list)
    records_kept: int = 0
    #: surviving records dropped because their id binding was ambiguous
    records_dropped: int = 0
    ranges_before: int = 0
    ranges_after: int = 0
    #: dense id intervals whose nodes are gone: [(low, high)], ascending
    lost_intervals: List[Tuple[int, int]] = field(default_factory=list)
    memos_dropped: int = 0
    #: WAL-tail operations re-applied / skipped during the splice
    spliced_ops: int = 0
    skipped_ops: int = 0
    #: operations replayed by a full-log rebuild
    replayed_ops: int = 0
    integrity_ok: bool = True

    @property
    def lost_ids(self) -> int:
        return sum(high - low + 1 for low, high in self.lost_intervals)

    @property
    def degraded(self) -> bool:
        """True when the repaired store provably lost data (or still
        fails integrity): the CLI maps this to exit code 1."""
        return bool(
            self.lost_intervals
            or self.records_dropped
            or self.skipped_ops
            or not self.integrity_ok
        )

    def to_dict(self) -> dict:
        from repro.obs.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "mode": self.mode,
            "degraded": self.degraded,
            "integrity_ok": self.integrity_ok,
            "bad_blocks": list(self.bad_blocks),
            "records_kept": self.records_kept,
            "records_dropped": self.records_dropped,
            "ranges_before": self.ranges_before,
            "ranges_after": self.ranges_after,
            "lost_intervals": [list(pair) for pair in self.lost_intervals],
            "lost_ids": self.lost_ids,
            "memos_dropped": self.memos_dropped,
            "spliced_ops": self.spliced_ops,
            "skipped_ops": self.skipped_ops,
            "replayed_ops": self.replayed_ops,
        }

    def render(self) -> str:
        lines = [f"repair: mode={self.mode} "
                 f"{'DEGRADED' if self.degraded else 'ok'}"]
        if self.bad_blocks:
            lines.append(f"  bad blocks: {self.bad_blocks}")
        if self.mode == "wal-rebuild":
            lines.append(f"  operations replayed: {self.replayed_ops}")
        if self.mode == "salvage":
            lines.append(
                f"  records: {self.records_kept} kept, "
                f"{self.records_dropped} dropped (ambiguous id binding)"
            )
            lines.append(
                f"  ranges: {self.ranges_before} -> {self.ranges_after}"
            )
            if self.spliced_ops or self.skipped_ops:
                lines.append(
                    f"  wal tail: {self.spliced_ops} ops re-applied, "
                    f"{self.skipped_ops} skipped"
                )
        for low, high in self.lost_intervals:
            lines.append(f"  lost ids: [{low}..{high}]")
        lines.append(f"  integrity: {'ok' if self.integrity_ok else 'FAILED'}")
        return "\n".join(lines)


# =========================================================== salvage core ==


@dataclass
class _Segment:
    """A maximal surviving run of one range's records."""

    records: List[bytes]
    #: chain ordinal of the block holding the run's last record so far
    last_ordinal: int


def _count_node_starts(records: List[bytes]) -> Optional[int]:
    """Node-starting tokens in ``records``; None if any record fails to
    decode (the caller then drops the segment rather than guess)."""
    count = 0
    try:
        for record in records:
            if decode_token(record).starts_node:
                count += 1
    except ReproError:
        return None
    except Exception:  # defensive: undecodable bytes that passed CRC
        return None
    return count


def repair_store(
    store,
    wal_records: Optional[List[LogRecord]] = None,
    scrub_report: Optional[ScrubReport] = None,
) -> RepairReport:
    """Structurally salvage ``store`` in place around its dead blocks.

    Runs a scrub (unless a *complete* ``scrub_report`` is supplied),
    then rebuilds the chain from surviving records with provable id
    assignments only (see the module docstring), re-deriving every
    secondary structure.  ``wal_records`` (e.g. the tail after the last
    checkpoint) are replayed afterwards per-record, skipping — and
    counting — any that no longer apply because their target ids were
    lost.  Returns a :class:`RepairReport`; the store is usable (and
    passes integrity checks) afterwards even when degraded.
    """
    report = scrub_report
    if report is None or not report.complete:
        report = scrub_store(store)
    bad = set(report.bad_blocks()) | set(store.pool.quarantined_blocks())
    result = RepairReport(bad_blocks=sorted(bad))
    result.ranges_before = len(list(store.ranges.in_order()))

    chain = store.layout.chain
    chain_blocks = list(chain.blocks())
    ordinal = {block_no: i for i, block_no in enumerate(chain_blocks)}

    # -- read every surviving record up front (before any mutation) --------
    block_records: Dict[int, List[bytes]] = {}
    for block_no in chain_blocks:
        if block_no in bad:
            continue
        try:
            with store.pool.fetch(block_no) as guard:
                block_records[block_no] = list(guard.page.records())
        except ChecksumError:
            bad.add(block_no)
    result.bad_blocks = sorted(bad)

    if not bad:
        result.mode = "clean"
        store._rebuild_residency()
        result.ranges_after = result.ranges_before
        result.records_kept = sum(len(r) for r in block_records.values())
        result.integrity_ok = integrity_report(store).ok
        return result

    result.mode = "salvage"
    dead_ordinals = sorted(ordinal[b] for b in bad if b in ordinal)

    # global survivor sequence, keyed by (chain ordinal, slot)
    survivors: List[Tuple[int, int, bytes]] = []
    for block_no in chain_blocks:
        if block_no in bad:
            continue
        for slot, record in enumerate(block_records[block_no]):
            survivors.append((ordinal[block_no], slot, record))

    # range windows: [start_key[i], start_key[i+1]) tile the survivor keys
    metas = [m for m in store.ranges.in_order() if m.token_count > 0]
    start_keys: List[Tuple[int, int]] = []
    for meta in metas:
        block_ordinal = ordinal.get(meta.start.block_no)
        if block_ordinal is None:
            raise StoreCorruptError(
                f"range {meta.range_id} starts in block "
                f"{meta.start.block_no}, which is not in the chain"
            )
        start_keys.append((block_ordinal, meta.start.slot))
    end_sentinel = (len(chain_blocks), 0)

    def dead_between(low_ordinal: int, high_ordinal: int) -> bool:
        """Any dead block strictly between the two chain ordinals?"""
        left = bisect_right(dead_ordinals, low_ordinal)
        return left < bisect_left(dead_ordinals, high_ordinal)

    specs: List[Tuple[List[bytes], Optional[int], Optional[int]]] = []
    cursor = 0
    for index, meta in enumerate(metas):
        window_end = start_keys[index + 1] if index + 1 < len(metas) else end_sentinel
        window: List[Tuple[int, int, bytes]] = []
        while cursor < len(survivors) and survivors[cursor][:2] < window_end:
            window.append(survivors[cursor])
            cursor += 1

        if len(window) == meta.token_count:
            # nothing of this range was lost (a dead block between two of
            # its survivors can only have been empty)
            specs.append(
                ([rec for _, _, rec in window], meta.start_id, meta.end_id)
            )
            result.records_kept += len(window)
            continue

        # some records are gone: split the survivors into maximal runs
        head_intact = bool(window) and window[0][:2] == start_keys[index]
        tail_intact = False
        if window:
            last_ordinal = window[-1][0]
            end_block_ordinal, end_slot = window_end
            tail_intact = not dead_between(last_ordinal, end_block_ordinal)
            if end_slot > 0 and chain_blocks[end_block_ordinal] in bad:
                # the window ran into the next range's start block, and
                # that block is dead: our tail records died with it
                tail_intact = False
        segments: List[_Segment] = []
        for entry in window:
            if segments and not dead_between(segments[-1].last_ordinal, entry[0]):
                segments[-1].records.append(entry[2])
                segments[-1].last_ordinal = entry[0]
            else:
                segments.append(_Segment(records=[entry[2]], last_ordinal=entry[0]))

        prefix = segments[0].records if head_intact else None
        suffix = (
            segments[-1].records
            if tail_intact and len(segments) > (1 if head_intact else 0)
            else None
        )
        if head_intact and tail_intact and len(segments) == 1:
            # both ends survive in one run yet records are missing: the
            # invariants are already violated; keep the provable prefix
            suffix = None

        if not meta.has_interval:
            # markup-only range: no ids to assign, keep every survivor
            kept = [rec for _, _, rec in window]
            if kept:
                specs.append((kept, None, None))
                result.records_kept += len(kept)
            continue

        start_id, end_id = meta.start_id, meta.end_id
        prefix_nodes = _count_node_starts(prefix) if prefix is not None else 0
        suffix_nodes = _count_node_starts(suffix) if suffix is not None else 0
        if prefix_nodes is None:
            prefix, prefix_nodes = None, 0
        if suffix_nodes is None:
            suffix, suffix_nodes = None, 0
        if prefix_nodes + suffix_nodes > end_id - start_id + 1:
            # cannot happen under the density invariant; never guess
            suffix, suffix_nodes = None, 0

        kept_records = 0
        if prefix:
            specs.append((
                prefix,
                start_id if prefix_nodes else None,
                start_id + prefix_nodes - 1 if prefix_nodes else None,
            ))
            kept_records += len(prefix)
        if suffix:
            specs.append((
                suffix,
                end_id - suffix_nodes + 1 if suffix_nodes else None,
                end_id if suffix_nodes else None,
            ))
            kept_records += len(suffix)
        result.records_kept += kept_records
        result.records_dropped += len(window) - kept_records
        lost_low = start_id + prefix_nodes
        lost_high = end_id - suffix_nodes
        if lost_low <= lost_high:
            result.lost_intervals.append((lost_low, lost_high))

    result.lost_intervals.sort()

    # -- tear down the old physical state ---------------------------------
    old_index_blocks = _reachable_index_blocks(store.range_index._tree)
    if store.full_index is not None:
        old_index_blocks.extend(_reachable_index_blocks(store.full_index._tree))
    # a stale-valid index page can list reallocated (now-chain) blocks as
    # children, so the two walks may overlap: free each block once
    for block_no in set(chain_blocks) | set(old_index_blocks):
        store.pool.free_page(block_no)
    # blocks in subtrees below a corrupt index node are unreachable and
    # leak (never freed): acceptable — space, not correctness
    store.pool.clear_quarantine()

    # -- rebuild: fresh chain, fresh ranges, fresh indexes ------------------
    from repro.core.store import effective_btree_order

    result.memos_dropped = (
        len(store.partial_index._entries) if store.partial_index is not None else 0
    )
    order = effective_btree_order(store.config.btree_order, store.codec.page_size)
    new_chain = ChainedFile(store.pool)
    new_ranges = RangeTable()
    new_layout = TokenLayout(store.pool, new_ranges, new_chain)
    new_range_index = RangeIndex(store.pool, order=order)
    new_full = (
        FullIndex(store.pool, order=order) if store.full_index is not None else None
    )
    previous: Optional[int] = None
    for records, start_id, end_id in specs:
        positions = new_chain.append_records(records)
        meta = new_ranges.new_range(
            start=positions[0],
            token_count=len(records),
            start_id=start_id,
            end_id=end_id,
            after=previous,
        )
        new_range_index.register(meta)
        for pos in positions:
            new_ranges.add_resident(pos.block_no, meta.range_id)
        previous = meta.range_id

    store.ranges = new_ranges
    store.layout = new_layout
    store.range_index = new_range_index
    store.full_index = new_full
    if store.partial_index is not None:
        store.partial_index.clear()
    store.locator = Locator(
        layout=new_layout,
        ranges=new_ranges,
        range_index=new_range_index,
        id_scheme=store.id_scheme,
        partial_index=store.partial_index,
        full_index=new_full,
    )
    store.locator.attach_telemetry(store.telemetry)
    store.locator.event_log = store.event_log
    new_range_index.event_log = store.event_log
    if new_full is not None:
        new_full.event_log = store.event_log
    from repro.core.navigation import StructuralHints

    store.structural_hints = StructuralHints()
    if store.adaptive is not None:
        store.adaptive = AdaptiveController(
            store.locator,
            store.partial_index,
            store.ranges,
            window=store.config.adaptive_window,
            read_threshold=store.config.adaptive_read_threshold,
        )
    if new_full is not None or store.config.eager_partial_index:
        store._index_inserted(list(new_ranges.in_order()))
    result.ranges_after = len(list(new_ranges.in_order()))

    # -- splice the WAL tail, tolerantly -----------------------------------
    if wal_records:
        from repro.storage.recovery import replay_record

        for record in wal_records:
            try:
                replay_record(store, record)
                result.spliced_ops += 1
            except ReproError:
                result.skipped_ops += 1

    result.integrity_ok = integrity_report(store).ok
    if store.event_log.enabled:
        store.event_log.emit(
            "recovery",
            "repair_complete",
            severity="warning" if result.degraded else "info",
            mode=result.mode,
            bad_blocks=len(result.bad_blocks),
            records_kept=result.records_kept,
            records_dropped=result.records_dropped,
            lost_ids=result.lost_ids,
            skipped_ops=result.skipped_ops,
            integrity_ok=result.integrity_ok,
        )
    _log.warning(
        "repair (%s): %d bad blocks, %d records kept, %d dropped, %d ids lost",
        result.mode,
        len(result.bad_blocks),
        result.records_kept,
        result.records_dropped,
        result.lost_ids,
    )
    return result


def _reachable_index_blocks(tree) -> List[int]:
    """Every index block reachable from the root, tolerating corrupt
    nodes (their subtrees are unreachable and simply not returned)."""
    out: List[int] = []
    stack = [tree.root_block]
    while stack:
        block_no = stack.pop()
        out.append(block_no)
        try:
            node = tree._load(block_no)
        except ReproError:
            continue
        if not node.is_leaf:
            stack.extend(node.children)
    return out


# ====================================================== full-log rebuild ==


def rebuild_from_wal(
    wal: WriteAheadLog,
    config: Optional[StoreConfig] = None,
    device=None,
) -> Tuple["object", int]:
    """Complete recovery: replay the full operation log onto a fresh
    store.  Sound because the WAL is never truncated (checkpoints only
    append markers) and every mutating operation is logged before it
    executes.  Returns ``(store, operations_replayed)``.
    """
    from repro.core.store import XMLStore
    from repro.storage.recovery import replay_all

    store = XMLStore(config=config, device=device, wal=wal)
    replayed = replay_all(store, wal)
    return store, len(replayed)


# ========================================================= degraded reads ==


@dataclass
class DegradedRead:
    """Best-effort document text plus an honest account of the damage."""

    text: str
    #: True when this is a normal, complete read (no salvage needed)
    complete: bool
    lost_intervals: List[Tuple[int, int]] = field(default_factory=list)
    ranges_lost: int = 0
    #: True when synthetic end-tags were added to keep the surviving
    #: content serializable (structure around a loss was unbalanced)
    auto_balanced: bool = False

    def to_dict(self) -> dict:
        return {
            "complete": self.complete,
            "ranges_lost": self.ranges_lost,
            "lost_intervals": [list(pair) for pair in self.lost_intervals],
            "auto_balanced": self.auto_balanced,
            "text": self.text,
        }


def degraded_read(store) -> DegradedRead:
    """Read the store, degrading instead of failing on dead blocks.

    Tries a normal full read first.  On a checksum failure it salvages
    every range whose blocks all verify, in document order, reporting
    the id intervals of lost ranges; the surviving token stream is
    minimally re-balanced (only synthetic end-tags added, nothing
    invented) so it always serializes.  Content that is returned is
    always genuine — damage shows up as *absence*, never as a wrong
    answer.
    """
    try:
        return DegradedRead(text=store.read(), complete=True)
    except (ChecksumError, TokenStreamError):
        # ChecksumError: a dead block sits on the full-scan path.
        # TokenStreamError: a *prior* degraded salvage left the stream
        # unbalanced (lost begin/end tags), so the strict reader refuses
        # it — exactly the store this tolerant path exists for.
        pass
    tokens: List[Token] = []
    lost: List[Tuple[int, int]] = []
    ranges_lost = 0
    for meta in store.ranges.in_order():
        try:
            tokens.extend(_range_tokens(store, meta))
        except (ChecksumError, StopIteration):
            ranges_lost += 1
            if meta.has_interval:
                lost.append((meta.start_id, meta.end_id))
    balanced, changed = _balance_tokens(tokens)
    return DegradedRead(
        text=serialize(balanced),
        complete=False,
        lost_intervals=lost,
        ranges_lost=ranges_lost,
        auto_balanced=changed,
    )


def _range_tokens(store, meta: RangeMeta) -> List[Token]:
    """All tokens of one range, collected atomically (so a checksum
    failure midway contributes nothing)."""
    out: List[Token] = []
    cursor = store.layout.iter_from(meta.start)
    for _ in range(meta.token_count):
        _, record = next(cursor)
        out.append(decode_token(record))
    return out


def _balance_tokens(tokens: List[Token]) -> Tuple[List[Token], bool]:
    """Minimal edit making a salvaged stream serializable.

    Drops tokens the serializer would reject (unmatched end tokens,
    attribute material with no open start tag) and closes elements left
    open at the end.  Every kept token is genuine surviving content;
    the only *synthetic* tokens ever added are END_ATTRIBUTE/END_ELEMENT
    closers.  Returns ``(tokens, changed)``.
    """
    out: List[Token] = []
    changed = False
    stack: List[str] = []  # open element names
    tag_open = False  # start tag still open: attributes are legal
    attr_open = False  # inside BEGIN_ATTRIBUTE .. END_ATTRIBUTE

    def close_attribute() -> None:
        nonlocal attr_open, changed
        if attr_open:
            out.append(Token(TokenKind.END_ATTRIBUTE))
            attr_open = False
            changed = True

    for token in tokens:
        kind = token.kind
        if kind in (TokenKind.BEGIN_DOCUMENT, TokenKind.END_DOCUMENT):
            out.append(token)  # serializer ignores them
        elif kind == TokenKind.BEGIN_ELEMENT:
            close_attribute()
            out.append(token)
            stack.append(token.name)
            tag_open = True
        elif kind == TokenKind.END_ELEMENT:
            close_attribute()
            if stack:
                out.append(token)
                stack.pop()
                tag_open = False
            else:
                changed = True  # unmatched end: dropped
        elif kind == TokenKind.BEGIN_ATTRIBUTE:
            if tag_open and not attr_open:
                out.append(token)
                attr_open = True
            else:
                changed = True
        elif kind == TokenKind.ATTRIBUTE_VALUE:
            if attr_open:
                out.append(token)
            else:
                changed = True
        elif kind == TokenKind.END_ATTRIBUTE:
            if attr_open:
                out.append(token)
                attr_open = False
            else:
                changed = True
        elif kind == TokenKind.NAMESPACE:
            if tag_open and not attr_open:
                out.append(token)
            else:
                changed = True
        else:  # TEXT / COMMENT / PROCESSING_INSTRUCTION
            close_attribute()
            out.append(token)
            tag_open = False
    close_attribute()
    while stack:
        out.append(Token(TokenKind.END_ELEMENT))
        stack.pop()
        changed = True
    return out, changed


# ===================================================== directory stores ==


def repair_directory(path: str, config: Optional[StoreConfig] = None) -> RepairReport:
    """Repair the directory store at ``path`` (see ``repro repair``).

    Tries the full-log rebuild first — the WAL holds the complete
    operation history, so when it is present and readable the rebuild
    recovers *everything* — and falls back to structural salvage of the
    device + catalog.  On a degraded salvage a ``store.repair.json``
    sidecar is written next to the store (``repro verify`` maps it to
    exit code 1); a full recovery removes any stale sidecar.
    """
    from repro.core.filestore import (
        CATALOG_FILE,
        DEVICE_FILE,
        WAL_FILE,
        _write_catalog,
    )
    from repro.core.store import XMLStore
    from repro.storage.disk import FileBlockDevice, InstrumentedDevice

    config = config if config is not None else StoreConfig()
    device_path = os.path.join(path, DEVICE_FILE)
    wal_path = os.path.join(path, WAL_FILE)
    catalog_path = os.path.join(path, CATALOG_FILE)
    sidecar_path = os.path.join(path, SIDECAR_FILE)

    # -- strategy 1: full-log rebuild --------------------------------------
    if os.path.exists(wal_path):
        rebuild_path = device_path + ".rebuild"
        try:
            if os.path.exists(rebuild_path):
                os.remove(rebuild_path)
            wal = WriteAheadLog(wal_path)
            try:
                device = InstrumentedDevice(
                    FileBlockDevice(rebuild_path, block_size=config.page_size),
                    cost_model=config.cost_model,
                )
                store, replayed = rebuild_from_wal(wal, config=config, device=device)
                report = RepairReport(mode="wal-rebuild", replayed_ops=replayed)
                report.ranges_after = len(list(store.ranges.in_order()))
                report.integrity_ok = integrity_report(store).ok
                if not report.integrity_ok:
                    raise StoreCorruptError("full-log rebuild fails integrity")
                catalog = store.checkpoint()
                device.close()
                os.replace(rebuild_path, device_path)
                _write_catalog(catalog_path, catalog)
            finally:
                wal.close()
        except ReproError as error:
            _log.warning(
                "full-log rebuild of %s failed (%s); falling back to salvage",
                path,
                error,
            )
            if os.path.exists(rebuild_path):
                os.remove(rebuild_path)
        else:
            if os.path.exists(sidecar_path):
                os.remove(sidecar_path)
            record_directory_incident(
                path, "repair", {"report": report.to_dict()}, config=config
            )
            return report

    # -- strategy 2: structural salvage ------------------------------------
    if not (os.path.exists(catalog_path) and os.path.exists(device_path)):
        raise StoreCorruptError(
            f"{path}: no usable WAL and no catalog+device to salvage"
        )
    with open(catalog_path, "rb") as handle:
        catalog = handle.read()
    device = InstrumentedDevice(
        FileBlockDevice(device_path, block_size=config.page_size),
        cost_model=config.cost_model,
    )
    wal = WriteAheadLog(wal_path) if os.path.exists(wal_path) else WriteAheadLog()
    try:
        store = XMLStore.from_catalog(
            device, catalog, config=config, wal=wal, repair_mode=True
        )
        try:
            tail = wal.records_after_last_checkpoint()
        except ReproError:
            tail = []
        report = repair_store(store, wal_records=tail)
        _write_catalog(catalog_path, store.checkpoint())
    finally:
        wal.close()
        device.close()
    if report.degraded:
        with open(sidecar_path, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
    elif os.path.exists(sidecar_path):
        os.remove(sidecar_path)
    record_directory_incident(
        path, "repair", {"report": report.to_dict()}, config=config
    )
    return report


def read_sidecar(path: str) -> Optional[dict]:
    """The degraded-repair sidecar of a directory store, if present."""
    sidecar_path = os.path.join(path, SIDECAR_FILE)
    if not os.path.exists(sidecar_path):
        return None
    with open(sidecar_path, "r", encoding="utf-8") as handle:
        return json.load(handle)
