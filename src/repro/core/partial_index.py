"""The lazy Partial Index (paper §5): a cache/index hybrid.

"The result of lookup operations ... is inserted in the partial index:
either the range of a token, the offset of a token inside its range, the
location (range, offset) of the end token of the node."  A repeated search
for the same logical position then skips the range scan entirely.

Characteristics, per the paper:

* **memory-based** — probing and populating it costs no block I/O (it is
  the counterpart of the disk-resident full index);
* **partial** [18] — only positions the workload actually touched are
  present, and a capacity bound evicts the least recently used entry;
* **lazy** — populated as a side effect of lookups, never ahead of them
  (the eager variant exists only as the Ablation C strawman);
* **invalidation by version** — every entry records the range version it
  observed; relocations bump the range version, so stale entries are
  detected on probe and dropped (cache semantics: correctness never
  depends on the partial index).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.ranges import RangeTable
from repro.obs.events import NOOP_EVENT_LOG
from repro.storage.heap import Position


@dataclass
class LocationEntry:
    """Memoized location of one node's begin (and optionally end) token.

    The end token may live in a *different* range than the begin token —
    the paper's Table 4 shows exactly that (node 60: begin in range 1, end
    in range 3) — so the end location carries its own range id and version
    stamp and is validated independently.
    """

    node_id: int
    range_id: int
    version: int
    begin_pos: Position
    begin_offset: int  # token offset inside the range
    end_range_id: Optional[int] = None
    end_version: Optional[int] = None
    end_pos: Optional[Position] = None
    end_offset: Optional[int] = None
    #: id of the last node-starting token at/before the end token within
    #: the end token's range (None if there is none); lets update
    #: operations reuse the memoized end without rescanning.
    end_last_id: Optional[int] = None

    @property
    def has_end(self) -> bool:
        return self.end_pos is not None

    def is_current(self, ranges: RangeTable) -> bool:
        if self.range_id not in ranges:
            return False
        return ranges.get(self.range_id).version == self.version

    def is_end_current(self, ranges: RangeTable) -> bool:
        if self.end_range_id is None or self.end_version is None:
            return False
        if self.end_range_id not in ranges:
            return False
        return ranges.get(self.end_range_id).version == self.end_version

    def drop_end(self) -> None:
        self.end_range_id = None
        self.end_version = None
        self.end_pos = None
        self.end_offset = None
        self.end_last_id = None


@dataclass
class PartialIndexStats:
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses + self.stale_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.stale_hits = 0
        self.inserts = self.evictions = 0

    def register_metrics(self, registry) -> None:
        """Project these counters into a metrics registry."""
        probes = registry.counter(
            "repro_partial_index_probes_total",
            "Partial-index probes by outcome.",
            labelnames=("result",),
        )
        probes.labels(result="hit").inc(self.hits)
        probes.labels(result="miss").inc(self.misses)
        probes.labels(result="stale").inc(self.stale_hits)
        registry.counter(
            "repro_partial_index_inserts_total", "Entries memoized."
        ).inc(self.inserts)
        registry.counter(
            "repro_partial_index_evictions_total", "Entries evicted (LRU)."
        ).inc(self.evictions)
        registry.gauge(
            "repro_partial_index_hit_rate", "Fraction of probes answered current."
        ).set(self.hit_rate)


class PartialIndex:
    """LRU-bounded memo of node locations, keyed by node id."""

    def __init__(self, capacity: Optional[int] = 4096) -> None:
        self.capacity = capacity
        self.stats = PartialIndexStats()
        self._entries: "OrderedDict[int, LocationEntry]" = OrderedDict()
        #: Structured event log (no-op unless the store attaches one).
        self.event_log = NOOP_EVENT_LOG

    def __len__(self) -> int:
        return len(self._entries)

    def probe(self, node_id: int, ranges: RangeTable) -> Optional[LocationEntry]:
        """A *current* entry for ``node_id``, or None.  Stale entries are
        dropped on probe; an entry whose begin is current but whose end
        went stale survives with the end information stripped."""
        entry = self._entries.get(node_id)
        if entry is None:
            self.stats.misses += 1
            if self.event_log.enabled:
                self.event_log.emit("partial_index", "probe",
                                    node_id=node_id, outcome="miss")
            return None
        if not entry.is_current(ranges):
            self.stats.stale_hits += 1
            del self._entries[node_id]
            if self.event_log.enabled:
                self.event_log.emit("partial_index", "probe",
                                    node_id=node_id, outcome="stale",
                                    range_id=entry.range_id)
            return None
        if entry.has_end and not entry.is_end_current(ranges):
            entry.drop_end()
        self.stats.hits += 1
        self._entries.move_to_end(node_id)
        if self.event_log.enabled:
            self.event_log.emit("partial_index", "probe",
                                node_id=node_id, outcome="hit",
                                range_id=entry.range_id)
        return entry

    def remember(self, entry: LocationEntry) -> None:
        """Memoize a lookup result (lazy population, §5)."""
        existing = self._entries.get(entry.node_id)
        if existing is not None and existing.version == entry.version:
            # keep any end-token knowledge the newer entry lacks
            if not entry.has_end and existing.has_end:
                entry.end_range_id = existing.end_range_id
                entry.end_version = existing.end_version
                entry.end_pos = existing.end_pos
                entry.end_offset = existing.end_offset
                entry.end_last_id = existing.end_last_id
        self._entries[entry.node_id] = entry
        self._entries.move_to_end(entry.node_id)
        self.stats.inserts += 1
        if self.event_log.enabled:
            self.event_log.emit("partial_index", "remember",
                                node_id=entry.node_id, range_id=entry.range_id,
                                has_end=entry.has_end)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                evicted_id, _ = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self.event_log.enabled:
                    self.event_log.emit("partial_index", "evict",
                                        node_id=evicted_id)

    def forget(self, node_id: int) -> None:
        self._entries.pop(node_id, None)

    def forget_range(self, range_id: int) -> None:
        """Drop every entry whose begin points into ``range_id`` (used
        when a range disappears entirely); entries whose *end* pointed
        there keep their begin and lose the end."""
        for node_id, entry in list(self._entries.items()):
            if entry.range_id == range_id:
                del self._entries[node_id]
            elif entry.end_range_id == range_id:
                entry.drop_end()

    def clear(self) -> None:
        self._entries.clear()

    def sweep_stale(self, ranges: RangeTable) -> int:
        """Eagerly drop stale entries; returns how many were removed.
        (Normally they age out on probe; the adaptive controller calls
        this when switching to update-optimized mode.)"""
        stale = [
            node_id
            for node_id, entry in self._entries.items()
            if not entry.is_current(ranges)
        ]
        for node_id in stale:
            del self._entries[node_id]
        return len(stale)
