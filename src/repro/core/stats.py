"""Store-level statistics: the observability surface of the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.locator import LocatorStats
from repro.core.partial_index import PartialIndexStats
from repro.storage.buffer import BufferStats
from repro.storage.disk import DiskStats


@dataclass
class OperationCounts:
    """How many of each Table-1 operation the store has executed."""

    loads: int = 0
    reads: int = 0
    node_reads: int = 0
    inserts: int = 0
    deletes: int = 0
    replaces: int = 0
    ranges_created: int = 0
    ranges_split: int = 0
    ranges_dropped: int = 0
    nodes_inserted: int = 0
    nodes_deleted: int = 0

    @property
    def updates(self) -> int:
        return self.inserts + self.deletes + self.replaces + self.loads

    @property
    def read_ops(self) -> int:
        return self.reads + self.node_reads

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class StoreStatistics:
    """Aggregated view over every layer's counters."""

    operations: OperationCounts
    locator: LocatorStats
    disk: DiskStats
    buffer: BufferStats
    partial: Optional[PartialIndexStats] = None

    def reset(self) -> None:
        self.operations.reset()
        self.locator.reset()
        self.disk.reset()
        self.buffer.reset()
        if self.partial is not None:
            self.partial.reset()

    def summary(self) -> str:
        """Human-readable multi-line dump (used by examples)."""
        lines = [
            f"operations: {self.operations.updates} updates, "
            f"{self.operations.read_ops} reads "
            f"({self.operations.ranges_created} ranges created, "
            f"{self.operations.ranges_split} split)",
            f"locator: {self.locator.partial_resolutions} via partial index, "
            f"{self.locator.full_resolutions} via full index, "
            f"{self.locator.scan_resolutions} via range scan "
            f"({self.locator.tokens_scanned} tokens scanned)",
            f"disk: {self.disk.reads} reads ({self.disk.sequential_reads} seq), "
            f"{self.disk.writes} writes, "
            f"{self.disk.simulated_seconds * 1000:.2f} ms simulated",
            f"buffer pool: {self.buffer.hit_rate:.1%} hit rate "
            f"({self.buffer.hits}/{self.buffer.accesses})",
        ]
        if self.partial is not None:
            lines.append(
                f"partial index: {self.partial.hit_rate:.1%} hit rate, "
                f"{self.partial.inserts} inserts, "
                f"{self.partial.evictions} evictions, "
                f"{self.partial.stale_hits} stale"
            )
        return "\n".join(lines)
