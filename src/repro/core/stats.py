"""Store-level statistics: the observability surface of the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.locator import LocatorStats
from repro.core.partial_index import PartialIndexStats
from repro.storage.buffer import BufferStats
from repro.storage.disk import DiskStats


@dataclass
class OperationCounts:
    """How many of each Table-1 operation the store has executed."""

    loads: int = 0
    reads: int = 0
    node_reads: int = 0
    inserts: int = 0
    deletes: int = 0
    replaces: int = 0
    ranges_created: int = 0
    ranges_split: int = 0
    ranges_dropped: int = 0
    nodes_inserted: int = 0
    nodes_deleted: int = 0

    @property
    def updates(self) -> int:
        return self.inserts + self.deletes + self.replaces + self.loads

    @property
    def read_ops(self) -> int:
        return self.reads + self.node_reads

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def register_metrics(self, registry) -> None:
        """Project these counters into a metrics registry."""
        operations = registry.counter(
            "repro_store_operations_total",
            "Table-1 operations executed, by kind.",
            labelnames=("op",),
        )
        for op, value in (
            ("load", self.loads),
            ("read", self.reads),
            ("node_read", self.node_reads),
            ("insert", self.inserts),
            ("delete", self.deletes),
            ("replace", self.replaces),
        ):
            operations.labels(op=op).inc(value)
        ranges = registry.counter(
            "repro_store_ranges_total",
            "Range-table lifecycle events.",
            labelnames=("event",),
        )
        ranges.labels(event="created").inc(self.ranges_created)
        ranges.labels(event="split").inc(self.ranges_split)
        ranges.labels(event="dropped").inc(self.ranges_dropped)
        nodes = registry.counter(
            "repro_store_nodes_total",
            "Logical nodes inserted and deleted.",
            labelnames=("event",),
        )
        nodes.labels(event="inserted").inc(self.nodes_inserted)
        nodes.labels(event="deleted").inc(self.nodes_deleted)


@dataclass
class StoreStatistics:
    """Aggregated view over every layer's counters."""

    operations: OperationCounts
    locator: LocatorStats
    disk: DiskStats
    buffer: BufferStats
    partial: Optional[PartialIndexStats] = None

    def reset(self) -> None:
        self.operations.reset()
        self.locator.reset()
        self.disk.reset()
        self.buffer.reset()
        if self.partial is not None:
            self.partial.reset()

    def register_metrics(self, registry) -> None:
        """Project every layer's counters into a metrics registry."""
        self.operations.register_metrics(registry)
        self.locator.register_metrics(registry)
        self.disk.register_metrics(registry)
        self.buffer.register_metrics(registry)
        if self.partial is not None:
            self.partial.register_metrics(registry)

    def summary(self) -> str:
        """Human-readable multi-line dump (used by examples).

        Delegates to the observability layer: the counters are projected
        into a registry and rendered back in the historical format, so
        this text stays byte-stable for scripts that parse it.
        """
        from repro.obs.bridge import stats_registry
        from repro.obs.exporters import render_classic_summary

        return render_classic_summary(stats_registry(self))
