"""Directory-backed stores: one call to open, one to close.

A store directory holds three files::

    store.db        the block device (data + index pages)
    store.wal       the write-ahead log
    store.catalog   the catalog as of the last checkpoint

:func:`open_directory` creates a fresh store or reopens an existing one
(catalog + WAL replay); :func:`close_directory` checkpoints and writes
the catalog.  :class:`StoreDirectory` wraps both as a context manager::

    with StoreDirectory("/var/data/orders") as store:
        store.insert_into_last(1, "<order/>")
    # closed cleanly: checkpointed, catalog written
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import StoreError
from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.log import get_logger
from repro.storage.disk import FileBlockDevice, InstrumentedDevice
from repro.storage.recovery import replay
from repro.storage.wal import WriteAheadLog

DEVICE_FILE = "store.db"
WAL_FILE = "store.wal"
CATALOG_FILE = "store.catalog"
HISTORY_FILE = "store.history.jsonl"
ALERTS_FILE = "store.alerts.jsonl"

_log = get_logger("core.filestore")


def open_directory(path: str, config: Optional[StoreConfig] = None) -> XMLStore:
    """Open (or create) the store housed in directory ``path``.

    Reopening replays any WAL records after the last checkpoint, so a
    crash between checkpoints loses nothing that reached the log.
    """
    config = config if config is not None else StoreConfig()
    if config.history_enabled and config.history_path is None:
        # persist the workload history next to the device file, so the
        # timeline survives close/reopen like the rest of the store
        from dataclasses import replace

        config = replace(config, history_path=os.path.join(path, HISTORY_FILE))
    if config.alerts_enabled and config.alerts_path is None:
        # alert transitions persist the same way: the active set and the
        # sequence number survive close/reopen
        from dataclasses import replace

        config = replace(config, alerts_path=os.path.join(path, ALERTS_FILE))
    if config.recorder_enabled and config.recorder_incidents_dir is None:
        # incident bundles dump next to the device file too — strictly
        # outside the store's pages and WAL
        from dataclasses import replace

        from repro.obs.incident import INCIDENTS_DIR

        config = replace(
            config,
            recorder_incidents_dir=os.path.join(path, INCIDENTS_DIR),
        )
    os.makedirs(path, exist_ok=True)
    device_path = os.path.join(path, DEVICE_FILE)
    catalog_path = os.path.join(path, CATALOG_FILE)
    wal_path = os.path.join(path, WAL_FILE)
    existing = os.path.exists(catalog_path)
    device = InstrumentedDevice(
        FileBlockDevice(device_path, block_size=config.page_size),
        cost_model=config.cost_model,
    )
    wal = WriteAheadLog(wal_path)
    if not existing:
        _log.info("creating fresh store in %s", path)
        store = XMLStore.open(config=config, device=device, wal=wal)
        with store.telemetry.span("store.open", path=path, fresh=True):
            # make the empty store immediately reopenable
            _write_catalog(catalog_path, store.checkpoint())
        _attach_replication(store, path)
        return store
    with open(catalog_path, "rb") as handle:
        catalog = handle.read()
    _log.info("reopening store in %s from catalog", path)
    store = XMLStore.from_catalog(device, catalog, config=config, wal=wal)
    with store.telemetry.span("store.open", path=path, fresh=False):
        replay(store, wal)
    _attach_replication(store, path)
    return store


def _attach_replication(store: XMLStore, path: str) -> None:
    """Hang the replication monitor off a primary that has replicas
    configured (same pattern as the serving layer's ``store.server``),
    so bridge/alerts/health see the lag gauges.  A store without a
    replica registry pays nothing — not even an attribute."""
    from repro.replication.service import REPLICAS_FILE, ReplicationMonitor

    if os.path.exists(os.path.join(path, REPLICAS_FILE)):
        store.replication = ReplicationMonitor(store, path)


def close_directory(path: str, store: XMLStore) -> None:
    """Checkpoint ``store`` and persist its catalog into ``path``."""
    _log.info("closing store in %s (checkpoint + catalog)", path)
    catalog = store.checkpoint()
    _write_catalog(os.path.join(path, CATALOG_FILE), catalog)
    store.wal.close()
    store.device.close()


def _write_catalog(catalog_path: str, catalog: bytes) -> None:
    temporary = catalog_path + ".tmp"
    with open(temporary, "wb") as handle:
        handle.write(catalog)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, catalog_path)  # atomic swap


class StoreDirectory:
    """Context manager over :func:`open_directory`/:func:`close_directory`."""

    def __init__(self, path: str, config: Optional[StoreConfig] = None) -> None:
        self.path = path
        self.config = config
        self.store: Optional[XMLStore] = None

    def __enter__(self) -> XMLStore:
        self.store = open_directory(self.path, self.config)
        return self.store

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.store is not None:
            if exc_type is None:
                close_directory(self.path, self.store)
            else:
                # crash path: leave the WAL; do not write a catalog that
                # might not match the flushed pages
                self.store.wal.close()
                self.store.device.close()
            self.store = None
