"""Node location: partial index → full index → range index → scan.

Implements the lookup discipline of §4–§5.  A node id is resolved by:

1. probing the (memory) **partial index** — free, may be stale;
2. probing the (disk) **full index** when the policy maintains one;
3. otherwise ``rangeIndexLocate``: a **range-index** floor lookup names the
   candidate range, and a scan from the range's start *regenerates node
   identifiers with the id factory* (§4.3 — ids are not stored with the
   tokens) until the target id is reached.

Every successful scan is memoized back into the partial index (lazy
population), which is precisely what makes the store adaptive: positions
the workload keeps touching become cheap, untouched ones cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import DocumentOrderError, NodeNotFoundError
from repro.core.full_index import FullIndex
from repro.core.layout import TokenLayout
from repro.core.partial_index import LocationEntry, PartialIndex
from repro.core.range_index import RangeIndex
from repro.core.ranges import RangeMeta, RangeTable
from repro.ids.base import StoreIdScheme
from repro.obs.events import NOOP_EVENT_LOG
from repro.obs.metrics import NOOP_METRIC, TOKEN_COUNT_BUCKETS
from repro.obs.telemetry import NOOP_TELEMETRY
from repro.storage.heap import Position
from repro.xmltoken.binary import decode_token
from repro.xmltoken.tokens import Token


@dataclass
class ScanItem:
    """One token encountered by a document-order scan."""

    order_index: int      # position of the range in document order
    meta: RangeMeta       # the range the token belongs to
    offset: int           # token offset inside the range
    pos: Position         # physical position
    token: Token
    #: Id of the most recent node-starting token within this range, *after*
    #: processing this token (None before the first node start).
    last_id: Optional[int]


@dataclass
class NodeLocation:
    """A located node: its begin token and (optionally) its end token."""

    node_id: int
    begin: ScanItem
    end: Optional[ScanItem] = None

    @property
    def token(self) -> Token:
        return self.begin.token


@dataclass
class LocatorStats:
    partial_resolutions: int = 0
    full_resolutions: int = 0
    scan_resolutions: int = 0
    tokens_scanned: int = 0

    def reset(self) -> None:
        self.partial_resolutions = 0
        self.full_resolutions = 0
        self.scan_resolutions = 0
        self.tokens_scanned = 0

    def register_metrics(self, registry) -> None:
        """Project these counters into a metrics registry."""
        resolutions = registry.counter(
            "repro_locator_resolutions_total",
            "Node resolutions by the path that answered them.",
            labelnames=("path",),
        )
        resolutions.labels(path="partial").inc(self.partial_resolutions)
        resolutions.labels(path="full").inc(self.full_resolutions)
        resolutions.labels(path="scan").inc(self.scan_resolutions)
        registry.counter(
            "repro_locator_tokens_scanned_total",
            "Tokens inspected by document-order scans.",
        ).inc(self.tokens_scanned)


class Locator:
    """Resolves node identifiers to physical locations."""

    def __init__(
        self,
        layout: TokenLayout,
        ranges: RangeTable,
        range_index: RangeIndex,
        id_scheme: StoreIdScheme[int],
        partial_index: Optional[PartialIndex] = None,
        full_index: Optional[FullIndex] = None,
    ) -> None:
        self.layout = layout
        self.ranges = ranges
        self.range_index = range_index
        self.id_scheme = id_scheme
        self.partial_index = partial_index
        self.full_index = full_index
        self.stats = LocatorStats()
        #: When False, successful scans are not memoized (the adaptive
        #: controller flips this in update-optimized mode).
        self.populate_partial = True
        #: Telemetry facade (no-op unless the store attaches a live one).
        self.telemetry = NOOP_TELEMETRY
        self._scan_tokens = NOOP_METRIC
        #: Structured event log (no-op unless the store attaches one).
        self.event_log = NOOP_EVENT_LOG

    def attach_telemetry(self, telemetry) -> None:
        """Record per-resolution scan lengths through ``telemetry``."""
        self.telemetry = telemetry
        self._scan_tokens = telemetry.histogram(
            "repro_locator_scan_tokens",
            "Tokens scanned per range-scan resolution.",
            buckets=TOKEN_COUNT_BUCKETS,
        )

    # -- scanning -----------------------------------------------------------------

    def scan(self, start_order_index: int = 0) -> Iterator[ScanItem]:
        """Scan tokens in document order from the given range onward,
        regenerating node identifiers per range."""
        total_ranges = len(self.ranges)
        if start_order_index >= total_ranges:
            return
        first_meta = None
        for order_index in range(start_order_index, total_ranges):
            meta = self.ranges.at_order(order_index)
            if meta.token_count:
                first_meta = meta
                first_index = order_index
                break
        if first_meta is None:
            return
        records = self.layout.iter_from(first_meta.start)
        order_index = first_index
        meta = first_meta
        offset = 0
        last_id: Optional[int] = None
        for pos, record in records:
            while offset >= meta.token_count:
                order_index += 1
                if order_index >= total_ranges:
                    raise DocumentOrderError(
                        "chain has records beyond the last range"
                    )
                meta = self.ranges.at_order(order_index)
                offset = 0
                last_id = None
            if offset == 0 and pos != meta.start:
                raise DocumentOrderError(
                    f"range {meta.range_id} starts at {tuple(meta.start)}, "
                    f"scan reached {tuple(pos)}"
                )
            token = decode_token(record)
            if token.starts_node:
                if last_id is None:
                    if meta.start_id is None:
                        raise DocumentOrderError(
                            f"range {meta.range_id} has node tokens but no interval"
                        )
                    last_id = meta.start_id
                else:
                    last_id = self.id_scheme.next_id(last_id, token)
            self.stats.tokens_scanned += 1
            yield ScanItem(order_index, meta, offset, pos, token, last_id)
            offset += 1

    def scan_range(self, meta: RangeMeta) -> Iterator[ScanItem]:
        """Scan exactly one range's tokens."""
        order_index = self.ranges.order_index(meta.range_id)
        for item in self.scan(order_index):
            if item.meta.range_id != meta.range_id:
                return
            yield item

    def continue_scan(self, item: ScanItem) -> Iterator[ScanItem]:
        """Scan items *after* ``item`` in document order.

        Re-derives the id cursor from the item, so it is exact within the
        item's range and resets at range boundaries like :meth:`scan`.
        """
        meta = item.meta
        offset = item.offset + 1
        last_id = item.last_id
        order_index = item.order_index
        total_ranges = len(self.ranges)
        records = self.layout.iter_from(item.pos)
        next(records)  # skip the item itself
        for pos, record in records:
            while offset >= meta.token_count:
                order_index += 1
                if order_index >= total_ranges:
                    raise DocumentOrderError("chain has records beyond the last range")
                meta = self.ranges.at_order(order_index)
                offset = 0
                last_id = None
            token = decode_token(record)
            if token.starts_node:
                if last_id is None:
                    if meta.start_id is None:
                        raise DocumentOrderError(
                            f"range {meta.range_id} has node tokens but no interval"
                        )
                    last_id = meta.start_id
                else:
                    last_id = self.id_scheme.next_id(last_id, token)
            self.stats.tokens_scanned += 1
            yield ScanItem(order_index, meta, offset, pos, token, last_id)
            offset += 1

    # -- resolution ------------------------------------------------------------------

    def locate(self, node_id: int) -> NodeLocation:
        """Resolve ``node_id`` to its begin token or raise
        :class:`NodeNotFoundError`."""
        entry = None
        if self.partial_index is not None:
            entry = self.partial_index.probe(node_id, self.ranges)
            if entry is not None:
                self.stats.partial_resolutions += 1
        if entry is None and self.full_index is not None:
            entry = self.full_index.lookup(node_id, self.ranges)
            if entry is not None:
                self.stats.full_resolutions += 1
        if entry is not None:
            return self._location_from_entry(entry)
        meta = self.range_index.locate(node_id, self.ranges)
        if meta is None:
            raise NodeNotFoundError(f"no node with id {node_id}")
        location = self._locate_by_scan(meta, node_id)
        self._memoize(location)
        return location

    def locate_span(self, node_id: int) -> NodeLocation:
        """Resolve ``node_id`` including its end token."""
        location = self.locate(node_id)
        if location.end is None:
            location.end = self.find_end(location.begin)
            self._memoize(location)
        return location

    def find_end(self, begin: ScanItem) -> ScanItem:
        """The item of the end token of the node starting at ``begin``."""
        token = begin.token
        if not token.starts_node:
            raise DocumentOrderError(f"{token!r} does not start a node")
        if not token.is_begin:
            return begin
        depth = 1
        for item in self.continue_scan(begin):
            if item.token.is_begin:
                depth += 1
            elif item.token.is_end:
                depth -= 1
                if depth == 0:
                    return item
        raise DocumentOrderError(f"node at {tuple(begin.pos)} is never closed")

    # -- internals --------------------------------------------------------------------

    def _locate_by_scan(self, meta: RangeMeta, node_id: int) -> NodeLocation:
        self.stats.scan_resolutions += 1
        scanned_before = self.stats.tokens_scanned
        # the span gives token replay its own frame in cost profiles
        # (both clocks); a NoopTelemetry span costs one attribute check
        try:
            with self.telemetry.span(
                "locator.scan", node_id=node_id, range_id=meta.range_id
            ):
                for item in self.scan_range(meta):
                    if item.token.starts_node and item.last_id == node_id:
                        return NodeLocation(node_id=node_id, begin=item)
        finally:
            scanned = self.stats.tokens_scanned - scanned_before
            self._scan_tokens.observe(scanned)
            if self.event_log.enabled:
                self.event_log.emit(
                    "locator",
                    "scan",
                    node_id=node_id,
                    range_id=meta.range_id,
                    start_id=meta.start_id,
                    end_id=meta.end_id,
                    tokens=scanned,
                )
        raise NodeNotFoundError(
            f"node {node_id} was deleted from range {meta.range_id}"
        )

    def _location_from_entry(self, entry: LocationEntry) -> NodeLocation:
        meta = self.ranges.get(entry.range_id)
        order_index = self.ranges.order_index(entry.range_id)
        begin_token = decode_token(self.layout.record_at(entry.begin_pos))
        begin = ScanItem(
            order_index=order_index,
            meta=meta,
            offset=entry.begin_offset,
            pos=entry.begin_pos,
            token=begin_token,
            last_id=entry.node_id,
        )
        location = NodeLocation(node_id=entry.node_id, begin=begin)
        if entry.has_end and entry.end_range_id is not None:
            assert entry.end_pos is not None and entry.end_offset is not None
            end_meta = self.ranges.get(entry.end_range_id)
            end_token = decode_token(self.layout.record_at(entry.end_pos))
            location.end = ScanItem(
                order_index=self.ranges.order_index(entry.end_range_id),
                meta=end_meta,
                offset=entry.end_offset,
                pos=entry.end_pos,
                token=end_token,
                last_id=entry.end_last_id,
            )
        return location

    def _memoize(self, location: NodeLocation) -> None:
        if self.partial_index is None or not self.populate_partial:
            if self.full_index is not None:
                self._repair_full(location)
            return
        begin = location.begin
        entry = LocationEntry(
            node_id=location.node_id,
            range_id=begin.meta.range_id,
            version=begin.meta.version,
            begin_pos=begin.pos,
            begin_offset=begin.offset,
        )
        if location.end is not None:
            # The end token may sit in a later range (paper Table 4); it is
            # stamped with that range's own version and validated
            # independently on probe.
            end = location.end
            entry.end_range_id = end.meta.range_id
            entry.end_version = end.meta.version
            entry.end_pos = end.pos
            entry.end_offset = end.offset
            entry.end_last_id = end.last_id
        self.partial_index.remember(entry)
        if self.full_index is not None:
            self._repair_full(location)

    def _repair_full(self, location: NodeLocation) -> None:
        assert self.full_index is not None
        begin = location.begin
        self.full_index.put(
            location.node_id,
            begin.meta.range_id,
            begin.meta.version,
            begin.pos,
            begin.offset,
        )
