"""Physical token placement: the storage model of §3.3/§4.4.

Tokens live as one record each in a :class:`~repro.storage.heap.ChainedFile`;
document order is the chain order.  :class:`TokenLayout` is the single
place that mutates the chain on behalf of the store, because every
physical move must be mirrored in range bookkeeping:

* when a block is **split**, ranges *starting* in the moved tail get a new
  start position, and every range resident in the block gets its version
  bumped (cached locations are now stale);
* when records are **deleted**, later slots in the same block shift left,
  so surviving range starts in that block are shifted and residents are
  bumped;
* **insertions** are engineered to never move existing records: the insert
  point is first turned into a block boundary (via a split), after which
  new records only ever fill tail free space or brand-new blocks.

The layout returns the positions of inserted records so the caller can
register residency and (eagerly) index them.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.storage.buffer import BufferPool
from repro.storage.heap import ChainedFile, Position
from repro.core.ranges import RangeTable


class InsertResult:
    """Outcome of a physical insertion."""

    __slots__ = ("positions", "following")

    def __init__(self, positions: List[Position], following: Optional[Position]) -> None:
        #: Positions of the inserted records, in document order.
        self.positions = positions
        #: New position of the record that the insertion displaced (the one
        #: previously *at* the insert point); None when appending at the end.
        self.following = following

    @property
    def first(self) -> Position:
        return self.positions[0]


class TokenLayout:
    """Mediates all physical chain mutations, keeping ranges consistent."""

    def __init__(
        self,
        pool: BufferPool,
        ranges: RangeTable,
        chain: Optional[ChainedFile] = None,
    ) -> None:
        self.pool = pool
        self.ranges = ranges
        self.chain = chain if chain is not None else ChainedFile(pool)

    # -- reading ------------------------------------------------------------------

    def iter_from(
        self, start: Optional[Position] = None
    ) -> Iterator[Tuple[Position, bytes]]:
        """Iterate (position, record) in document order from ``start``."""
        return self.chain.records(start=start)

    def record_at(self, pos: Position) -> bytes:
        return self.chain.read_record(pos)

    @property
    def is_empty(self) -> bool:
        return self.chain.head is None

    # -- insertion -----------------------------------------------------------------

    def insert_before(
        self, pos: Optional[Position], records: Sequence[bytes]
    ) -> InsertResult:
        """Insert ``records`` immediately before the record at ``pos``.

        ``pos=None`` appends at the end of the document.  Existing records
        never move except for the single block split needed when ``pos``
        is in the middle of a block; the split's relocations are accounted
        against the range table before this method returns.
        """
        if not records:
            raise StoreError("insert_before called with no records")
        if self.chain.head is None:
            first_block = self.chain.append_block()
            positions = self._fill_from(first_block, records)
            return InsertResult(positions, None)
        if pos is None:
            tail = self.chain.tail
            assert tail is not None
            positions = self._fill_from(tail, records)
            return InsertResult(positions, None)
        block_no, slot = pos
        if slot == 0:
            return self._insert_at_block_front(block_no, records)
        following = self._make_boundary(block_no, slot)
        positions = self._fill_from(block_no, records)
        return InsertResult(positions, following)

    def _insert_at_block_front(
        self, block_no: int, records: Sequence[bytes]
    ) -> InsertResult:
        """Insert before slot 0 of a block: fill the predecessor's tail (or
        fresh blocks spliced before); the displaced record never moves."""
        prev = self.chain.prev_block(block_no)
        if prev is None:
            prev = self.chain.insert_block_before(block_no)
        positions = self._fill_from(prev, records)
        return InsertResult(positions, Position(block_no, 0))

    def _make_boundary(self, block_no: int, slot: int) -> Position:
        """Split ``block_no`` at ``slot`` so the insert point becomes the
        end of the block; returns the new position of the displaced record
        and performs all relocation accounting."""
        new_block = self.chain.split_block(block_no, slot)
        self.ranges.copy_residents(block_no, new_block)
        # every resident's cached positions may now be wrong
        self.ranges.bump_block(block_no)
        # ranges that *started* in the moved tail get their start fixed
        for range_id in self.ranges.residents(block_no):
            meta = self.ranges.get(range_id)
            if meta.start.block_no == block_no and meta.start.slot >= slot:
                meta.start = Position(new_block, meta.start.slot - slot)
                self.ranges.add_resident(new_block, range_id)
        return Position(new_block, 0)

    def _fill_from(self, anchor_block: int, records: Sequence[bytes]) -> List[Position]:
        """Append records into ``anchor_block``'s tail free space, then
        into fresh blocks chained right after it, in order."""
        positions: List[Position] = []
        current = anchor_block
        for record in records:
            with self.chain.fetch(current) as guard:
                if guard.page.fits(record):
                    slot = guard.page.append(record)
                    guard.mark_dirty()
                    positions.append(Position(current, slot))
                    continue
            current = self.chain.insert_block_after(current)
            with self.chain.fetch(current) as guard:
                # raises RecordTooLargeError for records that can never fit
                slot = guard.page.append(record)
                guard.mark_dirty()
            positions.append(Position(current, slot))
        return positions

    # -- deletion -------------------------------------------------------------------

    def delete_run(self, start: Position, count: int) -> Optional[Position]:
        """Delete ``count`` consecutive records starting at ``start``.

        Returns the (new) position of the first surviving record after the
        run, or None if the run reached the end of the document.  Shifts
        surviving range starts and bumps resident versions; range starts
        *inside* the deleted run are the caller's responsibility (it knows
        which ranges the run covered).
        """
        if count <= 0:
            raise StoreError(f"delete_run of {count} records")
        remaining = count
        block_no: Optional[int] = start.block_no
        slot = start.slot
        after: Optional[Position] = None
        while remaining > 0:
            if block_no is None:
                raise StoreError("delete_run ran past the end of the chain")
            with self.chain.fetch(block_no) as guard:
                available = len(guard.page) - slot
            if available < 0:
                raise StoreError(f"delete_run start slot {slot} out of range")
            take = min(remaining, available)
            for _ in range(take):
                self.chain.delete_record(Position(block_no, slot))
            remaining -= take
            next_block = self.chain.next_block(block_no)
            self.ranges.bump_block(block_no)
            # shift surviving starts in this block left by `take`
            for range_id in list(self.ranges.residents(block_no)):
                meta = self.ranges.get(range_id)
                if meta.start.block_no == block_no and meta.start.slot >= slot + take:
                    meta.start = Position(block_no, meta.start.slot - take)
            with self.chain.fetch(block_no) as guard:
                now_empty = len(guard.page) == 0
            if now_empty:
                self.chain.remove_block(block_no)
                self.ranges.forget_block(block_no)
            elif remaining == 0:
                with self.chain.fetch(block_no) as guard:
                    if slot < len(guard.page):
                        after = Position(block_no, slot)
                        break
            if remaining == 0 and after is None:
                after = Position(next_block, 0) if next_block is not None else None
                break
            block_no = next_block
            slot = 0
        return after

    # -- integrity ---------------------------------------------------------------------

    def total_records(self) -> int:
        return sum(1 for _ in self.chain.records())

    def check_integrity(self) -> None:
        """The ranges must tile the chain exactly, in document order."""
        self.chain.check_integrity()
        expected = self.total_records()
        total = 0
        cursor = iter(self.chain.records())
        for meta in self.ranges.in_order():
            if meta.token_count == 0:
                continue
            try:
                first_pos, _ = next(cursor)
            except StopIteration:
                raise StoreError(f"chain ended before {meta!r}") from None
            if first_pos != meta.start:
                raise StoreError(
                    f"{meta!r} starts at {tuple(meta.start)} but chain cursor "
                    f"is at {tuple(first_pos)}"
                )
            for _ in range(meta.token_count - 1):
                try:
                    next(cursor)
                except StopIteration:
                    raise StoreError(f"chain ended inside {meta!r}") from None
            total += meta.token_count
        if total != expected:
            raise StoreError(
                f"ranges cover {total} records, chain holds {expected}"
            )
        self.ranges.check_integrity()
