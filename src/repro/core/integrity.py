"""Structured integrity checking: every invariant, individually reported.

:meth:`XMLStore.check_integrity` historically raised on the first broken
invariant and said nothing on success — fine for tests, useless for an
operator asking *which* invariant failed and whether the others still
hold.  This module runs each invariant as its own named check and
assembles an :class:`IntegrityReport` (the ``repro verify`` subcommand's
payload, JSON-able and renderable):

* ``layout`` — ranges tile the token chain exactly, in document order;
* ``range-index`` — the index holds exactly one entry per non-empty
  range, and lookups agree with the range table;
* ``id-density`` — replaying each range's tokens regenerates exactly its
  dense id interval ``[start_id, end_id]`` (the soundness condition of
  the paper's id-regeneration trick, §4.3);
* ``partial-memo`` — every *current* partial-index entry agrees with a
  from-scratch probe: the memoized (range, offset) really holds the
  node's begin token at the memoized position.  Stale entries (version
  mismatch) are legal — invalidation-by-version drops them on probe —
  but a *current* entry pointing at the wrong token would silently
  corrupt reads, which is exactly what the crash-consistency harness
  hunts for;
* ``block-checksum`` — an out-of-band scrub pass: every owned block's
  raw device image verifies against its checksum frame (vacuous on a
  legacy no-checksum store, and dirty/pending-free blocks are skipped —
  see :mod:`repro.storage.scrub`);
* ``quarantine`` — the buffer pool holds no quarantined (known-bad)
  blocks; after a repair this must be empty again.

Every check runs even when an earlier one fails, so one corrupted
structure does not mask the state of the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ReproError, StoreError


@dataclass
class IntegrityCheck:
    """Outcome of one invariant check."""

    name: str
    description: str
    ok: bool
    #: what broke, verbatim (None when the check passed)
    error: str = None  # type: ignore[assignment]
    #: check-specific counts (ranges inspected, entries verified, ...)
    detail: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "ok": self.ok,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class IntegrityReport:
    """All invariant checks for one store, in a fixed order."""

    checks: List[IntegrityCheck]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failed(self) -> List[IntegrityCheck]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
        }

    def render(self) -> str:
        """Human-readable per-check report (the CLI's ``verify`` output)."""
        lines = []
        for check in self.checks:
            status = "ok" if check.ok else "FAILED"
            detail = " ".join(f"{k}={v}" for k, v in check.detail.items())
            line = f"{check.name:<12} {status:<6} {check.description}"
            if detail:
                line += f" ({detail})"
            lines.append(line)
            if check.error is not None:
                lines.append(f"{'':<12} {check.error}")
        verdict = (
            "integrity ok"
            if self.ok
            else "integrity FAILED: "
            + ", ".join(check.name for check in self.failed())
        )
        lines.append(verdict)
        return "\n".join(lines)


def _check_id_density(store) -> Dict[str, int]:
    """Scanning each range must regenerate exactly its id interval."""
    ranges = 0
    for meta in store.ranges.in_order():
        ranges += 1
        ids = [
            item.last_id
            for item in store.locator.scan_range(meta)
            if item.token.starts_node
        ]
        if not meta.has_interval:
            if ids:
                raise StoreError(f"{meta!r} has node tokens but no interval")
            continue
        expected = list(range(meta.start_id, meta.end_id + 1))
        if ids != expected:
            raise StoreError(
                f"{meta!r} regenerates ids {ids[:5]}..."
                f"{ids[-5:] if len(ids) > 5 else ''}, "
                f"expected [{meta.start_id}..{meta.end_id}]"
            )
    return {"ranges": ranges}


def _check_partial_memo(store) -> Dict[str, int]:
    """Every current memo entry must match a from-scratch range probe."""
    if store.partial_index is None:
        return {"entries": 0}
    checked = 0
    stale = 0
    for node_id, entry in list(store.partial_index._entries.items()):
        if entry.node_id != node_id:
            raise StoreError(
                f"memo keyed {node_id} holds entry for node {entry.node_id}"
            )
        if not entry.is_current(store.ranges):
            stale += 1  # legal: dropped on next probe
            continue
        meta = store.ranges.get(entry.range_id)
        if entry.begin_offset >= meta.token_count:
            raise StoreError(
                f"memo for node {node_id} points at offset "
                f"{entry.begin_offset} past {meta!r}"
            )
        for item in store.locator.scan_range(meta):
            if item.offset < entry.begin_offset:
                continue
            if not item.token.starts_node:
                raise StoreError(
                    f"memo for node {node_id} points at a non-node token "
                    f"(offset {entry.begin_offset} of {meta!r})"
                )
            if item.last_id != node_id:
                raise StoreError(
                    f"memo for node {node_id} resolves to node "
                    f"{item.last_id} (offset {entry.begin_offset} of {meta!r})"
                )
            if item.pos != entry.begin_pos:
                raise StoreError(
                    f"memo for node {node_id} records position "
                    f"{entry.begin_pos} but the token lives at {item.pos}"
                )
            break
        checked += 1
    return {"entries": checked, "stale": stale}


def integrity_report(store) -> IntegrityReport:
    """Run every invariant check against ``store``; never raises for a
    *failed invariant* (that lands in the report), only for errors
    outside the checks' contract."""
    def check_layout() -> Dict[str, int]:
        store.layout.check_integrity()
        return {"ranges": len(store.ranges)}

    def check_range_index() -> Dict[str, int]:
        store.range_index.check_integrity(store.ranges)
        return {}

    def check_checksums() -> Dict[str, int]:
        from repro.storage.scrub import scrub_store

        report = scrub_store(store)
        if report.issues:
            raise StoreError(
                f"{len(report.issues)} block(s) failed out-of-band checksum "
                f"verification: {report.bad_blocks()}"
            )
        detail = {
            "checked": report.blocks_checked,
            "skipped": report.blocks_skipped,
        }
        if report.legacy:
            detail["legacy"] = 1
        return detail

    def check_quarantine() -> Dict[str, int]:
        blocks = store.pool.quarantined_blocks()
        if blocks:
            raise StoreError(f"{len(blocks)} quarantined block(s): {blocks}")
        return {"blocks": 0}

    specs = (
        (
            "layout",
            "ranges tile the token chain in document order",
            check_layout,
        ),
        (
            "range-index",
            "one index entry per non-empty range, intervals agree",
            check_range_index,
        ),
        (
            "id-density",
            "replaying each range regenerates exactly [start_id..end_id]",
            lambda: _check_id_density(store),
        ),
        (
            "partial-memo",
            "current memo entries agree with a from-scratch probe",
            lambda: _check_partial_memo(store),
        ),
        (
            "block-checksum",
            "every owned block's device image verifies out-of-band",
            check_checksums,
        ),
        (
            "quarantine",
            "the buffer pool holds no known-bad blocks",
            check_quarantine,
        ),
    )
    checks: List[IntegrityCheck] = []
    for name, description, run in specs:
        try:
            detail = run()
        except ReproError as error:
            checks.append(
                IntegrityCheck(name, description, ok=False, error=str(error))
            )
        else:
            checks.append(
                IntegrityCheck(name, description, ok=True, detail=detail or {})
            )
    return IntegrityReport(checks=list(checks))
