"""Structural navigation over stable node ids (paper §9's extension:
"hierarchical or sibling relationships can also be maintained by the
Partial Index").

Parent links are memoized in an id-keyed hint table.  Unlike positional
memos, **parent hints never go stale**: a node's parent cannot change
(the Table-1 operations move no node between parents), and deleting
either endpoint makes the hint unreachable because the node lookup fails
first.  Sibling relationships, by contrast, *do* change under insertion
— so ``next_sibling_of`` is computed from the live token sequence each
time (one subtree skip), and only parent links are cached.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NodeNotFoundError
from repro.xmltoken.tokens import TokenKind

_ATTRIBUTE_KINDS = frozenset(
    {
        TokenKind.BEGIN_ATTRIBUTE,
        TokenKind.ATTRIBUTE_VALUE,
        TokenKind.END_ATTRIBUTE,
        TokenKind.NAMESPACE,
    }
)


class StructuralHints:
    """Lazily populated, never-stale parent links."""

    def __init__(self) -> None:
        self._parents: Dict[int, Optional[int]] = {}
        self.hits = 0
        self.misses = 0

    def parent(self, node_id: int) -> Optional[int]:
        if node_id in self._parents:
            self.hits += 1
            return self._parents[node_id]
        return None

    def knows(self, node_id: int) -> bool:
        return node_id in self._parents

    def remember(self, node_id: int, parent_id: Optional[int]) -> None:
        self._parents[node_id] = parent_id

    def forget(self, node_id: int) -> None:
        self._parents.pop(node_id, None)

    def __len__(self) -> int:
        return len(self._parents)


def parent_of(store, node_id: int) -> Optional[int]:
    """The parent node's id, or None for a top-level node.

    First call scans from the document start (populating hints for the
    whole ancestor chain along the way); repeats are O(1).
    """
    store.locator.locate(node_id)  # raises for unknown/deleted ids
    hints: StructuralHints = store.structural_hints
    if hints.knows(node_id):
        return hints.parent(node_id)
    hints.misses += 1
    # scan with an open-element stack of (node id) entries
    stack: List[int] = []
    for item in store.locator.scan():
        token = item.token
        if token.kind in _ATTRIBUTE_KINDS:
            # attribute and namespace nodes are children of the element
            # whose start tag they appear in (the top of the stack)
            if token.starts_node and item.last_id == node_id:
                parent = stack[-1] if stack else None
                hints.remember(node_id, parent)
                return parent
            continue
        if token.starts_node:
            assert item.last_id is not None
            parent = stack[-1] if stack else None
            if not hints.knows(item.last_id):
                hints.remember(item.last_id, parent)
            if item.last_id == node_id:
                return parent
        if token.kind == TokenKind.BEGIN_ELEMENT:
            assert item.last_id is not None
            stack.append(item.last_id)
        elif token.kind == TokenKind.END_ELEMENT:
            stack.pop()
    raise NodeNotFoundError(f"node {node_id} vanished during the scan (bug)")


def ancestors_of(store, node_id: int) -> List[int]:
    """Ancestor ids, nearest first (exploits the parent-hint chain)."""
    chain: List[int] = []
    current: Optional[int] = node_id
    while True:
        current = parent_of(store, current)
        if current is None:
            return chain
        chain.append(current)


def next_sibling_of(store, node_id: int) -> Optional[int]:
    """Id of the following sibling, or None.  Computed live (sibling
    relationships are not stable under insertion, so they are never
    cached — see module docstring)."""
    location = store.locator.locate_span(node_id)
    assert location.end is not None
    nxt = next(store.locator.continue_scan(location.end), None)
    if nxt is None:
        return None
    if nxt.token.starts_node:
        return nxt.last_id
    return None  # an END token: the parent closes here


def children_of(store, node_id: int) -> List[int]:
    """Ids of the node's children (attributes excluded, as on the XPath
    child axis), in document order."""
    location = store.locator.locate(node_id)
    if not location.begin.token.is_begin:
        return []  # atomic nodes have no children
    children: List[int] = []
    depth = 1
    hints: StructuralHints = store.structural_hints
    for item in store.locator.continue_scan(location.begin):
        token = item.token
        if token.kind in _ATTRIBUTE_KINDS:
            continue
        if token.is_begin:
            if depth == 1:
                assert item.last_id is not None
                children.append(item.last_id)
                hints.remember(item.last_id, node_id)
            depth += 1
        elif token.is_end:
            depth -= 1
            if depth == 0:
                return children
        elif token.starts_node and depth == 1:
            assert item.last_id is not None
            children.append(item.last_id)
            hints.remember(item.last_id, node_id)
    return children


def attributes_of(store, node_id: int) -> List[int]:
    """Ids of the node's attribute nodes, in document order."""
    location = store.locator.locate(node_id)
    if location.begin.token.kind != TokenKind.BEGIN_ELEMENT:
        return []
    attributes: List[int] = []
    for item in store.locator.continue_scan(location.begin):
        kind = item.token.kind
        if kind == TokenKind.BEGIN_ATTRIBUTE:
            assert item.last_id is not None
            attributes.append(item.last_id)
            store.structural_hints.remember(item.last_id, node_id)
        elif kind in (TokenKind.ATTRIBUTE_VALUE, TokenKind.END_ATTRIBUTE,
                      TokenKind.NAMESPACE):
            continue
        else:
            return attributes
    return attributes
