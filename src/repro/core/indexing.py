"""The adaptive controller (paper §2.1, §9).

"In this work we take a middle approach, and try to optimize one or the
other depending on the application load. ... The store achieves this by
lazily creating its storage and index structures and optimizes for reads
or updates according to how the application focuses on one or the other.
The process is transparent to the application."

The controller watches a sliding window of recent operations.  When the
window is read-heavy it keeps the partial index populating (read-optimized
mode); when it turns update-heavy it stops populating and sheds stale
entries, so updates pay nothing for location caching they will invalidate
anyway (update-optimized mode).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.core.locator import Locator
from repro.core.partial_index import PartialIndex
from repro.core.ranges import RangeTable


@dataclass
class AdaptiveDecision:
    """A mode switch taken by the controller (kept for observability)."""

    at_operation: int
    read_fraction: float
    read_optimized: bool


class AdaptiveController:
    """Flips the store between read- and update-optimized modes."""

    def __init__(
        self,
        locator: Locator,
        partial_index: Optional[PartialIndex],
        ranges: RangeTable,
        window: int = 256,
        read_threshold: float = 0.5,
    ) -> None:
        self.locator = locator
        self.partial_index = partial_index
        self.ranges = ranges
        self.window = window
        self.read_threshold = read_threshold
        self._recent: Deque[bool] = deque(maxlen=window)  # True = read
        self._reads_in_window = 0
        self._operations = 0
        self.read_optimized = True
        self.decisions: list = []

    @property
    def read_fraction(self) -> float:
        if not self._recent:
            return 1.0
        return self._reads_in_window / len(self._recent)

    def observe(self, is_read: bool) -> None:
        """Record one operation and re-evaluate the mode."""
        self._operations += 1
        if len(self._recent) == self._recent.maxlen and self._recent[0]:
            self._reads_in_window -= 1
        self._recent.append(is_read)
        if is_read:
            self._reads_in_window += 1
        # hysteresis: only consider switching once the window has substance
        if len(self._recent) < max(8, self.window // 8):
            return
        fraction = self.read_fraction
        if self.read_optimized and fraction < 1.0 - self.read_threshold:
            self._switch(read_optimized=False, fraction=fraction)
        elif not self.read_optimized and fraction >= self.read_threshold:
            self._switch(read_optimized=True, fraction=fraction)

    def _switch(self, read_optimized: bool, fraction: float) -> None:
        self.read_optimized = read_optimized
        self.locator.populate_partial = read_optimized
        if not read_optimized and self.partial_index is not None:
            self.partial_index.sweep_stale(self.ranges)
        self.decisions.append(
            AdaptiveDecision(
                at_operation=self._operations,
                read_fraction=fraction,
                read_optimized=read_optimized,
            )
        )
