"""Ranges: the store's analogue of relational records (paper §4.2).

A Range is a sequence of tokens whose size and existence is defined by the
application's usage pattern: every insert operation creates one (or, with
the granularity knob, a few) new range(s), and inserting *into* existing
data splits the enclosing range in two.  Ranges partition the global token
sequence: the concatenation of all ranges in document order is exactly the
chain's record sequence.

:class:`RangeMeta` holds a range's identity, its id interval
``[start_id, end_id]`` (the Range Index key material — ids inside a range
are contiguous and document-ordered because they were allocated densely at
the range's insert), its physical start :class:`~repro.storage.heap.Position`,
its token count and a *version* that is bumped whenever any of its tokens
may have moved — the invalidation handle for partial/full index entries.

:class:`RangeTable` owns all range metadata plus the document-order list
and the per-block residency sets used for relocation accounting.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.storage.heap import Position

_META = struct.Struct("<qqqqqqqq")  # id, start_id(-1), end_id(-1), block, slot, count, version, reserved
_HEADER = struct.Struct("<qI")  # next_range_id, count


@dataclass
class RangeMeta:
    """Metadata for one range."""

    range_id: int
    start: Position
    token_count: int
    #: First/last node identifier allocated inside the range; ``None`` for
    #: ranges that contain no node-starting tokens (e.g. a tail of end
    #: tokens produced by a split).
    start_id: Optional[int] = None
    end_id: Optional[int] = None
    #: Bumped whenever the range's tokens may have been relocated; cached
    #: locations carry the version they observed.
    version: int = 0

    @property
    def has_interval(self) -> bool:
        return self.start_id is not None

    def covers(self, node_id: int) -> bool:
        """Whether ``node_id`` falls in this range's id interval."""
        return (
            self.start_id is not None
            and self.end_id is not None
            and self.start_id <= node_id <= self.end_id
        )

    def bump(self) -> None:
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = f"[{self.start_id},{self.end_id}]" if self.has_interval else "[]"
        return (
            f"Range(#{self.range_id} ids={ids} tokens={self.token_count} "
            f"at={tuple(self.start)} v{self.version})"
        )


class RangeTable:
    """All ranges, their document order, and block-residency accounting."""

    def __init__(self) -> None:
        self._by_id: Dict[int, RangeMeta] = {}
        self._order: List[int] = []
        #: block_no -> range ids that *may* have tokens in the block
        #: (a conservative superset; used only to bump versions).
        self._residents: Dict[int, Set[int]] = {}
        self._next_range_id = 1

    # -- basic access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, range_id: int) -> bool:
        return range_id in self._by_id

    def get(self, range_id: int) -> RangeMeta:
        try:
            return self._by_id[range_id]
        except KeyError:
            raise StoreError(f"range {range_id} does not exist") from None

    def in_order(self) -> Iterator[RangeMeta]:
        """Ranges in document order."""
        return (self._by_id[range_id] for range_id in self._order)

    def order_index(self, range_id: int) -> int:
        try:
            return self._order.index(range_id)
        except ValueError:
            raise StoreError(f"range {range_id} is not in the order list") from None

    def at_order(self, index: int) -> RangeMeta:
        return self._by_id[self._order[index]]

    def successor(self, range_id: int) -> Optional[RangeMeta]:
        index = self.order_index(range_id)
        if index + 1 < len(self._order):
            return self._by_id[self._order[index + 1]]
        return None

    def predecessor(self, range_id: int) -> Optional[RangeMeta]:
        index = self.order_index(range_id)
        if index > 0:
            return self._by_id[self._order[index - 1]]
        return None

    @property
    def first(self) -> Optional[RangeMeta]:
        return self._by_id[self._order[0]] if self._order else None

    @property
    def last(self) -> Optional[RangeMeta]:
        return self._by_id[self._order[-1]] if self._order else None

    @property
    def total_tokens(self) -> int:
        return sum(meta.token_count for meta in self._by_id.values())

    # -- mutation ---------------------------------------------------------------

    def new_range(
        self,
        start: Position,
        token_count: int,
        start_id: Optional[int],
        end_id: Optional[int],
        after: Optional[int] = None,
        before: Optional[int] = None,
    ) -> RangeMeta:
        """Create a range and place it in document order.

        ``after``/``before`` name an existing range id; omitting both
        appends at the end of the document.
        """
        meta = RangeMeta(
            range_id=self._next_range_id,
            start=start,
            token_count=token_count,
            start_id=start_id,
            end_id=end_id,
        )
        self._next_range_id += 1
        self._by_id[meta.range_id] = meta
        if after is not None:
            self._order.insert(self.order_index(after) + 1, meta.range_id)
        elif before is not None:
            self._order.insert(self.order_index(before), meta.range_id)
        else:
            self._order.append(meta.range_id)
        return meta

    def drop(self, range_id: int) -> None:
        meta = self.get(range_id)
        self._order.remove(range_id)
        del self._by_id[range_id]
        for residents in self._residents.values():
            residents.discard(range_id)

    # -- residency / relocation accounting ------------------------------------------

    def add_resident(self, block_no: int, range_id: int) -> None:
        self._residents.setdefault(block_no, set()).add(range_id)

    def residents(self, block_no: int) -> Set[int]:
        return self._residents.get(block_no, set())

    def copy_residents(self, source_block: int, target_block: int) -> None:
        """After a block split, the new block may hold tokens of any range
        resident in the source (conservative superset)."""
        if source_block in self._residents:
            self._residents.setdefault(target_block, set()).update(
                self._residents[source_block]
            )

    def blocks_of(self, range_id: int) -> List[int]:
        """Blocks in which ``range_id`` may have tokens (superset)."""
        return [
            block_no
            for block_no, residents in self._residents.items()
            if range_id in residents
        ]

    def forget_block(self, block_no: int) -> None:
        self._residents.pop(block_no, None)

    def bump_block(self, block_no: int) -> None:
        """Invalidate cached locations for every range resident in the
        block (called on any relocation within it)."""
        for range_id in self._residents.get(block_no, ()):
            meta = self._by_id.get(range_id)
            if meta is not None:
                meta.bump()

    # -- integrity ----------------------------------------------------------------

    def check_integrity(self) -> None:
        """Intervals must be disjoint and the order list consistent."""
        if set(self._order) != set(self._by_id):
            raise StoreError("order list and range map disagree")
        intervals = sorted(
            (meta.start_id, meta.end_id)
            for meta in self._by_id.values()
            if meta.has_interval
        )
        for (_, left_end), (right_start, _) in zip(intervals, intervals[1:]):
            if right_start <= left_end:
                raise StoreError(
                    f"overlapping id intervals: ...{left_end}] and [{right_start}..."
                )
        for meta in self._by_id.values():
            if meta.token_count < 0:
                raise StoreError(f"negative token count in {meta!r}")
            if meta.has_interval and meta.end_id < meta.start_id:
                raise StoreError(f"inverted interval in {meta!r}")

    # -- catalog ---------------------------------------------------------------------

    def to_catalog(self) -> bytes:
        parts = [_HEADER.pack(self._next_range_id, len(self._order))]
        for range_id in self._order:
            meta = self._by_id[range_id]
            parts.append(
                _META.pack(
                    meta.range_id,
                    -1 if meta.start_id is None else meta.start_id,
                    -1 if meta.end_id is None else meta.end_id,
                    meta.start.block_no,
                    meta.start.slot,
                    meta.token_count,
                    meta.version,
                    0,
                )
            )
        return b"".join(parts)

    @classmethod
    def from_catalog(cls, data: bytes) -> "RangeTable":
        table = cls()
        table._next_range_id, count = _HEADER.unpack_from(data, 0)
        offset = _HEADER.size
        for _ in range(count):
            (
                range_id,
                start_id,
                end_id,
                block_no,
                slot,
                token_count,
                version,
                _reserved,
            ) = _META.unpack_from(data, offset)
            offset += _META.size
            meta = RangeMeta(
                range_id=range_id,
                start=Position(block_no, slot),
                token_count=token_count,
                start_id=None if start_id == -1 else start_id,
                end_id=None if end_id == -1 else end_id,
                version=version,
            )
            table._by_id[range_id] = meta
            table._order.append(range_id)
        return table
