"""The paper's primary contribution: the adaptive, lazily indexed store."""

from repro.core.compaction import CompactionReport, compact
from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.filestore import StoreDirectory, close_directory, open_directory
from repro.core.full_index import FullIndex
from repro.core.indexing import AdaptiveController
from repro.core.locator import Locator, NodeLocation, ScanItem
from repro.core.navigation import StructuralHints
from repro.core.partial_index import LocationEntry, PartialIndex
from repro.core.range_index import RangeIndex
from repro.core.ranges import RangeMeta, RangeTable
from repro.core.stats import OperationCounts, StoreStatistics
from repro.core.store import XMLStore

__all__ = [
    "AdaptiveController",
    "CompactionReport",
    "FullIndex",
    "IndexingPolicy",
    "LocationEntry",
    "Locator",
    "NodeLocation",
    "OperationCounts",
    "PartialIndex",
    "RangeIndex",
    "RangeMeta",
    "RangeTable",
    "ScanItem",
    "StoreConfig",
    "StoreDirectory",
    "StoreStatistics",
    "StructuralHints",
    "XMLStore",
    "close_directory",
    "compact",
    "open_directory",
]
