"""Store configuration: the adaptivity knobs the paper argues for.

The paper's thesis is that one fixed indexing strategy cannot fit every
XML usage pattern (§2.1), so the store must expose *which* structures it
maintains — and how eagerly — as configuration, with an adaptive mode that
tunes itself to the observed workload.  :class:`IndexingPolicy` names the
four strategies compared in Table 5 plus the adaptive controller, and
:class:`StoreConfig` carries every knob the benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.storage.disk import DiskCostModel


class IndexingPolicy(Enum):
    """Which location structures the store maintains.

    ``FULL``
        Every node id is indexed eagerly in a disk-based B+-tree (the
        paper's strawman, Table 5 row 1): fastest random reads, slowest
        inserts, highest storage overhead.
    ``RANGE``
        Only the coarse Range Index (Table 5 rows 2–3): one entry per
        insert unit.  Cheap updates; random reads pay a range scan.
    ``RANGE_PLUS_PARTIAL``
        Range Index plus the lazy, memory-based Partial Index (Table 5
        row 4): lookup results are memoized so repeated access to the same
        logical positions skips the scan — "the advantages of the full
        index, but only when needed" (§5).
    ``ADAPTIVE``
        Starts as RANGE_PLUS_PARTIAL and switches partial-index population
        on/off based on the observed read/update mix (§2.1, §9).
    """

    FULL = "full"
    RANGE = "range"
    RANGE_PLUS_PARTIAL = "range+partial"
    ADAPTIVE = "adaptive"


@dataclass
class StoreConfig:
    """Every tuning knob of the store, with paper-faithful defaults."""

    #: Block/page size in bytes for data, range-index and full-index pages.
    page_size: int = 4096

    #: Buffer-pool frames shared by data blocks and index blocks.
    buffer_pool_capacity: int = 64

    #: Which index structures to maintain (see :class:`IndexingPolicy`).
    policy: IndexingPolicy = IndexingPolicy.RANGE_PLUS_PARTIAL

    #: Maximum entries held by the (memory-based) partial index; the
    #: least-recently-used entry is evicted beyond this.  ``None`` = unbounded.
    partial_index_capacity: Optional[int] = 4096

    #: Populate partial-index entries for *every* node at insert time
    #: instead of lazily on first lookup.  This is the "eager segment
    #: indexing" strawman of Ablation C (Catania et al. comparison, §8);
    #: the paper's store keeps it False.
    eager_partial_index: bool = False

    #: Split bulk inserts into ranges of at most this many tokens.  ``None``
    #: keeps the paper's rule — one insert operation, one range.  The
    #: granularity sweep (Ablation A) sets it explicitly.
    max_range_tokens: Optional[int] = None

    #: Maximum keys per B+-tree node (range and full indexes).
    btree_order: int = 64

    #: Frame every block image with a self-verifying checksum header
    #: (CRC32 over payload + block number; see
    #: :class:`repro.storage.pages.PageCodec`).  Catches bit rot and
    #: misdirected writes on fetch at the cost of 8 payload bytes per
    #: block.  The on-page format of a persisted store is recorded in its
    #: catalog; this flag only chooses the format for *new* stores, and a
    #: legacy (pre-checksum) catalog always opens via the raw read path.
    checksums_enabled: bool = True

    #: Cost model charged for every simulated block access.
    cost_model: DiskCostModel = field(default_factory=DiskCostModel)

    #: Simulated seconds charged per token *emitted* (decoded and
    #: serialized on the read path).  Models the per-record processing
    #: cost of the paper's Java/JDBC-over-MySQL prototype; disk transfer
    #: alone would make record processing unrealistically close to free.
    cpu_cost_per_token: float = 20e-6

    #: Simulated seconds charged per token *skipped over* by a locate scan.
    #: Id regeneration only inspects the token header (does it start a
    #: node?), not the payload, so scanning is cheaper per token than
    #: emission — but it is exactly the cost the Range Index pays and the
    #: Partial Index exists to avoid (§5).
    cpu_cost_per_scan_token: float = 5e-6

    #: Simulated seconds charged per B+-tree entry decoded during index
    #: probes and maintenance — the index-side counterpart of the token
    #: costs, so index-heavy strategies pay their CPU too.
    cpu_cost_per_index_entry: float = 10e-6

    #: ADAPTIVE policy: number of recent operations considered.
    adaptive_window: int = 256

    #: ADAPTIVE policy: fraction of reads in the window above which the
    #: partial index is populated (read-optimized); below ``1 - this`` the
    #: store stops populating and sheds entries (update-optimized).
    adaptive_read_threshold: float = 0.5

    #: Validate inserted token streams against the data model rules.
    #: Costs CPU only; disable for large synthetic bulk loads.
    validate_input: bool = True

    #: Record tracing spans and span metrics (see :mod:`repro.obs`).
    #: Off by default: the benchmarks must measure the store, not the
    #: telemetry, so the disabled path is a shared no-op recorder.
    telemetry_enabled: bool = False

    #: Completed spans retained in the in-memory ring buffer.
    telemetry_ring_capacity: int = 1024

    #: Record structured events (see :mod:`repro.obs.events`): the per-
    #: operation fact stream EXPLAIN reports are assembled from.  Off by
    #: default for the same reason as telemetry.
    events_enabled: bool = False

    #: Events retained in the in-memory event ring buffer.
    events_capacity: int = 4096

    #: Record per-block access counts in the buffer pool (see
    #: :mod:`repro.obs.heatmap`).  Off by default.
    heatmap_enabled: bool = False

    #: Build deterministic cost profiles (see :mod:`repro.obs.profiler`).
    #: Implies live telemetry spans (the profiler folds them into its
    #: call tree).  Off by default under the same contract as the rest of
    #: :mod:`repro.obs`: the simulated numbers are byte-identical with
    #: profiling on or off (``tests/bench/test_profiler_zero_cost.py``).
    profiling_enabled: bool = False

    #: Wall-clock stack-sampler interval in seconds (``repro profile
    #: --sample`` and the bench ``--profile`` flag).  The sampler is
    #: statistical and never touches the simulated clock.
    sampler_interval: float = 0.005

    #: Record workload-history snapshots (see :mod:`repro.obs.history`):
    #: the longitudinal telemetry the drift detector and tuning advisor
    #: read.  Off by default under the same zero-cost contract as the
    #: rest of :mod:`repro.obs`.
    history_enabled: bool = False

    #: Capture one history snapshot every this many Table-1 operations.
    history_interval: int = 64

    #: History snapshots retained before the oldest rows merge (see
    #: :class:`repro.obs.history.WorkloadHistory`).
    history_capacity: int = 256

    #: JSONL file the history persists to (``None`` = in-memory only;
    #: :func:`repro.core.filestore.open_directory` points it next to the
    #: store's device file).
    history_path: Optional[str] = None

    #: Evaluate deterministic alert rules (see :mod:`repro.obs.alerts`)
    #: and track SLO budgets (:mod:`repro.obs.slo`).  Off by default
    #: under the same zero-cost contract as the rest of
    #: :mod:`repro.obs`: evaluation only reads counters, and the
    #: disabled twin keeps the hot path at one attribute check.
    alerts_enabled: bool = False

    #: Evaluate the alert rules every this many Table-1 operations
    #: (plus once at every checkpoint).
    alerts_interval: int = 64

    #: JSONL file alert transitions append to (``None`` = in-memory
    #: only; :func:`repro.core.filestore.open_directory` points it next
    #: to the store's device file).
    alerts_path: Optional[str] = None

    #: Keep a black-box flight recorder (see :mod:`repro.obs.recorder`):
    #: a bounded ring of recent events, alert transitions and metric
    #: counter-delta frames that incident bundles dump on failure.  Off
    #: by default under the zero-cost contract (the disabled twin keeps
    #: the hot path at one attribute check).
    recorder_enabled: bool = False

    #: Ring capacity: recorder entries retained before the oldest drop.
    recorder_capacity: int = 512

    #: Capture a metric counter-delta frame every this many Table-1
    #: operations.
    recorder_interval: int = 32

    #: Directory incident bundles dump into (``None`` = in-memory
    #: incident records only; :func:`repro.core.filestore.open_directory`
    #: points it at ``store.incidents`` next to the device file).
    recorder_incidents_dir: Optional[str] = None

    #: Incidents recorded per store instance before further triggers
    #: are suppressed (a rotting device must not dump bundles forever).
    recorder_incident_limit: int = 16

    #: Serving layer (:mod:`repro.server`): logical sessions allowed to
    #: run concurrently under the cooperative scheduler.
    server_max_sessions: int = 8

    #: Sessions allowed to wait in the admission backlog once every slot
    #: is taken; beyond this, submissions are shed deterministically with
    #: :class:`repro.errors.SessionLimitError` (counted in
    #: ``repro_server_sessions_shed_total``).
    server_max_queue_depth: int = 16

    #: Group-commit WAL batching: committing transactions defer their
    #: frame's sync and share one barrier per batch.  False reverts to
    #: the per-commit discipline (every commit pays its own barrier) —
    #: the baseline the group-commit bench compares against.
    server_group_commit: bool = True

    #: Commits absorbed into one batch before the group flushes eagerly
    #: (it also flushes whenever no session is runnable).
    server_group_commit_max_batch: int = 8

    #: Read-only sessions pin lock-free snapshot views instead of taking
    #: S locks (see :mod:`repro.server.snapshot`).  False makes them
    #: ordinary transactions that queue behind writers.
    server_snapshot_reads: bool = True

    #: Replication (:mod:`repro.replication`): tail this store's WAL as
    #: a logical change stream and keep read replicas caught up.  Off by
    #: default under the zero-cost contract — a store that never
    #: replicates pays nothing and stays byte-identical
    #: (``tests/bench/test_replication_bench.py``).
    replication_enabled: bool = False

    #: Change records fetched per channel round trip during catch-up.
    replication_batch_size: int = 64

    #: Verify the primary-vs-replica state digest every this many applied
    #: change records (and always once at the end of catch-up).
    replication_digest_interval: int = 256

    #: A configured replica whose checkpoint trails the primary's stream
    #: by more than this many operations with no apply progress is
    #: *stale* — the absence alert ``replication-stale`` and the health
    #: component flag it.
    replication_stale_after_ops: int = 128

    #: Channel fetch attempts per batch before catch-up gives up with a
    #: typed :class:`repro.errors.ReplicationChannelError`.
    replication_max_attempts: int = 8

    #: Deterministic exponential backoff between channel retries,
    #: accumulated on the *simulated* clock: ``base * 2**(attempt-1)``
    #: capped at ``max`` (seconds).  Never a wall-clock sleep.
    replication_backoff_base: float = 0.01

    #: Upper bound on a single backoff interval (seconds).
    replication_backoff_max: float = 1.0

    def __post_init__(self) -> None:
        if self.page_size < 256:
            raise ValueError("page_size must be at least 256 bytes")
        if self.buffer_pool_capacity < 4:
            raise ValueError("buffer_pool_capacity must be at least 4")
        if self.partial_index_capacity is not None and self.partial_index_capacity < 1:
            raise ValueError("partial_index_capacity must be positive or None")
        if self.max_range_tokens is not None and self.max_range_tokens < 4:
            raise ValueError("max_range_tokens must be at least 4 or None")
        if not 0.0 <= self.adaptive_read_threshold <= 1.0:
            raise ValueError("adaptive_read_threshold must be in [0, 1]")
        if self.telemetry_ring_capacity < 1:
            raise ValueError("telemetry_ring_capacity must be at least 1")
        if self.events_capacity < 1:
            raise ValueError("events_capacity must be at least 1")
        if self.sampler_interval <= 0:
            raise ValueError("sampler_interval must be positive")
        if self.history_interval < 1:
            raise ValueError("history_interval must be at least 1")
        if self.history_capacity < 2:
            raise ValueError("history_capacity must be at least 2")
        if self.alerts_interval < 1:
            raise ValueError("alerts_interval must be at least 1")
        if self.recorder_capacity < 1:
            raise ValueError("recorder_capacity must be at least 1")
        if self.recorder_interval < 1:
            raise ValueError("recorder_interval must be at least 1")
        if self.recorder_incident_limit < 1:
            raise ValueError("recorder_incident_limit must be at least 1")
        if self.server_max_sessions < 1:
            raise ValueError("server_max_sessions must be at least 1")
        if self.server_max_queue_depth < 0:
            raise ValueError("server_max_queue_depth must be >= 0")
        if self.server_group_commit_max_batch < 1:
            raise ValueError("server_group_commit_max_batch must be at least 1")
        if self.replication_batch_size < 1:
            raise ValueError("replication_batch_size must be at least 1")
        if self.replication_digest_interval < 1:
            raise ValueError("replication_digest_interval must be at least 1")
        if self.replication_stale_after_ops < 1:
            raise ValueError("replication_stale_after_ops must be at least 1")
        if self.replication_max_attempts < 1:
            raise ValueError("replication_max_attempts must be at least 1")
        if self.replication_backoff_base < 0:
            raise ValueError("replication_backoff_base must be >= 0")
        if self.replication_backoff_max < self.replication_backoff_base:
            raise ValueError(
                "replication_backoff_max must be >= replication_backoff_base"
            )
