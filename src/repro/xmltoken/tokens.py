"""The token model: materialized, enriched SAX events (paper §3.2).

A *token* is the most granular unit of the store's XML representation —
more granular than an element, because an element is a *sequence* of
tokens.  The model follows the BEA/XQRL representation the paper builds on
[7]: it is richer than plain SAX in that attributes are separated from
their element and given their own begin/end tokens, and every token can
carry a PSVI type annotation.

Figure 1 of the paper maps::

    <ticket>            BEGIN_ELEMENT  [ID: 1] [ticket]
      <hour>            BEGIN_ELEMENT  [ID: 2] [hour]
        15              TEXT           [ID: 3] [15]
      </hour>           END_ELEMENT
      <name>            BEGIN_ELEMENT  [ID: 4] [name]
        Paul            TEXT           [ID: 5] [Paul]
      </name>           END_ELEMENT
    </ticket>           END_ELEMENT

Node identifiers are *not* part of the token value: the store regenerates
them from a range's start identifier with the scheme's id factory (paper
§4.3/§6), which is why tokens expose :meth:`Token.starts_node` — the id
factory advances exactly on node-starting tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Iterable, Iterator, List, Sequence


class TokenKind(IntEnum):
    """Every part of the XQuery Data Model, as a flat event vocabulary."""

    BEGIN_DOCUMENT = 0
    END_DOCUMENT = 1
    BEGIN_ELEMENT = 2
    END_ELEMENT = 3
    BEGIN_ATTRIBUTE = 4
    END_ATTRIBUTE = 5
    TEXT = 6
    ATTRIBUTE_VALUE = 7  # text inside an attribute; part of the attribute node
    COMMENT = 8
    PROCESSING_INSTRUCTION = 9
    NAMESPACE = 10


#: Kinds that open a nested scope and must be closed by the matching end kind.
BEGIN_KINDS = frozenset(
    {TokenKind.BEGIN_DOCUMENT, TokenKind.BEGIN_ELEMENT, TokenKind.BEGIN_ATTRIBUTE}
)

#: Kinds that close a nested scope.
END_KINDS = frozenset(
    {TokenKind.END_DOCUMENT, TokenKind.END_ELEMENT, TokenKind.END_ATTRIBUTE}
)

#: begin kind -> matching end kind
MATCHING_END = {
    TokenKind.BEGIN_DOCUMENT: TokenKind.END_DOCUMENT,
    TokenKind.BEGIN_ELEMENT: TokenKind.END_ELEMENT,
    TokenKind.BEGIN_ATTRIBUTE: TokenKind.END_ATTRIBUTE,
}

#: Kinds whose token is the first token of an XQuery Data Model node and
#: therefore consumes a node identifier.
NODE_STARTING_KINDS = frozenset(
    {
        TokenKind.BEGIN_DOCUMENT,
        TokenKind.BEGIN_ELEMENT,
        TokenKind.BEGIN_ATTRIBUTE,
        TokenKind.TEXT,
        TokenKind.COMMENT,
        TokenKind.PROCESSING_INSTRUCTION,
        TokenKind.NAMESPACE,
    }
)


@dataclass(frozen=True)
class Token:
    """One enriched SAX event.

    ``name``
        QName for elements/attributes, target for processing instructions,
        prefix for namespace tokens; empty otherwise.
    ``value``
        Character data for TEXT/ATTRIBUTE_VALUE/COMMENT tokens, data for
        processing instructions, URI for namespace tokens; empty otherwise.
    ``type_annotation``
        PSVI simple-type annotation (e.g. ``"xs:decimal"``), attached by
        :mod:`repro.xmltoken.psvi` after schema validation; empty when the
        document is untyped.
    """

    kind: TokenKind
    name: str = ""
    value: str = ""
    type_annotation: str = ""

    @property
    def starts_node(self) -> bool:
        """Whether this token is the first token of a node (and hence is
        assigned a node identifier by the id factory)."""
        return self.kind in NODE_STARTING_KINDS

    @property
    def is_begin(self) -> bool:
        return self.kind in BEGIN_KINDS

    @property
    def is_end(self) -> bool:
        return self.kind in END_KINDS

    def with_type(self, type_annotation: str) -> "Token":
        """A copy of this token carrying a PSVI type annotation."""
        return replace(self, type_annotation=type_annotation)

    def __repr__(self) -> str:
        parts = [self.kind.name]
        if self.name:
            parts.append(self.name)
        if self.value:
            value = self.value if len(self.value) <= 24 else self.value[:21] + "..."
            parts.append(repr(value))
        if self.type_annotation:
            parts.append(f"::{self.type_annotation}")
        return f"<{' '.join(parts)}>"


# -- convenience constructors (used heavily by tests and workloads) ----------

def begin_document() -> Token:
    return Token(TokenKind.BEGIN_DOCUMENT)


def end_document() -> Token:
    return Token(TokenKind.END_DOCUMENT)


def begin_element(name: str) -> Token:
    return Token(TokenKind.BEGIN_ELEMENT, name=name)


def end_element() -> Token:
    return Token(TokenKind.END_ELEMENT)


def begin_attribute(name: str) -> Token:
    return Token(TokenKind.BEGIN_ATTRIBUTE, name=name)


def end_attribute() -> Token:
    return Token(TokenKind.END_ATTRIBUTE)


def attribute_value(value: str) -> Token:
    return Token(TokenKind.ATTRIBUTE_VALUE, value=value)


def text(value: str) -> Token:
    return Token(TokenKind.TEXT, value=value)


def comment(value: str) -> Token:
    return Token(TokenKind.COMMENT, value=value)


def processing_instruction(target: str, data: str = "") -> Token:
    return Token(TokenKind.PROCESSING_INSTRUCTION, name=target, value=data)


def namespace(prefix: str, uri: str) -> Token:
    return Token(TokenKind.NAMESPACE, name=prefix, value=uri)


def element(name: str, *children: object, attributes: Sequence = ()) -> List[Token]:
    """Build the token sequence for an element literal.

    ``children`` may be strings (text) or already-built token lists;
    ``attributes`` is a sequence of (name, value) pairs.  Handy for tests::

        element("hour", "15") == [begin_element("hour"), text("15"),
                                  end_element()]
    """
    tokens: List[Token] = [begin_element(name)]
    for attr_name, attr_value in attributes:
        tokens.append(begin_attribute(attr_name))
        tokens.append(attribute_value(attr_value))
        tokens.append(end_attribute())
    for child in children:
        if isinstance(child, str):
            tokens.append(text(child))
        else:
            tokens.extend(child)  # type: ignore[arg-type]
    tokens.append(end_element())
    return tokens


def count_nodes(tokens: Iterable[Token]) -> int:
    """Number of XQuery Data Model nodes in a token sequence (= number of
    identifiers the id factory will allocate for it)."""
    return sum(1 for token in tokens if token.starts_node)
