"""XQuery Data Model helpers over token sequences.

The store's invariants live here: a stored token sequence must be a
*well-nested forest* — begin/end tokens match, attributes appear only at
the start of their element, attribute values only inside attributes.
:func:`validate_stream` enforces this and is used by tests, by the store's
ingest path, and by the property-based test-suite.

Also provides structural utilities used throughout the core: finding the
end of the node that starts at a given token, slicing subtrees, and
counting node identifiers consumed by a sequence.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import TokenStreamError
from repro.xmltoken.tokens import (
    MATCHING_END,
    Token,
    TokenKind,
)


def validate_stream(tokens: Sequence[Token], allow_document: bool = True) -> None:
    """Raise :class:`TokenStreamError` unless ``tokens`` is a well-nested
    forest of complete nodes.

    Rules enforced:

    * begin tokens are closed by their matching end kind, properly nested;
    * ATTRIBUTE_VALUE appears only between BEGIN_ATTRIBUTE/END_ATTRIBUTE;
    * attributes and namespaces appear only in the *attribute position* of
      an element (before any content);
    * nothing nests inside an attribute except its value;
    * document tokens (if present) are outermost only.
    """
    stack: List[TokenKind] = []
    # Whether the innermost element is still in its attribute position.
    attr_position: List[bool] = []
    for index, token in enumerate(tokens):
        kind = token.kind
        if stack and stack[-1] == TokenKind.BEGIN_ATTRIBUTE:
            if kind == TokenKind.ATTRIBUTE_VALUE:
                continue
            if kind == TokenKind.END_ATTRIBUTE:
                stack.pop()
                continue
            raise TokenStreamError(
                f"token {token!r} at {index} is not allowed inside an attribute"
            )
        if kind == TokenKind.BEGIN_DOCUMENT:
            if not allow_document:
                raise TokenStreamError("document tokens are not allowed here")
            if stack:
                raise TokenStreamError("BEGIN_DOCUMENT must be outermost")
            stack.append(kind)
        elif kind == TokenKind.BEGIN_ELEMENT:
            if not token.name:
                raise TokenStreamError(f"element at {index} has no name")
            stack.append(kind)
            attr_position.append(True)
        elif kind == TokenKind.BEGIN_ATTRIBUTE:
            if not token.name:
                raise TokenStreamError(f"attribute at {index} has no name")
            if not attr_position or not attr_position[-1] or stack[-1] != TokenKind.BEGIN_ELEMENT:
                raise TokenStreamError(
                    f"attribute at {index} outside an element's attribute position"
                )
            stack.append(kind)
        elif kind == TokenKind.NAMESPACE:
            if not attr_position or not attr_position[-1] or stack[-1] != TokenKind.BEGIN_ELEMENT:
                raise TokenStreamError(
                    f"namespace at {index} outside an element's attribute position"
                )
        elif kind in MATCHING_END.values():
            if not stack:
                raise TokenStreamError(f"unmatched end token {token!r} at {index}")
            begin = stack.pop()
            if MATCHING_END[begin] != kind:
                raise TokenStreamError(
                    f"end token {token!r} at {index} does not match {begin.name}"
                )
            if begin == TokenKind.BEGIN_ELEMENT:
                attr_position.pop()
        elif kind == TokenKind.ATTRIBUTE_VALUE:
            raise TokenStreamError(
                f"ATTRIBUTE_VALUE at {index} outside an attribute"
            )
        else:  # TEXT, COMMENT, PROCESSING_INSTRUCTION
            if attr_position:
                attr_position[-1] = False
    if stack:
        raise TokenStreamError(f"{len(stack)} unclosed begin token(s) at end of stream")


def node_end_offset(tokens: Sequence[Token], start: int) -> int:
    """Index one past the last token of the node starting at ``start``.

    For atomic nodes (text, comment, PI, namespace) that is ``start + 1``;
    for nested nodes it is the index after the matching end token.
    """
    token = tokens[start]
    if not token.starts_node:
        raise TokenStreamError(f"token at {start} does not start a node: {token!r}")
    if not token.is_begin:
        return start + 1
    depth = 0
    for index in range(start, len(tokens)):
        current = tokens[index]
        if current.is_begin:
            depth += 1
        elif current.is_end:
            depth -= 1
            if depth == 0:
                return index + 1
    raise TokenStreamError(f"node starting at {start} is never closed")


def subtree(tokens: Sequence[Token], start: int) -> List[Token]:
    """The complete token sequence of the node starting at ``start``."""
    return list(tokens[start : node_end_offset(tokens, start)])


def top_level_nodes(tokens: Sequence[Token]) -> List[Tuple[int, int]]:
    """(start, end) slices of each top-level node of a forest."""
    slices: List[Tuple[int, int]] = []
    index = 0
    while index < len(tokens):
        end = node_end_offset(tokens, index)
        slices.append((index, end))
        index = end
    return slices


def depth_profile(tokens: Iterable[Token]) -> List[int]:
    """Nesting depth before each token (document/element/attribute levels);
    useful in tests and for the structural partial-index extension."""
    depths: List[int] = []
    depth = 0
    for token in tokens:
        if token.is_end:
            depth -= 1
        depths.append(depth)
        if token.is_begin:
            depth += 1
    return depths


def strip_document_tokens(tokens: Sequence[Token]) -> List[Token]:
    """Remove an outermost document-token bracket, if present."""
    if (
        len(tokens) >= 2
        and tokens[0].kind == TokenKind.BEGIN_DOCUMENT
        and tokens[-1].kind == TokenKind.END_DOCUMENT
    ):
        return list(tokens[1:-1])
    return list(tokens)
