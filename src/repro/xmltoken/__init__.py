"""Token model, pull parser, serializer, binary codec and PSVI support."""

from repro.xmltoken.binary import (
    decode_stream,
    decode_token,
    decode_tokens,
    encode_stream,
    encode_token,
    encode_tokens,
)
from repro.xmltoken.datamodel import (
    node_end_offset,
    strip_document_tokens,
    subtree,
    top_level_nodes,
    validate_stream,
)
from repro.xmltoken.parser import (
    PullParser,
    iter_tokens,
    tokenize_document,
    tokenize_fragment,
)
from repro.xmltoken.psvi import (
    BUILTIN_TYPES,
    Schema,
    SchemaValidationError,
    SimpleType,
    annotate,
    typed_value,
)
from repro.xmltoken.serializer import serialize
from repro.xmltoken.tokens import Token, TokenKind, count_nodes, element

__all__ = [
    "BUILTIN_TYPES",
    "PullParser",
    "Schema",
    "SchemaValidationError",
    "SimpleType",
    "Token",
    "TokenKind",
    "annotate",
    "count_nodes",
    "decode_stream",
    "decode_token",
    "decode_tokens",
    "element",
    "encode_stream",
    "encode_token",
    "encode_tokens",
    "iter_tokens",
    "node_end_offset",
    "serialize",
    "strip_document_tokens",
    "subtree",
    "tokenize_document",
    "tokenize_fragment",
    "top_level_nodes",
    "typed_value",
    "validate_stream",
]
