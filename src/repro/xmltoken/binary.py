"""Binary token codec: the on-page record format.

Each token serializes to one compact record.  Layout::

    u8 header | [varint len + utf8]*   (name, value, type — present per flags)

The header packs the token kind in the low 5 bits and three presence flags
(name / value / type annotation) in the high bits, so the common tokens
(end tags, short text) cost very few bytes — "low storage overhead" is one
of the paper's desiderata (§2, requirement 6).  Node identifiers are *not*
part of the record (paper §4.3): they are regenerated from the range's
start id.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.errors import CodecError
from repro.xmltoken.tokens import Token, TokenKind

_KIND_MASK = 0x1F
_FLAG_NAME = 0x20
_FLAG_VALUE = 0x40
_FLAG_TYPE = 0x80


def encode_varint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise CodecError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def _encode_string(value: str) -> bytes:
    raw = value.encode("utf-8")
    return encode_varint(len(raw)) + raw


def _decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise CodecError("truncated string payload")
    return data[offset:end].decode("utf-8"), end


def encode_token(token: Token) -> bytes:
    """Serialize one token to its record bytes."""
    header = int(token.kind)
    parts = [b""]  # placeholder for header
    if token.name:
        header |= _FLAG_NAME
        parts.append(_encode_string(token.name))
    if token.value:
        header |= _FLAG_VALUE
        parts.append(_encode_string(token.value))
    if token.type_annotation:
        header |= _FLAG_TYPE
        parts.append(_encode_string(token.type_annotation))
    parts[0] = bytes([header])
    return b"".join(parts)


def decode_token(data: bytes) -> Token:
    """Deserialize one token record."""
    token, offset = decode_token_at(data, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after token")
    return token


def decode_token_at(data: bytes, offset: int) -> Tuple[Token, int]:
    """Decode a token at ``offset``; returns (token, next_offset)."""
    if offset >= len(data):
        raise CodecError("empty token record")
    header = data[offset]
    offset += 1
    kind_value = header & _KIND_MASK
    try:
        kind = TokenKind(kind_value)
    except ValueError:
        raise CodecError(f"unknown token kind {kind_value}") from None
    name = value = type_annotation = ""
    if header & _FLAG_NAME:
        name, offset = _decode_string(data, offset)
    if header & _FLAG_VALUE:
        value, offset = _decode_string(data, offset)
    if header & _FLAG_TYPE:
        type_annotation, offset = _decode_string(data, offset)
    return Token(kind, name=name, value=value, type_annotation=type_annotation), offset


def encode_tokens(tokens: Iterable[Token]) -> List[bytes]:
    """Encode each token to its own record (the store's storage unit)."""
    return [encode_token(token) for token in tokens]


def decode_tokens(records: Iterable[bytes]) -> List[Token]:
    return [decode_token(record) for record in records]


def encode_stream(tokens: Iterable[Token]) -> bytes:
    """Encode a whole token sequence into one contiguous blob (used by the
    WAL and by tests; pages store one record per token instead)."""
    return b"".join(encode_token(token) for token in tokens)


def decode_stream(data: bytes) -> Iterator[Token]:
    offset = 0
    while offset < len(data):
        token, offset = decode_token_at(data, offset)
        yield token
