"""Token sequences back to XML text (the read path of the store)."""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import TokenStreamError
from repro.xmltoken.tokens import Token, TokenKind


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def serialize(tokens: Iterable[Token], indent: str = "") -> str:
    """Serialize a token sequence to XML text.

    With the default ``indent=""`` the output is canonical-compact (no
    added whitespace) and round-trips through the parser token-for-token.
    A non-empty ``indent`` pretty-prints element structure; this changes
    whitespace-only text and is meant for human consumption.
    """
    writer = _Writer(indent)
    for token in tokens:
        writer.feed(token)
    return writer.finish()


class _Writer:
    def __init__(self, indent: str) -> None:
        self._indent = indent
        self._parts: List[str] = []
        self._depth = 0
        # element stack entries: [name, has_children, tag_still_open]
        self._stack: List[List] = []
        self._attribute: List[str] = []  # pending attribute [name, value]

    # -- event handling ------------------------------------------------------

    def feed(self, token: Token) -> None:
        kind = token.kind
        if kind == TokenKind.BEGIN_DOCUMENT or kind == TokenKind.END_DOCUMENT:
            return
        if kind == TokenKind.BEGIN_ELEMENT:
            self._close_open_tag(newline=True)
            self._write_line_start()
            self._parts.append(f"<{token.name}")
            self._stack.append([token.name, False, True])
            self._depth += 1
        elif kind == TokenKind.END_ELEMENT:
            if not self._stack:
                raise TokenStreamError("END_ELEMENT with no open element")
            name, has_children, tag_open = self._stack.pop()
            self._depth -= 1
            if tag_open:
                self._parts.append("/>")
            else:
                if has_children and self._indent:
                    self._parts.append("\n" + self._indent * self._depth)
                self._parts.append(f"</{name}>")
        elif kind == TokenKind.BEGIN_ATTRIBUTE:
            if not self._stack or not self._stack[-1][2]:
                raise TokenStreamError("attribute token outside a start tag")
            self._attribute = [token.name, ""]
        elif kind == TokenKind.ATTRIBUTE_VALUE:
            if not self._attribute:
                raise TokenStreamError("ATTRIBUTE_VALUE outside an attribute")
            self._attribute[1] += token.value
        elif kind == TokenKind.END_ATTRIBUTE:
            if not self._attribute:
                raise TokenStreamError("END_ATTRIBUTE with no open attribute")
            name, value = self._attribute
            self._parts.append(f' {name}="{escape_attribute(value)}"')
            self._attribute = []
        elif kind == TokenKind.NAMESPACE:
            if self._stack and self._stack[-1][2]:
                attr = "xmlns" if not token.name else f"xmlns:{token.name}"
                self._parts.append(f' {attr}="{escape_attribute(token.value)}"')
            else:
                raise TokenStreamError("NAMESPACE token outside a start tag")
        elif kind == TokenKind.TEXT:
            # Text stays inline: it must not trigger pretty-print newlines,
            # which would change the document's character data.
            self._close_open_tag(newline=False)
            self._parts.append(escape_text(token.value))
        elif kind == TokenKind.COMMENT:
            self._close_open_tag(newline=True)
            self._write_line_start()
            self._parts.append(f"<!--{token.value}-->")
            self._mark_child()
        elif kind == TokenKind.PROCESSING_INSTRUCTION:
            self._close_open_tag(newline=True)
            self._write_line_start()
            data = f" {token.value}" if token.value else ""
            self._parts.append(f"<?{token.name}{data}?>")
            self._mark_child()
        else:  # pragma: no cover - exhaustive over TokenKind
            raise TokenStreamError(f"cannot serialize token kind {kind!r}")

    def finish(self) -> str:
        if self._stack:
            raise TokenStreamError(
                f"unclosed element <{self._stack[-1][0]}> at end of stream"
            )
        if self._attribute:
            raise TokenStreamError("unclosed attribute at end of stream")
        return "".join(self._parts)

    # -- helpers -------------------------------------------------------------------

    def _close_open_tag(self, newline: bool) -> None:
        if self._stack and self._stack[-1][2]:
            self._parts.append(">")
            self._stack[-1][2] = False
            self._stack[-1][1] = self._stack[-1][1] or newline

    def _mark_child(self) -> None:
        if self._stack:
            self._stack[-1][1] = True

    def _write_line_start(self) -> None:
        if self._indent and self._parts:
            self._parts.append("\n" + self._indent * self._depth)
