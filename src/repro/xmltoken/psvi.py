"""PSVI support: post-schema-validation type annotations on tokens.

The paper requires PSVI support (§2, requirement 7) "in order to avoid
repeated evaluation of XML schema": once a document is validated, its type
annotations travel with the tokens, so consumers never re-derive them.

Full XML Schema is out of scope (see DESIGN.md substitutions); what the
store needs — and what this module provides — is:

* a small vocabulary of simple types with string→value conversion and
  validation (:class:`SimpleType`),
* a schema table mapping element/attribute names to simple types
  (:class:`Schema`),
* an annotation pass that stamps ``type_annotation`` on the tokens of a
  stream and *validates* typed content (:func:`annotate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from decimal import Decimal, InvalidOperation
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import TokenError
from repro.xmltoken.tokens import Token, TokenKind


class SchemaValidationError(TokenError):
    """Typed content does not conform to its declared simple type."""


@dataclass(frozen=True)
class SimpleType:
    """A named simple type with parse/validate behaviour."""

    name: str
    parse: Callable[[str], Any]

    def validate(self, lexical: str) -> Any:
        try:
            return self.parse(lexical)
        except (ValueError, InvalidOperation) as exc:
            raise SchemaValidationError(
                f"value {lexical!r} is not a valid {self.name}"
            ) from exc


def _parse_boolean(lexical: str) -> bool:
    value = lexical.strip()
    if value in ("true", "1"):
        return True
    if value in ("false", "0"):
        return False
    raise ValueError(f"not a boolean: {lexical!r}")


XS_STRING = SimpleType("xs:string", str)
XS_INTEGER = SimpleType("xs:integer", lambda s: int(s.strip()))
XS_DECIMAL = SimpleType("xs:decimal", lambda s: Decimal(s.strip()))
XS_DOUBLE = SimpleType("xs:double", lambda s: float(s.strip()))
XS_BOOLEAN = SimpleType("xs:boolean", _parse_boolean)

BUILTIN_TYPES: Dict[str, SimpleType] = {
    t.name: t for t in (XS_STRING, XS_INTEGER, XS_DECIMAL, XS_DOUBLE, XS_BOOLEAN)
}


@dataclass
class Schema:
    """Maps element and attribute QNames to simple types.

    ``elements['price'] = 'xs:decimal'`` declares that the *text content*
    of every ``<price>`` element is a decimal.  Undeclared names stay
    untyped (annotation ``""``), mirroring partial validation.
    """

    elements: Dict[str, str] = field(default_factory=dict)
    attributes: Dict[str, str] = field(default_factory=dict)
    types: Dict[str, SimpleType] = field(default_factory=lambda: dict(BUILTIN_TYPES))

    def element_type(self, name: str) -> Optional[SimpleType]:
        return self._resolve(self.elements.get(name))

    def attribute_type(self, name: str) -> Optional[SimpleType]:
        return self._resolve(self.attributes.get(name))

    def register_type(self, simple_type: SimpleType) -> None:
        self.types[simple_type.name] = simple_type

    def _resolve(self, type_name: Optional[str]) -> Optional[SimpleType]:
        if type_name is None:
            return None
        try:
            return self.types[type_name]
        except KeyError:
            raise SchemaValidationError(f"unknown simple type {type_name!r}") from None


def annotate(tokens: Sequence[Token], schema: Schema) -> List[Token]:
    """Return a copy of ``tokens`` with PSVI annotations applied.

    Element begin tokens, their text children, attribute begin tokens and
    attribute values all receive the declared type's name.  Typed content
    is validated eagerly, so an annotated stream is guaranteed parseable
    into typed values.
    """
    annotated: List[Token] = []
    element_types: List[Optional[SimpleType]] = []
    attribute_type: Optional[SimpleType] = None
    for token in tokens:
        kind = token.kind
        if kind == TokenKind.BEGIN_ELEMENT:
            simple = schema.element_type(token.name)
            element_types.append(simple)
            annotated.append(token.with_type(simple.name) if simple else token)
        elif kind == TokenKind.END_ELEMENT:
            if element_types:
                element_types.pop()
            annotated.append(token)
        elif kind == TokenKind.BEGIN_ATTRIBUTE:
            attribute_type = schema.attribute_type(token.name)
            annotated.append(
                token.with_type(attribute_type.name) if attribute_type else token
            )
        elif kind == TokenKind.END_ATTRIBUTE:
            attribute_type = None
            annotated.append(token)
        elif kind == TokenKind.ATTRIBUTE_VALUE:
            if attribute_type is not None:
                attribute_type.validate(token.value)
                annotated.append(token.with_type(attribute_type.name))
            else:
                annotated.append(token)
        elif kind == TokenKind.TEXT:
            simple = element_types[-1] if element_types else None
            if simple is not None:
                simple.validate(token.value)
                annotated.append(token.with_type(simple.name))
            else:
                annotated.append(token)
        else:
            annotated.append(token)
    return annotated


def typed_value(token: Token, schema: Optional[Schema] = None) -> Any:
    """The typed value of an annotated TEXT/ATTRIBUTE_VALUE token.

    Untyped tokens return their string value, following the XQuery Data
    Model's ``xs:untypedAtomic`` behaviour.
    """
    if not token.type_annotation:
        return token.value
    types = schema.types if schema is not None else BUILTIN_TYPES
    simple = types.get(token.type_annotation)
    if simple is None:
        raise SchemaValidationError(
            f"unknown type annotation {token.type_annotation!r}"
        )
    return simple.validate(token.value)
