"""A from-scratch pull-based XML tokenizer.

Plays the role of the BEA/XQRL pull parser the paper's representation is
derived from [7]: XML text in, a stream of enriched-SAX :class:`Token`
objects out.  The parser is deliberately independent of any tree API — the
store consumes the token stream directly.

Supported XML: elements, attributes (emitted as separate begin/value/end
tokens), character data, CDATA sections, comments, processing
instructions, the XML declaration, DOCTYPE declarations (skipped), the
five predefined entities plus decimal/hex character references, and
namespace declarations (``xmlns``/``xmlns:p`` attributes are surfaced as
NAMESPACE tokens; QNames are kept verbatim).

Two entry points:

:func:`tokenize_fragment`
    Accepts a *fragment*: zero or more sibling nodes (elements, text,
    comments, PIs).  This is what update operations carry.

:func:`tokenize_document`
    Accepts a full document (exactly one root element, no top-level text)
    and brackets the stream in BEGIN_DOCUMENT/END_DOCUMENT tokens.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import XMLSyntaxError
from repro.xmltoken.tokens import (
    Token,
    TokenKind,
    attribute_value,
    begin_attribute,
    begin_document,
    begin_element,
    comment,
    end_attribute,
    end_document,
    end_element,
    namespace,
    processing_instruction,
    text,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character cursor with line/column tracking for error messages."""

    __slots__ = ("source", "pos", "length")

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- errors ---------------------------------------------------------------

    def error(self, message: str, at: Optional[int] = None) -> XMLSyntaxError:
        position = self.pos if at is None else at
        prefix = self.source[:position]
        line = prefix.count("\n") + 1
        column = position - (prefix.rfind("\n") + 1) + 1
        return XMLSyntaxError(message, line=line, column=column)

    # -- low-level cursor -------------------------------------------------------

    @property
    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < self.length else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def startswith(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.pos)

    def consume(self, literal: str, what: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {what} ({literal!r})")
        self.pos += len(literal)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos] in " \t\r\n":
            self.pos += 1

    def read_until(self, terminator: str, what: str) -> str:
        end = self.source.find(terminator, self.pos)
        if end == -1:
            raise self.error(f"unterminated {what}")
        value = self.source[self.pos : end]
        self.pos = end + len(terminator)
        return value

    def read_name(self) -> str:
        start = self.pos
        if self.at_end or not _is_name_start(self.source[self.pos]):
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.source[self.pos]):
            self.pos += 1
        return self.source[start : self.pos]


class PullParser:
    """Pull-style tokenizer: iterate to receive tokens one at a time."""

    def __init__(self, source: str, fragment: bool = True) -> None:
        self._scanner = _Scanner(source)
        self._fragment = fragment
        self._open_elements: List[str] = []
        self._seen_root = False

    def __iter__(self) -> Iterator[Token]:
        return self._run()

    # -- main loop ----------------------------------------------------------------

    def _run(self) -> Iterator[Token]:
        scanner = self._scanner
        if not self._fragment:
            yield begin_document()
            self._skip_prolog()
        elif scanner.startswith("<?xml") and scanner.peek(5) in " \t\r\n?":
            # tolerate a leading XML declaration on fragments too
            scanner.read_until("?>", "XML declaration")
        while not scanner.at_end:
            if scanner.peek() == "<":
                produced = self._markup()
            else:
                produced = self._character_data()
            for token in produced:
                yield token
        if self._open_elements:
            raise scanner.error(
                f"unclosed element <{self._open_elements[-1]}> at end of input"
            )
        if not self._fragment:
            if not self._seen_root:
                raise scanner.error("document has no root element")
            yield end_document()

    # -- prolog -------------------------------------------------------------------

    def _skip_prolog(self) -> None:
        scanner = self._scanner
        scanner.skip_whitespace()
        if scanner.startswith("<?xml"):
            scanner.read_until("?>", "XML declaration")
        scanner.skip_whitespace()
        while scanner.startswith("<!--") or scanner.startswith("<!DOCTYPE"):
            if scanner.startswith("<!--"):
                scanner.advance(4)
                scanner.read_until("-->", "comment")
            else:
                self._skip_doctype()
            scanner.skip_whitespace()

    def _skip_doctype(self) -> None:
        scanner = self._scanner
        scanner.consume("<!DOCTYPE", "DOCTYPE declaration")
        depth = 1
        while depth and not scanner.at_end:
            ch = scanner.peek()
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            scanner.advance()
        if depth:
            raise scanner.error("unterminated DOCTYPE declaration")

    # -- markup dispatch -------------------------------------------------------------

    def _markup(self) -> List[Token]:
        scanner = self._scanner
        if scanner.startswith("<!--"):
            scanner.advance(4)
            value = scanner.read_until("-->", "comment")
            if "--" in value:
                raise scanner.error("'--' is not allowed inside a comment")
            return [comment(value)]
        if scanner.startswith("<![CDATA["):
            scanner.advance(9)
            value = scanner.read_until("]]>", "CDATA section")
            if not self._open_elements and not self._fragment:
                raise scanner.error("character data outside the root element")
            return [text(value)]
        if scanner.startswith("<?"):
            return [self._processing_instruction()]
        if scanner.startswith("</"):
            return [self._end_tag()]
        if scanner.startswith("<!"):
            raise scanner.error("unexpected markup declaration")
        return self._start_tag()

    def _processing_instruction(self) -> Token:
        scanner = self._scanner
        scanner.advance(2)
        target = scanner.read_name()
        if target.lower() == "xml":
            raise scanner.error("the 'xml' target is reserved")
        body = scanner.read_until("?>", "processing instruction")
        return processing_instruction(target, body.strip())

    def _start_tag(self) -> List[Token]:
        scanner = self._scanner
        start = scanner.pos
        scanner.advance(1)  # '<'
        name = scanner.read_name()
        if not self._fragment and not self._open_elements:
            if self._seen_root:
                raise scanner.error("multiple root elements", at=start)
            self._seen_root = True
        tokens: List[Token] = [begin_element(name)]
        seen_attributes = set()
        while True:
            scanner.skip_whitespace()
            ch = scanner.peek()
            if ch == ">":
                scanner.advance()
                self._open_elements.append(name)
                return tokens
            if scanner.startswith("/>"):
                scanner.advance(2)
                tokens.append(end_element())
                return tokens
            if not ch:
                raise scanner.error(f"unterminated start tag <{name}>", at=start)
            attr_name = scanner.read_name()
            if attr_name in seen_attributes:
                raise scanner.error(f"duplicate attribute {attr_name!r}")
            seen_attributes.add(attr_name)
            scanner.skip_whitespace()
            scanner.consume("=", "'=' after attribute name")
            scanner.skip_whitespace()
            value = self._attribute_literal()
            if attr_name == "xmlns":
                tokens.append(namespace("", value))
            elif attr_name.startswith("xmlns:"):
                tokens.append(namespace(attr_name[6:], value))
            else:
                tokens.append(begin_attribute(attr_name))
                tokens.append(attribute_value(value))
                tokens.append(end_attribute())
        # unreachable

    def _attribute_literal(self) -> str:
        scanner = self._scanner
        quote = scanner.peek()
        if quote not in "\"'":
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote, "attribute value")
        if "<" in raw:
            raise scanner.error("'<' is not allowed in an attribute value")
        return self._expand_entities(raw)

    def _end_tag(self) -> Token:
        scanner = self._scanner
        start = scanner.pos
        scanner.advance(2)  # '</'
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.consume(">", "'>' closing an end tag")
        if not self._open_elements:
            raise scanner.error(f"end tag </{name}> with no open element", at=start)
        expected = self._open_elements.pop()
        if expected != name:
            raise scanner.error(
                f"end tag </{name}> does not match open element <{expected}>",
                at=start,
            )
        return end_element()

    # -- character data ------------------------------------------------------------

    def _character_data(self) -> List[Token]:
        scanner = self._scanner
        start = scanner.pos
        end = scanner.source.find("<", scanner.pos)
        if end == -1:
            end = scanner.length
        raw = scanner.source[start:end]
        scanner.pos = end
        if "]]>" in raw:
            raise scanner.error("']]>' is not allowed in character data")
        value = self._expand_entities(raw)
        if not self._open_elements:
            if value.strip():
                if self._fragment:
                    return [text(value)]
                raise scanner.error("character data outside the root element", at=start)
            return []  # inter-element whitespace at top level
        return [text(value)]

    def _expand_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        scanner = self._scanner
        parts: List[str] = []
        index = 0
        while True:
            amp = raw.find("&", index)
            if amp == -1:
                parts.append(raw[index:])
                return "".join(parts)
            parts.append(raw[index:amp])
            semi = raw.find(";", amp)
            if semi == -1:
                raise scanner.error("unterminated entity reference")
            entity = raw[amp + 1 : semi]
            parts.append(self._resolve_entity(entity))
            index = semi + 1

    def _resolve_entity(self, entity: str) -> str:
        if entity in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[entity]
        if entity.startswith("#x") or entity.startswith("#X"):
            try:
                return chr(int(entity[2:], 16))
            except ValueError:
                raise self._scanner.error(f"bad character reference &{entity};") from None
        if entity.startswith("#"):
            try:
                return chr(int(entity[1:]))
            except ValueError:
                raise self._scanner.error(f"bad character reference &{entity};") from None
        raise self._scanner.error(f"unknown entity &{entity};")


def tokenize_fragment(source: str) -> List[Token]:
    """Tokenize an XML fragment (zero or more sibling nodes)."""
    return list(PullParser(source, fragment=True))


def tokenize_document(source: str) -> List[Token]:
    """Tokenize a full document, bracketed in document tokens."""
    return list(PullParser(source, fragment=False))


def iter_tokens(source: str, fragment: bool = True) -> Iterator[Token]:
    """Streaming variant: yields tokens as the input is consumed."""
    return iter(PullParser(source, fragment=fragment))
