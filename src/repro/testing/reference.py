"""A plain in-memory reference store: the differential-testing oracle.

Keeps the document as a flat token list with its own dense id
assignment, sharing nothing with :class:`~repro.core.store.XMLStore`
except the parser.  The property tests drive random operation sequences
against both and require agreement; the crash-consistency torture
harness (:mod:`repro.testing.torture`) uses it to know which node ids
are valid targets while generating workloads, and what the document must
serialize to after recovering a prefix of the operation history.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import NodeNotFoundError
from repro.xmltoken.datamodel import node_end_offset
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.serializer import serialize
from repro.xmltoken.tokens import Token, TokenKind

_ATTRIBUTE_KINDS = (
    TokenKind.BEGIN_ATTRIBUTE,
    TokenKind.ATTRIBUTE_VALUE,
    TokenKind.END_ATTRIBUTE,
    TokenKind.NAMESPACE,
)


class ReferenceStore:
    """Token list + dense id assignment; mirrors the Table-1 interface."""

    def __init__(self) -> None:
        self.tokens: List[Token] = []
        self.ids: List[Optional[int]] = []  # id per token (node starts only)
        self._next_id = 1

    # -- helpers ---------------------------------------------------------------

    def _assign(self, tokens: List[Token]) -> List[Optional[int]]:
        ids: List[Optional[int]] = []
        for token in tokens:
            if token.starts_node:
                ids.append(self._next_id)
                self._next_id += 1
            else:
                ids.append(None)
        return ids

    def _find(self, node_id: int) -> int:
        for index, assigned in enumerate(self.ids):
            if assigned == node_id:
                return index
        raise NodeNotFoundError(str(node_id))

    def _subtree_span(self, index: int) -> Tuple[int, int]:
        return index, node_end_offset(self.tokens, index)

    def _splice(self, at: int, tokens: List[Token]) -> None:
        ids = self._assign(tokens)
        self.tokens[at:at] = tokens
        self.ids[at:at] = ids

    # -- mirrored operations -----------------------------------------------------

    def load_document(self, xml: str) -> Optional[int]:
        tokens = tokenize_fragment(xml)
        first = self._next_id if any(t.starts_node for t in tokens) else None
        self._splice(len(self.tokens), tokens)
        return first

    def read(self, node_id: Optional[int] = None) -> str:
        if node_id is None:
            return serialize(self.tokens)
        start, end = self._subtree_span(self._find(node_id))
        return serialize(self.tokens[start:end])

    def insert_before(self, node_id: int, xml: str) -> None:
        index = self._find(node_id)
        self._splice(index, tokenize_fragment(xml))

    def insert_after(self, node_id: int, xml: str) -> None:
        _, end = self._subtree_span(self._find(node_id))
        self._splice(end, tokenize_fragment(xml))

    def insert_into_last(self, node_id: int, xml: str) -> None:
        start, end = self._subtree_span(self._find(node_id))
        self._splice(end - 1, tokenize_fragment(xml))

    def insert_into_first(self, node_id: int, xml: str) -> None:
        index = self._find(node_id)
        position = index + 1
        while self.tokens[position].kind in _ATTRIBUTE_KINDS:
            position += 1
        self._splice(position, tokenize_fragment(xml))

    def delete_node(self, node_id: int) -> None:
        start, end = self._subtree_span(self._find(node_id))
        del self.tokens[start:end]
        del self.ids[start:end]

    def replace_node(self, node_id: int, xml: str) -> None:
        start, end = self._subtree_span(self._find(node_id))
        del self.tokens[start:end]
        del self.ids[start:end]
        self._splice(start, tokenize_fragment(xml))

    def replace_content(self, node_id: int, xml: str) -> None:
        start, end = self._subtree_span(self._find(node_id))
        content_start = start + 1
        while (
            content_start < end - 1
            and self.tokens[content_start].kind in _ATTRIBUTE_KINDS
        ):
            content_start += 1
        del self.tokens[content_start : end - 1]
        del self.ids[content_start : end - 1]
        if xml:
            self._splice(content_start, tokenize_fragment(xml))

    def exists(self, node_id: int) -> bool:
        return node_id in self.ids

    # -- inspection ---------------------------------------------------------------

    def is_attribute(self, node_id: int) -> bool:
        """Whether ``node_id`` names an attribute or namespace node."""
        index = self._find(node_id)
        return self.tokens[index].kind in (
            TokenKind.BEGIN_ATTRIBUTE,
            TokenKind.NAMESPACE,
        )

    def element_ids(self) -> List[int]:
        return [
            assigned
            for token, assigned in zip(self.tokens, self.ids)
            if assigned is not None and token.kind == TokenKind.BEGIN_ELEMENT
        ]

    def all_node_ids(self) -> List[int]:
        return [assigned for assigned in self.ids if assigned is not None]

    def sibling_target_ids(self) -> List[int]:
        """Node ids that legally take insert_before/after/delete (i.e.
        not attributes or namespace declarations)."""
        return [
            assigned
            for token, assigned in zip(self.tokens, self.ids)
            if assigned is not None
            and token.kind not in (TokenKind.BEGIN_ATTRIBUTE, TokenKind.NAMESPACE)
        ]
