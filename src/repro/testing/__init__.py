"""Test harnesses shipped with the library.

:mod:`repro.testing.reference` — a plain in-memory reference
implementation of the store's Table-1 interface (the differential-test
oracle).

:mod:`repro.testing.torture` — the crash-consistency torture harness:
deterministic fault injection (:mod:`repro.storage.faults`) plus
exhaustive crash-point enumeration with recovery verification.

These live under ``src`` (not ``tests``) because they are part of the
product's correctness story: the CLI exposes the torture harness
(``repro.cli <dir> torture``), CI runs it as a release gate, and future
subsystems (sharding, async, alternative backends) are expected to gate
on the same enumeration.
"""
