"""Crash-consistency torture: exhaustive crash-point enumeration.

The harness answers one question: *is there any single point in a
workload's I/O stream where dying loses or corrupts data that recovery
should have saved?*  It does so by brute force:

1. **Oracle run** — the workload executes on a plain store; after every
   operation the harness snapshots the serialized document and the
   cumulative WAL append count.  ``snapshots[M]`` is, by definition, the
   state a correct recovery must restore when exactly ``M`` operations
   have durable log records.
2. **Counting run** — the same workload executes on a store whose device
   and WAL are wrapped in the deterministic fault layer
   (:mod:`repro.storage.faults`) with no crash armed.  Every block
   write, per-block fsync flush and WAL frame append registers a crash
   point.  This run doubles as the zero-cost self-check: its simulated
   clock and final document must be byte-identical to the oracle's.
3. **Crash runs** — one run per crash point (or a seeded sample when
   capped): the workload is replayed from scratch, dies at point ``k``,
   and the surviving durable state (stable blocks + flushed WAL prefix,
   torn tails included) is recovered and verified:

   * **full-log restore** (always sound): replay the entire durable WAL
     onto a fresh store; the result must serialize to ``snapshots[M]``,
     pass every :mod:`repro.core.integrity` check — range-index
     intervals, token-replay id regeneration, partial-index memo
     validity — and accept new operations.
   * **checkpoint recovery** (when sound): if no fsync barrier started
     since the last completed checkpoint, the durable image is exactly
     the checkpoint's, so the store is also reopened from the captured
     catalog and the WAL suffix replayed; it must agree with the oracle
     the same way.

Every decision — workload, fault behavior, crash point — derives from
``TortureConfig.seed``, so a failure report is a replayable recipe:
``run_crash_point(config, point)`` reproduces it exactly, and
:func:`shrink_failing` minimizes the operation count while the failure
still fires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.integrity import integrity_report
from repro.core.store import XMLStore
from repro.errors import ReproError, SimulatedCrashError, StoreError
from repro.log import get_logger
from repro.storage.disk import MemoryBlockDevice
from repro.storage.faults import FaultConfig, FaultHarness, build_fault_harness
from repro.storage.recovery import replay
from repro.storage.wal import WriteAheadLog
from repro.testing.reference import ReferenceStore
from repro.workloads.generator import purchase_order_stream, purchase_orders_document

_log = get_logger("testing.torture")

#: One logged store operation: (method name, positional args).
Op = Tuple[str, tuple]

#: Small fragments mixed into the random workload (mirrors the property
#: tests' corpus: elements, text, attributes, nesting, multi-rooted).
FRAGMENTS = (
    "<a/>",
    "<b>text</b>",
    "<c x='1'><d/></c>",
    "<e><f>deep</f><g/></e>",
    "<h/><i/>",
)


@dataclass
class TortureConfig:
    """Everything that determines a torture run, seed first."""

    seed: int = 0
    #: mutating operations after the initial bulk load
    ops: int = 30
    #: ``insert`` = the Table-5 append workload (bulk base + order
    #: appends); ``mixed`` = random inserts/deletes/replaces at random
    #: positions
    workload: str = "mixed"
    policy: IndexingPolicy = IndexingPolicy.RANGE_PLUS_PARTIAL
    page_size: int = 512
    pool_capacity: int = 8
    max_range_tokens: Optional[int] = 32
    #: checkpoint every N operations (None = never)
    checkpoint_every: Optional[int] = 7
    #: run a compaction pass every N operations (None = never) — crashed
    #: compactions are the partial-index invalidation hot spot
    compact_every: Optional[int] = 11
    #: fault classes
    torn_page_writes: bool = True
    torn_wal_appends: bool = True
    reorder_sync: bool = True
    #: test at most this many crash points (seeded sample); None = all
    crash_points: Optional[int] = None
    #: attach a live event log to every store (fault/recovery events)
    events_enabled: bool = False
    #: orders in the bulk-loaded base document
    base_orders: int = 2
    items_per_order: int = 2

    def store_config(self) -> StoreConfig:
        return StoreConfig(
            policy=self.policy,
            page_size=self.page_size,
            buffer_pool_capacity=self.pool_capacity,
            max_range_tokens=self.max_range_tokens,
            events_enabled=self.events_enabled,
        )

    def fault_config(self, crash_at: Optional[int]) -> FaultConfig:
        return FaultConfig(
            seed=self.seed,
            crash_at=crash_at,
            torn_page_writes=self.torn_page_writes,
            torn_wal_appends=self.torn_wal_appends,
            reorder_sync=self.reorder_sync,
        )


# ===================================================================== workload ==


def generate_workload(config: TortureConfig) -> List[Op]:
    """A deterministic operation sequence for ``config.seed``.

    Valid targets are tracked with the :class:`ReferenceStore` oracle, so
    every generated op addresses a node that exists when it runs — the
    sequence replays identically on every crash run.
    """
    rng = random.Random(config.seed)
    model = ReferenceStore()
    ops: List[Op] = []

    def emit(kind: str, *args) -> None:
        ops.append((kind, args))

    base = purchase_orders_document(
        config.base_orders, config.items_per_order, seed=config.seed
    )
    emit("load_document", base)
    model.load_document(base)
    if config.workload == "insert":
        _generate_insert_ops(config, ops)
        return ops
    if config.workload != "mixed":
        raise ReproError(f"unknown torture workload {config.workload!r}")
    orders = purchase_order_stream(
        config.ops, config.items_per_order, seed=config.seed + 1,
        start_no=config.base_orders,
    )
    for index in range(1, config.ops + 1):
        if config.checkpoint_every and index % config.checkpoint_every == 0:
            emit("checkpoint")
            continue
        if config.compact_every and index % config.compact_every == 0:
            emit("compact")
            continue
        choice = rng.random()
        targets = model.sibling_target_ids()
        elements = model.element_ids()
        if not targets or choice < 0.15:
            fragment = next(orders)
            emit("load_document", fragment)
            model.load_document(fragment)
        elif choice < 0.45 and elements:
            node_id = rng.choice(elements)
            fragment = rng.choice(FRAGMENTS)
            emit("insert_into_last", node_id, fragment)
            model.insert_into_last(node_id, fragment)
        elif choice < 0.60:
            node_id = rng.choice(targets)
            fragment = rng.choice(FRAGMENTS)
            emit("insert_before", node_id, fragment)
            model.insert_before(node_id, fragment)
        elif choice < 0.75:
            node_id = rng.choice(targets)
            fragment = rng.choice(FRAGMENTS)
            emit("insert_after", node_id, fragment)
            model.insert_after(node_id, fragment)
        elif choice < 0.90:
            node_id = rng.choice(targets)
            fragment = rng.choice(FRAGMENTS)
            emit("replace_node", node_id, fragment)
            model.replace_node(node_id, fragment)
        else:
            node_id = rng.choice(targets)
            emit("delete_node", node_id)
            model.delete_node(node_id)
    return ops


def _generate_insert_ops(config: TortureConfig, ops: List[Op]) -> None:
    """The Table-5 insert workload: append order fragments to the root."""
    root_id = 1  # sequential ids: the bulk-loaded root element
    fragments = purchase_order_stream(
        config.ops, config.items_per_order, seed=config.seed + 1,
        start_no=config.base_orders,
    )
    for index in range(1, config.ops + 1):
        if config.checkpoint_every and index % config.checkpoint_every == 0:
            ops.append(("checkpoint", ()))
            continue
        if config.compact_every and index % config.compact_every == 0:
            ops.append(("compact", ()))
            continue
        ops.append(("insert_into_last", (root_id, next(fragments))))


def apply_op(store: XMLStore, op: Op):
    """Execute one workload op; returns the catalog for checkpoints."""
    kind, args = op
    if kind == "checkpoint":
        return store.checkpoint()
    if kind == "compact":
        return store.compact()
    return getattr(store, kind)(*args)


# ===================================================================== baseline ==


@dataclass
class WorkloadTrace:
    """What the oracle and counting runs learned about the workload."""

    ops: List[Op]
    #: ``snapshots[i]`` = serialized document after the first ``i`` ops
    snapshots: List[str]
    #: cumulative WAL appends after each op (``appends_after[i]`` = count
    #: once op ``i`` finished; non-decreasing)
    appends_after: List[int]
    #: total crash points the workload exposes
    total_points: int
    #: label of each crash point (``write:...``/``sync:...``/``wal:...``)
    point_labels: List[str]
    #: the counting run matched the oracle byte-for-byte and cost-for-cost
    passthrough_identical: bool
    oracle_simulated_seconds: float
    faulty_simulated_seconds: float


def _build_faulty_store(
    config: TortureConfig, crash_at: Optional[int]
) -> Tuple[XMLStore, FaultHarness]:
    store_config = config.store_config()
    harness = build_fault_harness(
        config.fault_config(crash_at),
        MemoryBlockDevice(block_size=store_config.page_size),
        cost_model=store_config.cost_model,
    )
    wal = WriteAheadLog()
    wal.fault_adapter = harness.wal_adapter
    store = XMLStore.open(store_config, device=harness.device, wal=wal)
    return store, harness


def run_baseline(config: TortureConfig, ops: Optional[List[Op]] = None) -> WorkloadTrace:
    """The oracle and counting runs (steps 1 and 2 of the module doc)."""
    ops = ops if ops is not None else generate_workload(config)
    # --- oracle: plain store, snapshot after every op
    oracle = XMLStore.open(config.store_config())
    snapshots = [oracle.read()]
    appends_after = []
    for op in ops:
        apply_op(oracle, op)
        snapshots.append(oracle.read())
        appends_after.append(oracle.wal.appends)
    # --- cost reference: the same run on a plain store with *no* reads
    # (the oracle's per-op snapshot reads shift its buffer traffic, so
    # its clock is not comparable to the counting run's)
    plain = XMLStore.open(config.store_config())
    for op in ops:
        apply_op(plain, op)
    plain_seconds = plain.simulated_seconds
    # --- counting: identical run under the (pass-through) fault layer;
    # no reads in the loop, so its I/O stream is exactly a crash run's
    faulty, harness = _build_faulty_store(config, crash_at=None)
    for op in ops:
        apply_op(faulty, op)
    # count points *before* the verification read below: reading can
    # evict dirty pages (more ticks), and crash runs never read
    total_points = harness.clock.ticks
    point_labels = list(harness.clock.points)
    faulty_seconds = faulty.simulated_seconds
    identical = (
        faulty_seconds == plain_seconds and faulty.read() == snapshots[-1]
    )
    return WorkloadTrace(
        ops=ops,
        snapshots=snapshots,
        appends_after=appends_after,
        total_points=total_points,
        point_labels=point_labels,
        passthrough_identical=identical,
        oracle_simulated_seconds=plain_seconds,
        faulty_simulated_seconds=faulty_seconds,
    )


# =================================================================== crash runs ==


@dataclass
class CrashPointResult:
    """Verdict for one crash point."""

    point: int
    label: str
    #: operations whose WAL records were fully durable at the crash
    durable_ops: int
    full_restore_ok: bool
    #: checkpoint recovery was applicable (durable image == catalog state)
    catalog_checked: bool
    catalog_ok: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.full_restore_ok and (self.catalog_ok or not self.catalog_checked)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "point": self.point,
            "label": self.label,
            "durable_ops": self.durable_ops,
            "ok": self.ok,
            "full_restore_ok": self.full_restore_ok,
            "catalog_checked": self.catalog_checked,
            "catalog_ok": self.catalog_ok,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def _verify_recovered(
    recovered: XMLStore, expected: str, path: str
) -> Optional[str]:
    """Integrity + oracle agreement + liveness; returns an error or None."""
    report = integrity_report(recovered)
    if not report.ok:
        failed = ", ".join(check.name for check in report.failed())
        first = report.failed()[0]
        return f"{path}: integrity check(s) failed [{failed}]: {first.error}"
    actual = recovered.read()
    if actual != expected:
        return (
            f"{path}: recovered document diverges from oracle "
            f"(expected {len(expected)} chars, got {len(actual)}): "
            f"expected {expected[:120]!r}... got {actual[:120]!r}..."
        )
    # the recovered store must stay usable
    recovered.load_document("<post-crash-probe/>")
    probe_report = integrity_report(recovered)
    if not probe_report.ok:
        failed = ", ".join(check.name for check in probe_report.failed())
        return f"{path}: store broke on first post-recovery write [{failed}]"
    return None


def run_crash_point(
    config: TortureConfig, point: int, trace: Optional[WorkloadTrace] = None
) -> CrashPointResult:
    """Replay the workload, crash at ``point``, recover and verify."""
    trace = trace if trace is not None else run_baseline(config)
    store, harness = _build_faulty_store(config, crash_at=point)
    last_catalog: Optional[bytes] = None
    sync_attempts_at_capture = -1
    crashed = False
    for op in trace.ops:
        try:
            result = apply_op(store, op)
        except SimulatedCrashError:
            crashed = True
            break
        if op[0] == "checkpoint":
            last_catalog = result
            sync_attempts_at_capture = harness.disk.sync_attempts
    label = harness.clock.crash_label or "(none)"
    if not crashed:
        raise StoreError(
            f"crash point {point} never fired ({harness.clock.ticks} points total)"
        )
    # the process is dead: only durable state survives
    harness.disk.crash()
    wal_bytes = store.wal.to_bytes()
    durable_frames = harness.wal_adapter.frames_completed
    durable_ops = sum(1 for count in trace.appends_after if count <= durable_frames)
    expected = trace.snapshots[durable_ops]
    # --- recovery path 1: full-log logical restore (always sound)
    error: Optional[str] = None
    try:
        recovered = XMLStore.recover(
            WriteAheadLog.from_bytes(wal_bytes), config=config.store_config()
        )
        error = _verify_recovered(recovered, expected, "full-restore")
    except ReproError as failure:
        error = f"full-restore: recovery raised {type(failure).__name__}: {failure}"
    full_restore_ok = error is None
    # --- recovery path 2: checkpoint catalog + WAL suffix (when sound)
    catalog_checked = False
    catalog_ok = True
    if (
        full_restore_ok
        and last_catalog is not None
        and harness.disk.sync_attempts == sync_attempts_at_capture
    ):
        catalog_checked = True
        try:
            from repro.storage.disk import InstrumentedDevice

            device = InstrumentedDevice(
                harness.disk, cost_model=config.store_config().cost_model
            )
            wal = WriteAheadLog.from_bytes(wal_bytes)
            reopened = XMLStore.from_catalog(
                device, last_catalog, config=config.store_config(), wal=wal
            )
            replay(reopened, wal)
            catalog_error = _verify_recovered(reopened, expected, "catalog-replay")
        except ReproError as failure:
            catalog_error = (
                f"catalog-replay: recovery raised {type(failure).__name__}: {failure}"
            )
        if catalog_error is not None:
            catalog_ok = False
            error = catalog_error
    return CrashPointResult(
        point=point,
        label=label,
        durable_ops=durable_ops,
        full_restore_ok=full_restore_ok,
        catalog_checked=catalog_checked,
        catalog_ok=catalog_ok,
        error=error,
    )


# ====================================================================== report ==


@dataclass
class TortureReport:
    """Outcome of a whole enumeration."""

    config: TortureConfig
    total_points: int
    tested_points: int
    results: List[CrashPointResult] = field(default_factory=list)
    passthrough_identical: bool = True

    @property
    def failures(self) -> List[CrashPointResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and self.passthrough_identical

    @property
    def catalog_checked_points(self) -> int:
        return sum(1 for result in self.results if result.catalog_checked)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "seed": self.config.seed,
            "workload": self.config.workload,
            "ops": self.config.ops,
            "fault_classes": {
                "torn_page_writes": self.config.torn_page_writes,
                "torn_wal_appends": self.config.torn_wal_appends,
                "reorder_sync": self.config.reorder_sync,
            },
            "total_points": self.total_points,
            "tested_points": self.tested_points,
            "catalog_checked_points": self.catalog_checked_points,
            "passthrough_identical": self.passthrough_identical,
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def render(self) -> str:
        lines = [
            f"torture seed={self.config.seed} workload={self.config.workload} "
            f"ops={self.config.ops}",
            f"crash points: {self.total_points} total, {self.tested_points} tested, "
            f"{self.catalog_checked_points} also checked via catalog recovery",
            "pass-through: "
            + ("byte-identical" if self.passthrough_identical else "DIVERGED"),
        ]
        if self.failures:
            lines.append(f"{len(self.failures)} FAILING crash point(s):")
            for failure in self.failures:
                lines.append(
                    f"  point {failure.point} [{failure.label}] "
                    f"durable_ops={failure.durable_ops}: {failure.error}"
                )
            lines.append(
                f"reproduce with: TortureConfig(seed={self.config.seed}, "
                f"ops={self.config.ops}, workload={self.config.workload!r}) "
                f"+ run_crash_point(config, {self.failures[0].point})"
            )
        else:
            lines.append("all tested crash points recovered verify-clean")
        return "\n".join(lines)


def select_points(total: int, cap: Optional[int], seed: int) -> List[int]:
    """Which crash points to test: all, or a seeded sample of ``cap``."""
    if cap is None or cap >= total:
        return list(range(total))
    rng = random.Random(seed ^ 0x5EED)
    return sorted(rng.sample(range(total), cap))


def run_torture(config: Optional[TortureConfig] = None) -> TortureReport:
    """Enumerate crash points for ``config`` and verify recovery at each."""
    config = config if config is not None else TortureConfig()
    trace = run_baseline(config)
    points = select_points(trace.total_points, config.crash_points, config.seed)
    _log.info(
        "torture: %d crash points (%d tested), seed=%d",
        trace.total_points, len(points), config.seed,
    )
    report = TortureReport(
        config=config,
        total_points=trace.total_points,
        tested_points=len(points),
        passthrough_identical=trace.passthrough_identical,
    )
    for point in points:
        result = run_crash_point(config, point, trace)
        report.results.append(result)
        if not result.ok:
            _log.warning("crash point %d FAILED: %s", point, result.error)
    return report


def shrink_failing(config: TortureConfig, rounds: int = 6) -> TortureConfig:
    """Minimize ``config.ops`` while the torture run still fails.

    Greedy halving: each round tries a workload half the size; the
    smallest failing size wins.  Returns the minimized config (possibly
    the original if nothing smaller fails).
    """
    best = config
    candidate_ops = config.ops
    for _ in range(rounds):
        candidate_ops //= 2
        if candidate_ops < 1:
            break
        from dataclasses import replace

        candidate = replace(best, ops=candidate_ops)
        if not run_torture(candidate).ok:
            best = candidate
    return best
