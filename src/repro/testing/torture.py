"""Crash-consistency torture: exhaustive crash-point enumeration.

The harness answers one question: *is there any single point in a
workload's I/O stream where dying loses or corrupts data that recovery
should have saved?*  It does so by brute force:

1. **Oracle run** — the workload executes on a plain store; after every
   operation the harness snapshots the serialized document and the
   cumulative WAL append count.  ``snapshots[M]`` is, by definition, the
   state a correct recovery must restore when exactly ``M`` operations
   have durable log records.
2. **Counting run** — the same workload executes on a store whose device
   and WAL are wrapped in the deterministic fault layer
   (:mod:`repro.storage.faults`) with no crash armed.  Every block
   write, per-block fsync flush and WAL frame append registers a crash
   point.  This run doubles as the zero-cost self-check: its simulated
   clock and final document must be byte-identical to the oracle's.
3. **Crash runs** — one run per crash point (or a seeded sample when
   capped): the workload is replayed from scratch, dies at point ``k``,
   and the surviving durable state (stable blocks + flushed WAL prefix,
   torn tails included) is recovered and verified:

   * **full-log restore** (always sound): replay the entire durable WAL
     onto a fresh store; the result must serialize to ``snapshots[M]``,
     pass every :mod:`repro.core.integrity` check — range-index
     intervals, token-replay id regeneration, partial-index memo
     validity — and accept new operations.
   * **checkpoint recovery** (when sound): if no fsync barrier started
     since the last completed checkpoint, the durable image is exactly
     the checkpoint's, so the store is also reopened from the captured
     catalog and the WAL suffix replayed; it must agree with the oracle
     the same way.

Every decision — workload, fault behavior, crash point — derives from
``TortureConfig.seed``, so a failure report is a replayable recipe:
``run_crash_point(config, point)`` reproduces it exactly, and
:func:`shrink_failing` minimizes the operation count while the failure
still fires.

**Media-fault mode** (:func:`run_media_torture`, dispatched from
:func:`run_torture` whenever a media class — ``bitrot``, ``lost_write``,
``misdirect`` — is enabled) asks the silent-corruption question instead:
*can damage that the disk never reports reach a reader unnoticed?*  The
workload runs to completion (no crash) while every flush may rot; each
seeded round is then held to three verdicts:

* **no silent failures** — any operation that fails must fail with a
  :class:`~repro.errors.ChecksumError` (detection), never a wrong answer
  or an unrelated crash;
* **ledger accounting** — every injected fault still on stable storage
  must be *detected* (scrub-flagged or quarantined), *healed* (a later
  flush overwrote it), *masked* (a dirty or pending-free page makes the
  device image non-authoritative) or *provably unreachable* (no live
  structure references the block).  Stale-but-valid images — lost
  writes, and the intended block of a misdirected write — are exempt by
  design: a checksum cannot date a page, so those are caught by the
  content checks instead;
* **repairability** — the damaged store must come back: a full-log
  rebuild always restores the oracle document, and (when the workload
  completed) :func:`repro.core.repair.repair_store` on the live store
  must either restore content equality or degrade *explicitly*, never
  silently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.integrity import integrity_report
from repro.core.store import XMLStore
from repro.errors import ChecksumError, ReproError, SimulatedCrashError, StoreError
from repro.log import get_logger
from repro.storage.disk import MemoryBlockDevice
from repro.storage.faults import FaultConfig, FaultHarness, build_fault_harness
from repro.storage.recovery import replay
from repro.storage.wal import WriteAheadLog
from repro.testing.reference import ReferenceStore
from repro.workloads.generator import purchase_order_stream, purchase_orders_document

_log = get_logger("testing.torture")

#: One logged store operation: (method name, positional args).
Op = Tuple[str, tuple]

#: Small fragments mixed into the random workload (mirrors the property
#: tests' corpus: elements, text, attributes, nesting, multi-rooted).
FRAGMENTS = (
    "<a/>",
    "<b>text</b>",
    "<c x='1'><d/></c>",
    "<e><f>deep</f><g/></e>",
    "<h/><i/>",
)


@dataclass
class TortureConfig:
    """Everything that determines a torture run, seed first."""

    seed: int = 0
    #: mutating operations after the initial bulk load
    ops: int = 30
    #: ``insert`` = the Table-5 append workload (bulk base + order
    #: appends); ``mixed`` = random inserts/deletes/replaces at random
    #: positions
    workload: str = "mixed"
    policy: IndexingPolicy = IndexingPolicy.RANGE_PLUS_PARTIAL
    page_size: int = 512
    pool_capacity: int = 8
    max_range_tokens: Optional[int] = 32
    #: checkpoint every N operations (None = never)
    checkpoint_every: Optional[int] = 7
    #: run a compaction pass every N operations (None = never) — crashed
    #: compactions are the partial-index invalidation hot spot
    compact_every: Optional[int] = 11
    #: fault classes
    torn_page_writes: bool = True
    torn_wal_appends: bool = True
    reorder_sync: bool = True
    #: media (silent-corruption) fault classes — enabling any of them
    #: routes :func:`run_torture` to :func:`run_media_torture`
    bitrot: bool = False
    lost_writes: bool = False
    misdirected_writes: bool = False
    #: per-flushed-block probability of injecting one media fault
    media_fault_rate: float = 0.05
    #: seeded media rounds per torture run (each re-runs the whole
    #: workload with an independent injection stream)
    media_rounds: int = 4
    #: test at most this many crash points (seeded sample); None = all
    crash_points: Optional[int] = None
    #: attach a live event log to every store (fault/recovery events)
    events_enabled: bool = False
    #: orders in the bulk-loaded base document
    base_orders: int = 2
    items_per_order: int = 2

    def store_config(self) -> StoreConfig:
        return StoreConfig(
            policy=self.policy,
            page_size=self.page_size,
            buffer_pool_capacity=self.pool_capacity,
            max_range_tokens=self.max_range_tokens,
            events_enabled=self.events_enabled,
        )

    @property
    def media_faults_enabled(self) -> bool:
        return self.bitrot or self.lost_writes or self.misdirected_writes

    def fault_config(
        self, crash_at: Optional[int], media_seed: Optional[int] = None
    ) -> FaultConfig:
        return FaultConfig(
            seed=self.seed if media_seed is None else media_seed,
            crash_at=crash_at,
            torn_page_writes=self.torn_page_writes,
            torn_wal_appends=self.torn_wal_appends,
            reorder_sync=self.reorder_sync,
            bitrot=self.bitrot,
            lost_writes=self.lost_writes,
            misdirected_writes=self.misdirected_writes,
            media_fault_rate=self.media_fault_rate,
        )


# ===================================================================== workload ==


def generate_workload(config: TortureConfig) -> List[Op]:
    """A deterministic operation sequence for ``config.seed``.

    Valid targets are tracked with the :class:`ReferenceStore` oracle, so
    every generated op addresses a node that exists when it runs — the
    sequence replays identically on every crash run.
    """
    rng = random.Random(config.seed)
    model = ReferenceStore()
    ops: List[Op] = []

    def emit(kind: str, *args) -> None:
        ops.append((kind, args))

    base = purchase_orders_document(
        config.base_orders, config.items_per_order, seed=config.seed
    )
    emit("load_document", base)
    model.load_document(base)
    if config.workload == "insert":
        _generate_insert_ops(config, ops)
        return ops
    if config.workload != "mixed":
        raise ReproError(f"unknown torture workload {config.workload!r}")
    orders = purchase_order_stream(
        config.ops, config.items_per_order, seed=config.seed + 1,
        start_no=config.base_orders,
    )
    for index in range(1, config.ops + 1):
        if config.checkpoint_every and index % config.checkpoint_every == 0:
            emit("checkpoint")
            continue
        if config.compact_every and index % config.compact_every == 0:
            emit("compact")
            continue
        choice = rng.random()
        targets = model.sibling_target_ids()
        elements = model.element_ids()
        if not targets or choice < 0.15:
            fragment = next(orders)
            emit("load_document", fragment)
            model.load_document(fragment)
        elif choice < 0.45 and elements:
            node_id = rng.choice(elements)
            fragment = rng.choice(FRAGMENTS)
            emit("insert_into_last", node_id, fragment)
            model.insert_into_last(node_id, fragment)
        elif choice < 0.60:
            node_id = rng.choice(targets)
            fragment = rng.choice(FRAGMENTS)
            emit("insert_before", node_id, fragment)
            model.insert_before(node_id, fragment)
        elif choice < 0.75:
            node_id = rng.choice(targets)
            fragment = rng.choice(FRAGMENTS)
            emit("insert_after", node_id, fragment)
            model.insert_after(node_id, fragment)
        elif choice < 0.90:
            node_id = rng.choice(targets)
            fragment = rng.choice(FRAGMENTS)
            emit("replace_node", node_id, fragment)
            model.replace_node(node_id, fragment)
        else:
            node_id = rng.choice(targets)
            emit("delete_node", node_id)
            model.delete_node(node_id)
    return ops


def _generate_insert_ops(config: TortureConfig, ops: List[Op]) -> None:
    """The Table-5 insert workload: append order fragments to the root."""
    root_id = 1  # sequential ids: the bulk-loaded root element
    fragments = purchase_order_stream(
        config.ops, config.items_per_order, seed=config.seed + 1,
        start_no=config.base_orders,
    )
    for index in range(1, config.ops + 1):
        if config.checkpoint_every and index % config.checkpoint_every == 0:
            ops.append(("checkpoint", ()))
            continue
        if config.compact_every and index % config.compact_every == 0:
            ops.append(("compact", ()))
            continue
        ops.append(("insert_into_last", (root_id, next(fragments))))


def apply_op(store: XMLStore, op: Op):
    """Execute one workload op; returns the catalog for checkpoints."""
    kind, args = op
    if kind == "checkpoint":
        return store.checkpoint()
    if kind == "compact":
        return store.compact()
    return getattr(store, kind)(*args)


# ===================================================================== baseline ==


@dataclass
class WorkloadTrace:
    """What the oracle and counting runs learned about the workload."""

    ops: List[Op]
    #: ``snapshots[i]`` = serialized document after the first ``i`` ops
    snapshots: List[str]
    #: cumulative WAL appends after each op (``appends_after[i]`` = count
    #: once op ``i`` finished; non-decreasing)
    appends_after: List[int]
    #: total crash points the workload exposes
    total_points: int
    #: label of each crash point (``write:...``/``sync:...``/``wal:...``)
    point_labels: List[str]
    #: the counting run matched the oracle byte-for-byte and cost-for-cost
    passthrough_identical: bool
    oracle_simulated_seconds: float
    faulty_simulated_seconds: float


def _build_faulty_store(
    config: TortureConfig,
    crash_at: Optional[int],
    media_seed: Optional[int] = None,
) -> Tuple[XMLStore, FaultHarness]:
    store_config = config.store_config()
    harness = build_fault_harness(
        config.fault_config(crash_at, media_seed=media_seed),
        MemoryBlockDevice(block_size=store_config.page_size),
        cost_model=store_config.cost_model,
    )
    wal = WriteAheadLog()
    wal.fault_adapter = harness.wal_adapter
    store = XMLStore.open(store_config, device=harness.device, wal=wal)
    return store, harness


def run_baseline(config: TortureConfig, ops: Optional[List[Op]] = None) -> WorkloadTrace:
    """The oracle and counting runs (steps 1 and 2 of the module doc)."""
    ops = ops if ops is not None else generate_workload(config)
    # --- oracle: plain store, snapshot after every op
    oracle = XMLStore.open(config.store_config())
    snapshots = [oracle.read()]
    appends_after = []
    for op in ops:
        apply_op(oracle, op)
        snapshots.append(oracle.read())
        appends_after.append(oracle.wal.appends)
    # --- cost reference: the same run on a plain store with *no* reads
    # (the oracle's per-op snapshot reads shift its buffer traffic, so
    # its clock is not comparable to the counting run's)
    plain = XMLStore.open(config.store_config())
    for op in ops:
        apply_op(plain, op)
    plain_seconds = plain.simulated_seconds
    # --- counting: identical run under the (pass-through) fault layer;
    # no reads in the loop, so its I/O stream is exactly a crash run's
    faulty, harness = _build_faulty_store(config, crash_at=None)
    for op in ops:
        apply_op(faulty, op)
    # count points *before* the verification read below: reading can
    # evict dirty pages (more ticks), and crash runs never read
    total_points = harness.clock.ticks
    point_labels = list(harness.clock.points)
    faulty_seconds = faulty.simulated_seconds
    identical = (
        faulty_seconds == plain_seconds and faulty.read() == snapshots[-1]
    )
    return WorkloadTrace(
        ops=ops,
        snapshots=snapshots,
        appends_after=appends_after,
        total_points=total_points,
        point_labels=point_labels,
        passthrough_identical=identical,
        oracle_simulated_seconds=plain_seconds,
        faulty_simulated_seconds=faulty_seconds,
    )


# =================================================================== crash runs ==


@dataclass
class CrashPointResult:
    """Verdict for one crash point."""

    point: int
    label: str
    #: operations whose WAL records were fully durable at the crash
    durable_ops: int
    full_restore_ok: bool
    #: checkpoint recovery was applicable (durable image == catalog state)
    catalog_checked: bool
    catalog_ok: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.full_restore_ok and (self.catalog_ok or not self.catalog_checked)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "point": self.point,
            "label": self.label,
            "durable_ops": self.durable_ops,
            "ok": self.ok,
            "full_restore_ok": self.full_restore_ok,
            "catalog_checked": self.catalog_checked,
            "catalog_ok": self.catalog_ok,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def _verify_recovered(
    recovered: XMLStore, expected: str, path: str
) -> Optional[str]:
    """Integrity + oracle agreement + liveness; returns an error or None."""
    report = integrity_report(recovered)
    if not report.ok:
        failed = ", ".join(check.name for check in report.failed())
        first = report.failed()[0]
        return f"{path}: integrity check(s) failed [{failed}]: {first.error}"
    actual = recovered.read()
    if actual != expected:
        return (
            f"{path}: recovered document diverges from oracle "
            f"(expected {len(expected)} chars, got {len(actual)}): "
            f"expected {expected[:120]!r}... got {actual[:120]!r}..."
        )
    # the recovered store must stay usable
    recovered.load_document("<post-crash-probe/>")
    probe_report = integrity_report(recovered)
    if not probe_report.ok:
        failed = ", ".join(check.name for check in probe_report.failed())
        return f"{path}: store broke on first post-recovery write [{failed}]"
    return None


def run_crash_point(
    config: TortureConfig, point: int, trace: Optional[WorkloadTrace] = None
) -> CrashPointResult:
    """Replay the workload, crash at ``point``, recover and verify."""
    trace = trace if trace is not None else run_baseline(config)
    store, harness = _build_faulty_store(config, crash_at=point)
    last_catalog: Optional[bytes] = None
    sync_attempts_at_capture = -1
    crashed = False
    for op in trace.ops:
        try:
            result = apply_op(store, op)
        except SimulatedCrashError:
            crashed = True
            break
        if op[0] == "checkpoint":
            last_catalog = result
            sync_attempts_at_capture = harness.disk.sync_attempts
    label = harness.clock.crash_label or "(none)"
    if not crashed:
        raise StoreError(
            f"crash point {point} never fired ({harness.clock.ticks} points total)"
        )
    # the process is dead: only durable state survives
    harness.disk.crash()
    wal_bytes = store.wal.to_bytes()
    durable_frames = harness.wal_adapter.frames_completed
    durable_ops = sum(1 for count in trace.appends_after if count <= durable_frames)
    expected = trace.snapshots[durable_ops]
    # --- recovery path 1: full-log logical restore (always sound)
    error: Optional[str] = None
    try:
        recovered = XMLStore.recover(
            WriteAheadLog.from_bytes(wal_bytes), config=config.store_config()
        )
        error = _verify_recovered(recovered, expected, "full-restore")
    except ReproError as failure:
        error = f"full-restore: recovery raised {type(failure).__name__}: {failure}"
    full_restore_ok = error is None
    # --- recovery path 2: checkpoint catalog + WAL suffix (when sound)
    catalog_checked = False
    catalog_ok = True
    if (
        full_restore_ok
        and last_catalog is not None
        and harness.disk.sync_attempts == sync_attempts_at_capture
    ):
        catalog_checked = True
        try:
            from repro.storage.disk import InstrumentedDevice

            device = InstrumentedDevice(
                harness.disk, cost_model=config.store_config().cost_model
            )
            wal = WriteAheadLog.from_bytes(wal_bytes)
            reopened = XMLStore.from_catalog(
                device, last_catalog, config=config.store_config(), wal=wal
            )
            replay(reopened, wal)
            catalog_error = _verify_recovered(reopened, expected, "catalog-replay")
        except ReproError as failure:
            catalog_error = (
                f"catalog-replay: recovery raised {type(failure).__name__}: {failure}"
            )
        if catalog_error is not None:
            catalog_ok = False
            error = catalog_error
    return CrashPointResult(
        point=point,
        label=label,
        durable_ops=durable_ops,
        full_restore_ok=full_restore_ok,
        catalog_checked=catalog_checked,
        catalog_ok=catalog_ok,
        error=error,
    )


# ====================================================================== report ==


@dataclass
class TortureReport:
    """Outcome of a whole enumeration."""

    config: TortureConfig
    total_points: int
    tested_points: int
    results: List[CrashPointResult] = field(default_factory=list)
    passthrough_identical: bool = True

    @property
    def failures(self) -> List[CrashPointResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and self.passthrough_identical

    @property
    def catalog_checked_points(self) -> int:
        return sum(1 for result in self.results if result.catalog_checked)

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "ok": self.ok,
            "seed": self.config.seed,
            "workload": self.config.workload,
            "ops": self.config.ops,
            "fault_classes": {
                "torn_page_writes": self.config.torn_page_writes,
                "torn_wal_appends": self.config.torn_wal_appends,
                "reorder_sync": self.config.reorder_sync,
                "bitrot": self.config.bitrot,
                "lost_writes": self.config.lost_writes,
                "misdirected_writes": self.config.misdirected_writes,
            },
            "total_points": self.total_points,
            "tested_points": self.tested_points,
            "catalog_checked_points": self.catalog_checked_points,
            "passthrough_identical": self.passthrough_identical,
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def render(self) -> str:
        lines = [
            f"torture seed={self.config.seed} workload={self.config.workload} "
            f"ops={self.config.ops}",
            f"crash points: {self.total_points} total, {self.tested_points} tested, "
            f"{self.catalog_checked_points} also checked via catalog recovery",
            "pass-through: "
            + ("byte-identical" if self.passthrough_identical else "DIVERGED"),
        ]
        if self.failures:
            lines.append(f"{len(self.failures)} FAILING crash point(s):")
            for failure in self.failures:
                lines.append(
                    f"  point {failure.point} [{failure.label}] "
                    f"durable_ops={failure.durable_ops}: {failure.error}"
                )
            lines.append(
                f"reproduce with: TortureConfig(seed={self.config.seed}, "
                f"ops={self.config.ops}, workload={self.config.workload!r}) "
                f"+ run_crash_point(config, {self.failures[0].point})"
            )
        else:
            lines.append("all tested crash points recovered verify-clean")
        return "\n".join(lines)


# ==================================================================== media mode ==


@dataclass
class MediaRoundResult:
    """Verdict for one seeded media-fault round."""

    round: int
    media_seed: int
    #: faults injected / still on stable storage at the end of the round
    injected: int
    unhealed: int
    #: blocks the final scrub flagged
    scrub_bad: int
    #: ops fully applied before the workload finished or stopped
    applied_ops: int
    #: a ChecksumError stopped the workload early (detection, not failure)
    stopped_early: bool
    #: stale-but-valid images (lost writes, misdirected-write sources)
    #: disturbed the live run or overlapped the data chain: undetectable
    #: by checksum *by design*, so the in-place salvage leg is skipped
    #: and recovery is held to the full-log rebuild only
    stale_collateral: bool = False
    #: :func:`repro.core.repair.repair_store` outcome ("clean"/"salvage"),
    #: or None when the round stopped early and the salvage leg was skipped
    repair_mode: Optional[str] = None
    repair_degraded: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "round": self.round,
            "media_seed": self.media_seed,
            "ok": self.ok,
            "injected": self.injected,
            "unhealed": self.unhealed,
            "scrub_bad": self.scrub_bad,
            "applied_ops": self.applied_ops,
            "stopped_early": self.stopped_early,
            "stale_collateral": self.stale_collateral,
            "repair_mode": self.repair_mode,
            "repair_degraded": self.repair_degraded,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class MediaTortureReport:
    """Outcome of a whole media-fault torture run."""

    config: TortureConfig
    rounds: List[MediaRoundResult] = field(default_factory=list)
    passthrough_identical: bool = True

    @property
    def failures(self) -> List[MediaRoundResult]:
        return [result for result in self.rounds if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and self.passthrough_identical

    @property
    def tested_points(self) -> int:
        return len(self.rounds)

    @property
    def total_injected(self) -> int:
        return sum(result.injected for result in self.rounds)

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "ok": self.ok,
            "mode": "media",
            "seed": self.config.seed,
            "workload": self.config.workload,
            "ops": self.config.ops,
            "fault_classes": {
                "torn_page_writes": self.config.torn_page_writes,
                "torn_wal_appends": self.config.torn_wal_appends,
                "reorder_sync": self.config.reorder_sync,
                "bitrot": self.config.bitrot,
                "lost_writes": self.config.lost_writes,
                "misdirected_writes": self.config.misdirected_writes,
            },
            "media_fault_rate": self.config.media_fault_rate,
            "rounds": [result.to_dict() for result in self.rounds],
            "total_injected": self.total_injected,
            "passthrough_identical": self.passthrough_identical,
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def render(self) -> str:
        classes = [
            name
            for name, on in (
                ("bitrot", self.config.bitrot),
                ("lost_write", self.config.lost_writes),
                ("misdirect", self.config.misdirected_writes),
            )
            if on
        ]
        lines = [
            f"media torture seed={self.config.seed} "
            f"workload={self.config.workload} ops={self.config.ops} "
            f"classes={','.join(classes)} rate={self.config.media_fault_rate}",
            f"rounds: {len(self.rounds)} run, "
            f"{self.total_injected} fault(s) injected in total",
        ]
        for result in self.rounds:
            verdict = "ok" if result.ok else "FAILED"
            if result.stopped_early:
                outcome = "stopped early " + (
                    "(stale-write collateral)"
                    if result.stale_collateral
                    else "(detected)"
                )
            elif result.repair_mode is None and result.stale_collateral:
                outcome = "salvage skipped (stale-write collateral)"
            else:
                outcome = f"repair={result.repair_mode}" + (
                    " degraded" if result.repair_degraded else ""
                )
            lines.append(
                f"  round {result.round} [media_seed={result.media_seed}] "
                f"{verdict}: {result.injected} injected, "
                f"{result.unhealed} unhealed, {result.scrub_bad} scrub-flagged, "
                f"{outcome}"
            )
            if result.error is not None:
                lines.append(f"    {result.error}")
        lines.append(
            "no silent corruption reached a reader"
            if self.ok
            else f"{len(self.failures)} FAILING media round(s)"
        )
        return "\n".join(lines)


def _stale_write_injected(harness) -> bool:
    """True once any fault of this round left a *stale but checksum-valid*
    image: a lost write keeps the block's old image, and so does the
    intended block of a misdirected write.  A CRC authenticates content,
    not freshness, so such damage is undetectable by design — and once a
    stale page may have been served (even if later healed), the live
    store's divergence can outlast the fault.  The harness therefore
    exempts the round's collateral from the silent-failure verdicts and
    relies on the full-log rebuild (which never trusts the device)."""
    return any(
        fault.kind in ("lost_write", "misdirect")
        for fault in harness.disk.media_faults
    )


def _account_media_faults(store, harness, scrub_report) -> Optional[str]:
    """The ledger check: every unhealed fault must be detected, masked or
    unreachable (see the module docstring); returns an error or None."""
    from repro.core.repair import _reachable_index_blocks

    owned = set(store.layout.chain.blocks())
    owned.update(_reachable_index_blocks(store.range_index._tree))
    if store.full_index is not None:
        owned.update(_reachable_index_blocks(store.full_index._tree))
    dirty = set(store.pool.dirty_blocks())
    pending_free = set(store.pool.pending_free_blocks())
    flagged = set(scrub_report.bad_blocks())
    undetected: List[Tuple[str, int]] = []
    for fault in harness.disk.unhealed_media_faults():
        if fault.kind == "lost_write":
            # a lost write leaves a stale-but-valid image: checksums
            # cannot date a page, so detection is out of scope by design
            # and the content checks below account for it instead
            continue
        must_detect = set(fault.pending_blocks)
        if fault.kind == "misdirect":
            # the intended block kept its old (valid) image — same
            # stale-valid exemption as a lost write; only the block the
            # write actually hit carries a checksum-visible wound
            must_detect.discard(fault.block_no)
        for block_no in sorted(must_detect):
            if block_no not in owned:
                continue  # unreachable: no live structure references it
            if block_no in dirty or block_no in pending_free:
                continue  # masked: the device image is not authoritative
            if block_no in flagged or store.pool.is_quarantined(block_no):
                continue  # detected
            undetected.append((fault.kind, block_no))
    if undetected:
        detail = ", ".join(f"{kind}@{block}" for kind, block in undetected)
        return f"undetected media damage on reachable block(s): {detail}"
    return None


def run_media_round(
    config: TortureConfig, round_index: int, trace: WorkloadTrace
) -> MediaRoundResult:
    """One seeded media round: workload under injection, then verify."""
    from repro.core.repair import repair_store
    from repro.storage.scrub import scrub_store

    media_seed = config.seed + 7919 * (round_index + 1)
    store, harness = _build_faulty_store(config, None, media_seed=media_seed)
    applied = 0
    logged_extra = 0
    stopped = False
    result = MediaRoundResult(
        round=round_index, media_seed=media_seed,
        injected=0, unhealed=0, scrub_bad=0,
        applied_ops=0, stopped_early=False,
    )
    for op in trace.ops:
        appends_before = store.wal.appends
        try:
            apply_op(store, op)
        except ChecksumError:
            # detection: the corruption announced itself instead of
            # serving a wrong answer.  A mutating op logs its WAL record
            # before touching pages, so the record may be durable even
            # though the op died half-way — the full-log rebuild then
            # applies it completely (ops are generated valid in sequence).
            stopped = True
            if op[0] not in ("checkpoint", "compact"):
                logged_extra = int(store.wal.appends > appends_before)
            break
        except ReproError as failure:
            if _stale_write_injected(harness):
                # a stale-but-valid page served old state; the live store
                # diverged and the op tripped over it.  Not a *silent*
                # failure (the op errored) and not checksum-detectable by
                # design — stop here and hold recovery to the WAL rebuild.
                stopped = True
                result.stale_collateral = True
                if op[0] not in ("checkpoint", "compact"):
                    logged_extra = int(store.wal.appends > appends_before)
                break
            result.error = (
                f"op {applied} ({op[0]}) failed without detection: "
                f"{type(failure).__name__}: {failure}"
            )
            break
        except Exception:  # pragma: no cover - defensive
            # a stale page can derail internal invariants in arbitrary
            # ways; anything else is a genuine bug and must propagate
            if not _stale_write_injected(harness):
                raise
            stopped = True
            result.stale_collateral = True
            if op[0] not in ("checkpoint", "compact"):
                logged_extra = int(store.wal.appends > appends_before)
            break
        applied += 1
    result.applied_ops = applied
    result.stopped_early = stopped
    salvage_sound = result.error is None and not stopped
    if salvage_sound:
        # flush everything (the final barrier is fault-exposed too), so
        # the device image is authoritative for the scrub and repair legs
        try:
            store.checkpoint()
        except ChecksumError:
            # detection during the flush path: treat like an early stop
            result.stopped_early = stopped = True
            salvage_sound = False
        except ReproError as failure:
            if _stale_write_injected(harness):
                result.stale_collateral = True
                salvage_sound = False
            else:
                result.error = (
                    f"final checkpoint failed: "
                    f"{type(failure).__name__}: {failure}"
                )
                salvage_sound = False
    harness.disk.disable_media_faults()
    # drain the volatile write cache (injection is frozen, so this is a
    # clean writeback): damage already overwritten in the cache heals,
    # and the backend becomes the authoritative image the scrub and
    # accounting legs inspect
    harness.disk.sync()
    result.injected = len(harness.disk.media_faults)
    result.unhealed = len(harness.disk.unhealed_media_faults())
    # --- leg 1: full-log rebuild (always sound — trusts only the WAL)
    expected = trace.snapshots[applied + logged_extra]
    wal_bytes = store.wal.to_bytes()
    if result.error is None:
        try:
            restored = XMLStore.recover(
                WriteAheadLog.from_bytes(wal_bytes), config=config.store_config()
            )
            result.error = _verify_recovered(restored, expected, "wal-rebuild")
        except ReproError as failure:
            result.error = (
                f"wal-rebuild: recovery raised {type(failure).__name__}: {failure}"
            )
    # --- leg 2: ledger accounting against a full scrub of the live store
    if result.error is None:
        scrub = scrub_store(store)
        result.scrub_bad = len(scrub.bad_blocks())
        result.error = _account_media_faults(store, harness, scrub)
        # --- leg 3: in-place repair.  Only when the workload completed (a
        # mid-op stop leaves in-memory state unfit to checkpoint from) AND
        # no stale-valid image ever existed: a silently-served stale page
        # can poison the in-memory metadata that salvage rebuilds from, so
        # stale rounds are held to the full-log rebuild (leg 1) only.
        stale = _stale_write_injected(harness)
        result.stale_collateral = result.stale_collateral or stale
        if result.error is None and salvage_sound and not stale:
            try:
                repair = repair_store(store, scrub_report=scrub)
            except ReproError as failure:
                result.error = (
                    f"repair raised {type(failure).__name__}: {failure}"
                )
            else:
                result.repair_mode = repair.mode
                result.repair_degraded = repair.degraded
                if not repair.integrity_ok:
                    result.error = "repair left integrity checks failing"
                elif not repair.degraded:
                    # every surviving byte is authentic, so a clean repair
                    # must restore the oracle document exactly — and stay
                    # usable
                    result.error = _verify_recovered(
                        store, trace.snapshots[-1], "post-repair"
                    )
                else:
                    # data was genuinely lost (and declared): the repaired
                    # store must still be consistent and accept new writes
                    # — degraded, never wrong
                    store.load_document("<post-repair-probe/>")
                    probe = integrity_report(store)
                    if not probe.ok:
                        failed = ", ".join(
                            check.name for check in probe.failed()
                        )
                        result.error = (
                            f"repaired store broke on first write "
                            f"[{failed}]"
                        )
    return result


def run_media_torture(config: Optional[TortureConfig] = None) -> MediaTortureReport:
    """Seeded media-fault rounds over one workload (module doc, media mode)."""
    config = config if config is not None else TortureConfig(bitrot=True)
    if not config.media_faults_enabled:
        raise StoreError(
            "run_media_torture needs at least one media fault class enabled"
        )
    # the oracle/counting baseline runs media-free: its snapshots are the
    # ground truth every damaged round is verified against
    trace = run_baseline(
        replace(config, bitrot=False, lost_writes=False, misdirected_writes=False)
    )
    report = MediaTortureReport(
        config=config, passthrough_identical=trace.passthrough_identical
    )
    for round_index in range(config.media_rounds):
        result = run_media_round(config, round_index, trace)
        report.rounds.append(result)
        if not result.ok:
            _log.warning("media round %d FAILED: %s", round_index, result.error)
    return report


def select_points(total: int, cap: Optional[int], seed: int) -> List[int]:
    """Which crash points to test: all, or a seeded sample of ``cap``."""
    if cap is None or cap >= total:
        return list(range(total))
    rng = random.Random(seed ^ 0x5EED)
    return sorted(rng.sample(range(total), cap))


def run_torture(config: Optional[TortureConfig] = None):
    """Enumerate crash points for ``config`` and verify recovery at each.

    When any media fault class is enabled the run is a silent-corruption
    hunt instead: dispatches to :func:`run_media_torture` and returns its
    :class:`MediaTortureReport` (same ``ok``/``failures``/``to_dict``/
    ``render`` surface as :class:`TortureReport`).
    """
    config = config if config is not None else TortureConfig()
    if config.media_faults_enabled:
        return run_media_torture(config)
    trace = run_baseline(config)
    points = select_points(trace.total_points, config.crash_points, config.seed)
    _log.info(
        "torture: %d crash points (%d tested), seed=%d",
        trace.total_points, len(points), config.seed,
    )
    report = TortureReport(
        config=config,
        total_points=trace.total_points,
        tested_points=len(points),
        passthrough_identical=trace.passthrough_identical,
    )
    for point in points:
        result = run_crash_point(config, point, trace)
        report.results.append(result)
        if not result.ok:
            _log.warning("crash point %d FAILED: %s", point, result.error)
    return report


def shrink_failing(config: TortureConfig, rounds: int = 6) -> TortureConfig:
    """Minimize ``config.ops`` while the torture run still fails.

    Greedy halving: each round tries a workload half the size; the
    smallest failing size wins.  Returns the minimized config (possibly
    the original if nothing smaller fails).
    """
    best = config
    candidate_ops = config.ops
    for _ in range(rounds):
        candidate_ops //= 2
        if candidate_ops < 1:
            break
        from dataclasses import replace

        candidate = replace(best, ops=candidate_ops)
        if not run_torture(candidate).ok:
            best = candidate
    return best
