"""Deterministic interleaving harness: serializability as a property.

The server's cooperative scheduler takes an explicit *schedule script*
— a list of integers, each choosing (mod the runnable count) which
session advances next — so every interleaving of N concurrent sessions
is a first-class, replayable value.  This module generates seeded
workloads of 2–4 sessions over a shared base document, samples seeded
schedule scripts, runs each through a fresh store + server, and checks
the fundamental property strict 2PL promises:

    every committed outcome equals the outcome of SOME serial order of
    the committed transactions,

with the committed outcome checked as document *content* (node ids are
allocation-order artifacts; the paper's contract is about content and
id stability, not id equality across interleavings).  Snapshot readers
are checked too: every full-document read a read-only session returned
must equal a commit-consistent state — the base document, or the state
after some serial prefix of committed writers.

Failures shrink like :mod:`repro.testing.torture` workloads do: the
script is greedily minimized (chunk deletion, then entry zeroing) while
the run still violates serializability, and the report carries the
shrunk script so a CI failure is a one-line reproducer.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import NodeNotFoundError, ReproError, StoreError
from repro.server.sessions import SessionOp, XMLServer
from repro.testing.reference import ReferenceStore

MIXES = ("disjoint", "hotspot", "mixed")


@dataclass(frozen=True)
class ScheduleConfig:
    """One harness invocation: a workload mix and a batch of schedules."""

    seed: int = 0
    sessions: int = 3
    ops_per_session: int = 3
    mix: str = "mixed"
    schedules: int = 20
    script_length: int = 96
    group_commit_max_batch: int = 4

    def __post_init__(self) -> None:
        if not 2 <= self.sessions <= 4:
            raise ReproError("sessions must be in [2, 4] (serial orders are enumerated)")
        if self.mix not in MIXES:
            raise ReproError(f"unknown mix {self.mix!r}; use one of {MIXES}")
        if self.ops_per_session < 1 or self.schedules < 1 or self.script_length < 1:
            raise ReproError("ops_per_session, schedules, script_length must be >= 1")


@dataclass(frozen=True)
class SessionProgram:
    """One session's ops, plus whether it runs as a snapshot reader."""

    ops: Tuple[SessionOp, ...]
    read_only: bool = False


# ---------------------------------------------------------------------------
# Workload generation
# ---------------------------------------------------------------------------

def _base_document(sessions: int) -> str:
    parts = "".join(
        f"<s{i}><item>seed{i}</item><item>base{i}</item></s{i}>"
        for i in range(1, sessions + 1)
    )
    return f"<lib>{parts}</lib>"


def generate_workload(config: ScheduleConfig) -> Tuple[str, List[SessionProgram]]:
    """Seeded programs over base-document ids only.

    Targets are restricted to ids assigned by the base load — which both
    the live store and the reference model assign identically (dense,
    document order) — so a program means the same thing under every
    interleaving and every serial replay order.
    """
    rng = random.Random(config.seed)
    base = _base_document(config.sessions)
    model = ReferenceStore()
    model.load_document(base)
    element_ids = model.element_ids()
    root_id = element_ids[0]
    # subtree roots s1..sN in document order, one per writer
    subtree_roots = [
        node_id
        for node_id in element_ids
        if model.read(node_id).startswith("<s")
    ]

    def writer(index: int, targets: Sequence[int]) -> SessionProgram:
        ops: List[SessionOp] = []
        for op_index in range(config.ops_per_session):
            target = targets[rng.randrange(len(targets))]
            kind = rng.randrange(3)
            text = f"w{index}op{op_index}"
            if kind == 0:
                ops.append(SessionOp("replace_content", target, text))
            elif kind == 1:
                ops.append(SessionOp("insert_into_last", target, f"<x>{text}</x>"))
            else:
                ops.append(SessionOp("read", target))
        return SessionProgram(tuple(ops))

    programs: List[SessionProgram] = []
    if config.mix == "disjoint":
        for index in range(config.sessions):
            programs.append(writer(index, [subtree_roots[index]]))
    elif config.mix == "hotspot":
        hot = [root_id, subtree_roots[0]]
        for index in range(config.sessions):
            programs.append(writer(index, hot))
    else:  # mixed: disjoint writers + one hotspot writer + one reader
        for index in range(config.sessions - 1):
            targets = [subtree_roots[index]]
            if index == 0:
                targets.append(root_id)
            programs.append(writer(index, targets))
        reads = tuple(
            SessionOp("read") for _ in range(max(2, config.ops_per_session))
        )
        programs.append(SessionProgram(reads, read_only=True))
    return base, programs


# ---------------------------------------------------------------------------
# One schedule, end to end
# ---------------------------------------------------------------------------

@dataclass
class ScheduleOutcome:
    """What one scripted run produced and whether it was serializable."""

    script: Tuple[int, ...]
    outcomes: Dict[int, str]
    observed: str
    serializable: bool
    reason: str = ""
    matching_order: Optional[Tuple[int, ...]] = None
    reader_views: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.serializable


def _store_config(config: ScheduleConfig) -> StoreConfig:
    return StoreConfig(
        server_group_commit_max_batch=config.group_commit_max_batch,
        server_max_sessions=config.sessions,
    )


def run_schedule(
    base: str,
    programs: Sequence[SessionProgram],
    script: Sequence[int],
    config: ScheduleConfig,
) -> ScheduleOutcome:
    """Run one scripted interleaving and check serializability."""
    store = XMLStore.open(config=_store_config(config))
    store.load_document(base)
    server = XMLServer(store)
    sessions = [
        server.submit(list(program.ops), read_only=program.read_only)
        for program in programs
    ]
    server.run(script=list(script))
    outcomes = {s.session_id: s.outcome or "unfinished" for s in sessions}
    observed = store.read()
    committed_writers = [
        (index, program)
        for index, (session, program) in enumerate(zip(sessions, programs))
        if not program.read_only and session.outcome == "committed"
    ]
    serializable, reason, matching = _check_serializable(
        base, committed_writers, observed
    )
    reader_views: List[str] = []
    if serializable:
        for session, program in zip(sessions, programs):
            if not program.read_only:
                continue
            views = [r for r in session.results if isinstance(r, str)]
            reader_views.extend(views)
            bad = _check_reader_views(base, committed_writers, views)
            if bad is not None:
                serializable = False
                reason = (
                    f"reader view is not commit-consistent: {bad[:120]!r}"
                )
    return ScheduleOutcome(
        script=tuple(script),
        outcomes=outcomes,
        observed=observed,
        serializable=serializable,
        reason=reason,
        matching_order=matching,
        reader_views=reader_views,
    )


def _apply_serially(
    base: str, order: Sequence[Tuple[int, SessionProgram]]
) -> Optional[str]:
    """Replay committed programs in ``order`` on a fresh reference model;
    None when the order is infeasible (an op's target does not exist)."""
    model = ReferenceStore()
    model.load_document(base)
    try:
        for _, program in order:
            for op in program.ops:
                if op.op == "read":
                    continue
                getattr(model, op.op)(op.node_id, op.xml)
    except (NodeNotFoundError, StoreError):
        return None
    return model.read()


def _check_serializable(
    base: str,
    committed: Sequence[Tuple[int, SessionProgram]],
    observed: str,
) -> Tuple[bool, str, Optional[Tuple[int, ...]]]:
    for order in itertools.permutations(committed):
        if _apply_serially(base, order) == observed:
            return True, "", tuple(index for index, _ in order)
    return (
        False,
        f"no serial order of {len(committed)} committed transaction(s) "
        f"produces the observed content",
        None,
    )


def _commit_consistent_states(
    base: str, committed: Sequence[Tuple[int, SessionProgram]]
) -> Set[str]:
    """Every content reachable by some serial prefix of committed writers
    (a snapshot must have pinned one of these)."""
    states: Set[str] = set()
    for order in itertools.permutations(committed):
        for length in range(len(order) + 1):
            state = _apply_serially(base, order[:length])
            if state is not None:
                states.add(state)
    return states


def _check_reader_views(
    base: str,
    committed: Sequence[Tuple[int, SessionProgram]],
    views: Sequence[str],
) -> Optional[str]:
    if not views:
        return None
    states = _commit_consistent_states(base, committed)
    for view in views:
        if view not in states:
            return view
    return None


# ---------------------------------------------------------------------------
# Batch runs, shrinking, reporting
# ---------------------------------------------------------------------------

@dataclass
class ScheduleFailure:
    index: int
    script: Tuple[int, ...]
    shrunk_script: Tuple[int, ...]
    reason: str
    outcomes: Dict[int, str]
    observed: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "script": list(self.script),
            "shrunk_script": list(self.shrunk_script),
            "reason": self.reason,
            "outcomes": {str(k): v for k, v in self.outcomes.items()},
            "observed": self.observed,
        }


@dataclass
class ScheduleReport:
    config: ScheduleConfig
    schedules_run: int = 0
    serializable: int = 0
    committed_sessions: int = 0
    aborted_sessions: int = 0
    deadlock_sessions: int = 0
    failures: List[ScheduleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {
                "schema": "repro.testing.schedules/v1",
                "seed": self.config.seed,
                "sessions": self.config.sessions,
                "ops_per_session": self.config.ops_per_session,
                "mix": self.config.mix,
                "schedules_run": self.schedules_run,
                "serializable": self.serializable,
                "committed_sessions": self.committed_sessions,
                "aborted_sessions": self.aborted_sessions,
                "deadlock_sessions": self.deadlock_sessions,
                "ok": self.ok,
                "failures": [failure.to_dict() for failure in self.failures],
            }
        )

    def render(self) -> str:
        lines = [
            f"interleavings: mix={self.config.mix} sessions={self.config.sessions} "
            f"seed={self.config.seed}",
            f"  schedules run      {self.schedules_run}",
            f"  serializable       {self.serializable}",
            f"  sessions committed {self.committed_sessions}",
            f"  sessions aborted   {self.aborted_sessions} "
            f"(deadlock victims {self.deadlock_sessions})",
            f"  verdict            {'OK' if self.ok else 'FAIL'}",
        ]
        for failure in self.failures:
            lines.append(
                f"  FAIL schedule #{failure.index}: {failure.reason}"
            )
            lines.append(f"    script  {list(failure.script)}")
            lines.append(f"    shrunk  {list(failure.shrunk_script)}")
        return "\n".join(lines)


def _random_script(rng: random.Random, config: ScheduleConfig) -> List[int]:
    return [rng.randrange(config.sessions * 4) for _ in range(config.script_length)]


def shrink_script(
    base: str,
    programs: Sequence[SessionProgram],
    script: Sequence[int],
    config: ScheduleConfig,
    rounds: int = 8,
) -> Tuple[int, ...]:
    """Greedy minimization: drop chunks, then zero entries, while the
    schedule still fails the serializability check."""

    def fails(candidate: Sequence[int]) -> bool:
        return not run_schedule(base, programs, candidate, config).ok

    best = list(script)
    if not fails(best):
        return tuple(best)
    chunk = max(1, len(best) // 2)
    for _ in range(rounds):
        progressed = False
        start = 0
        while start < len(best):
            candidate = best[:start] + best[start + chunk :]
            if candidate and fails(candidate):
                best = candidate
                progressed = True
            else:
                start += chunk
        if chunk == 1 and not progressed:
            break
        chunk = max(1, chunk // 2)
    for index in range(len(best)):
        if best[index] == 0:
            continue
        candidate = list(best)
        candidate[index] = 0
        if fails(candidate):
            best = candidate
    return tuple(best)


def run_schedules(config: ScheduleConfig) -> ScheduleReport:
    """Sample ``config.schedules`` seeded scripts and check every one."""
    base, programs = generate_workload(config)
    rng = random.Random(config.seed ^ 0x5EED)
    report = ScheduleReport(config=config)
    for index in range(config.schedules):
        script = _random_script(rng, config)
        outcome = run_schedule(base, programs, script, config)
        report.schedules_run += 1
        for status in outcome.outcomes.values():
            if status == "committed":
                report.committed_sessions += 1
            else:
                report.aborted_sessions += 1
                if status == "deadlock":
                    report.deadlock_sessions += 1
        if outcome.ok:
            report.serializable += 1
        else:
            shrunk = shrink_script(base, programs, script, config)
            report.failures.append(
                ScheduleFailure(
                    index=index,
                    script=tuple(script),
                    shrunk_script=shrunk,
                    reason=outcome.reason,
                    outcomes=outcome.outcomes,
                    observed=outcome.observed,
                )
            )
    return report
