"""Replication torture: every fault class, every crash point, one verdict.

The harness answers the replication analogue of the crash-torture
question: *is there any channel fault, apply-time crash, or divergent
write after which the replica silently disagrees with the primary?*
Five legs, all derived from one seed:

1. **Oracle** — a deterministic primary workload (reusing the
   crash-torture generator) plus redo-buffered transactions, so the
   change stream carries both per-operation frames and ``TXN_COMMIT``
   frames.  The primary's serialized document and state digest are the
   ground truth every other leg is verified against.
2. **Byte-determinism gate** — two catch-up runs with the same seed
   must produce identical stream bytes, an identical replica document,
   and an identical lag-trace JSON (CI diffs all three).
3. **Fault matrix** — for each channel fault class (and all at once) a
   fresh replica catches up through a seeded lossy channel: it either
   converges digest-verified, or raises the typed retry-exhaustion
   error and then *resumes cleanly* from its durable cursor — never a
   silent divergence.
4. **Crash matrix** — the converged replica's WAL image is truncated
   at every frame boundary and mid-frame; recovery must rebuild
   exactly the durable apply prefix (torn tails discarded by the CRC
   scan), and a resumed catch-up through each enabled fault class must
   converge byte-identically.
5. **Divergence drill** — a write *around* the stream, directly on the
   replica, must be caught by the digest check: typed error when
   resync is disabled, detected-and-healed when it is not.

Every decision derives from ``ReplicationTortureConfig.seed``, so a
failure report is a replayable recipe.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import ReplicaDivergenceError, ReplicationTimeoutError, StoreError
from repro.log import get_logger
from repro.replication.changestream import ChangeStream, encode_batch
from repro.replication.channel import (
    CHANNEL_FAULT_NAMES,
    ChannelFaultConfig,
    ReplicationChannel,
    RetryPolicy,
)
from repro.replication.digest import state_digest
from repro.replication.replica import Replica
from repro.replication.service import catch_up
from repro.storage.wal import _FRAME, RecordType, WriteAheadLog
from repro.testing.torture import TortureConfig, apply_op, generate_workload

_log = get_logger("testing.repltorture")


@dataclass
class ReplicationTortureConfig:
    """Everything that determines a replication torture run, seed first."""

    seed: int = 0
    #: primary workload operations (crash-torture generator)
    ops: int = 10
    workload: str = "mixed"
    #: redo-buffered transactions appended after the workload, so the
    #: stream carries TXN_COMMIT frames with id-cursor pinning
    txns: int = 2
    #: catch-up fetch size (small: many fetches = many fault chances)
    batch_size: int = 4
    fault_rate: float = 0.6
    max_faults: int = 12
    max_attempts: int = 6
    #: fault-matrix classes (leg 3)
    fault_classes: Tuple[str, ...] = tuple(CHANNEL_FAULT_NAMES) + ("all",)
    #: channel behavior during crash-matrix resume (leg 4)
    crash_fault_classes: Tuple[str, ...] = ("none",) + tuple(CHANNEL_FAULT_NAMES)
    #: test at most this many truncation points (seeded sample); None = all
    crash_points: Optional[int] = None

    def store_config(self) -> StoreConfig:
        return StoreConfig(page_size=512, buffer_pool_capacity=8)

    def torture_config(self) -> TortureConfig:
        # no compaction (pure workload stream) and periodic checkpoints,
        # so the stream's CHECKPOINT-skipping is always exercised
        return TortureConfig(
            seed=self.seed,
            ops=self.ops,
            workload=self.workload,
            checkpoint_every=4,
            compact_every=None,
        )


# ====================================================================== oracle ==


def build_primary(config: ReplicationTortureConfig) -> XMLStore:
    """The oracle: a deterministic primary with ops + transactions."""
    store = XMLStore.open(config.store_config())
    for op in generate_workload(config.torture_config()):
        apply_op(store, op)
    if config.txns:
        from repro.concurrency.transactions import TransactionManager

        anchor = store.load_document("<txns/>")
        manager = TransactionManager(store, redo_buffering=True)
        for index in range(config.txns):
            txn = manager.begin()
            txn.insert_into_last(anchor, f"<t>{index}</t>")
            txn.commit()
    return store


def _fresh_replica(config: ReplicationTortureConfig, name: str) -> Replica:
    return Replica(XMLStore.open(config.store_config()), name=name)


def _channel(
    config: ReplicationTortureConfig,
    image: bytes,
    classes: str,
    seed: int,
) -> ReplicationChannel:
    stream = ChangeStream(WriteAheadLog.from_bytes(image))
    faults = ChannelFaultConfig.from_classes(
        classes,
        seed=seed,
        fault_rate=config.fault_rate,
        max_faults=config.max_faults,
    )
    return ReplicationChannel(stream, faults)


def _verify_converged(
    replica: Replica, primary: XMLStore, where: str
) -> Optional[str]:
    if state_digest(replica.store) != state_digest(primary):
        return f"{where}: digests disagree after convergence"
    actual = replica.store.read()
    expected = primary.read()
    if actual != expected:
        return (
            f"{where}: replica document diverges from primary "
            f"(expected {len(expected)} chars, got {len(actual)})"
        )
    return None


# ================================================================= fault matrix ==


@dataclass
class FaultClassResult:
    """Verdict for one channel fault class (leg 3)."""

    classes: str
    converged: bool
    timed_out: bool
    resumed: bool
    retries: int
    faults_injected: int
    applied: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "classes": self.classes,
            "ok": self.ok,
            "converged": self.converged,
            "timed_out": self.timed_out,
            "resumed": self.resumed,
            "retries": self.retries,
            "faults_injected": self.faults_injected,
            "applied": self.applied,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def run_fault_class(
    config: ReplicationTortureConfig,
    classes: str,
    primary: XMLStore,
    image: bytes,
) -> FaultClassResult:
    """One lossy catch-up: converge, or typed error + clean resume."""
    replica = _fresh_replica(config, f"fault-{classes}")
    channel = _channel(config, image, classes, seed=config.seed)
    retry = RetryPolicy(max_attempts=config.max_attempts)
    timed_out = resumed = False
    try:
        report = catch_up(
            channel,
            replica,
            primary_store=primary,
            batch_size=config.batch_size,
            retry=retry,
        )
    except ReplicationTimeoutError as exc:
        # the typed-error arm: the budget ran out, the checkpointed
        # cursor survives, and an honest channel must finish the job
        timed_out = True
        report = exc.report
        honest = _channel(config, image, "none", seed=config.seed)
        catch_up(
            honest,
            replica,
            primary_store=primary,
            batch_size=config.batch_size,
            retry=RetryPolicy(max_attempts=config.max_attempts),
        )
        resumed = True
    error = _verify_converged(replica, primary, f"fault-matrix[{classes}]")
    return FaultClassResult(
        classes=classes,
        converged=not timed_out,
        timed_out=timed_out,
        resumed=resumed,
        retries=report.retries,
        faults_injected=report.faults_injected,
        applied=report.applied,
        error=error,
    )


# ================================================================= crash matrix ==


@dataclass
class CrashPointResult:
    """Verdict for one replica-WAL truncation point (leg 4)."""

    point: int
    offset: int
    #: "boundary" = clean frame edge; "torn" = mid-frame cut
    kind: str
    classes: str
    expected_cursor: int
    recovered_cursor: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "point": self.point,
            "offset": self.offset,
            "kind": self.kind,
            "classes": self.classes,
            "ok": self.ok,
            "expected_cursor": self.expected_cursor,
            "recovered_cursor": self.recovered_cursor,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def frame_layout(image: bytes) -> List[Tuple[int, int]]:
    """``(offset, record_type)`` of each complete frame in ``image``."""
    layout: List[Tuple[int, int]] = []
    offset = 0
    while offset + _FRAME.size <= len(image):
        _, length, record_type, _ = _FRAME.unpack_from(image, offset)
        end = offset + _FRAME.size + length
        if end > len(image):
            break
        layout.append((offset, record_type))
        offset = end
    return layout


def truncation_points(image: bytes) -> List[Tuple[int, str, int]]:
    """``(offset, kind, durable_changes)`` for every frame boundary and
    one mid-frame cut per frame — the crash-point enumeration."""
    layout = frame_layout(image)
    edges = [offset for offset, _ in layout] + [len(image)]
    points: List[Tuple[int, str, int]] = []
    durable = 0
    for index, (start, record_type) in enumerate(layout):
        points.append((start, "boundary", durable))
        end = edges[index + 1]
        middle = start + (end - start) // 2
        if start < middle < end:
            # a torn frame: the CRC scan must discard it wholesale
            points.append((middle, "torn", durable))
        if record_type != RecordType.CHECKPOINT:
            durable += 1
    points.append((len(image), "boundary", durable))
    return points


def run_crash_point(
    config: ReplicationTortureConfig,
    primary: XMLStore,
    primary_image: bytes,
    replica_image: bytes,
    offset: int,
    kind: str,
    expected_cursor: int,
    classes: str,
    point: int,
) -> CrashPointResult:
    """Truncate the replica's WAL at ``offset``, recover, resume, verify."""
    result = CrashPointResult(
        point=point,
        offset=offset,
        kind=kind,
        classes=classes,
        expected_cursor=expected_cursor,
        recovered_cursor=-1,
    )
    replica = Replica.recover_from_image(
        replica_image[:offset],
        config=config.store_config(),
        name=f"crash-{point}",
    )
    result.recovered_cursor = replica.cursor
    if replica.cursor != expected_cursor:
        result.error = (
            f"recovery rebuilt cursor {replica.cursor}, expected the "
            f"durable prefix {expected_cursor}"
        )
        return result
    channel = _channel(
        config, primary_image, classes, seed=config.seed ^ (0x9E3779B9 + point)
    )
    try:
        catch_up(
            channel,
            replica,
            primary_store=primary,
            batch_size=config.batch_size,
            retry=RetryPolicy(max_attempts=config.max_attempts),
        )
    except ReplicationTimeoutError:
        honest = _channel(config, primary_image, "none", seed=config.seed)
        catch_up(
            honest,
            replica,
            primary_store=primary,
            batch_size=config.batch_size,
            retry=RetryPolicy(max_attempts=config.max_attempts),
        )
    result.error = _verify_converged(
        replica, primary, f"crash-matrix[{point}@{offset}:{kind}:{classes}]"
    )
    return result


# ====================================================================== report ==


@dataclass
class ReplicationTortureReport:
    """Outcome of a whole replication torture run."""

    config: ReplicationTortureConfig
    stream_length: int = 0
    byte_deterministic: bool = True
    fault_results: List[FaultClassResult] = field(default_factory=list)
    crash_results: List[CrashPointResult] = field(default_factory=list)
    crash_points_total: int = 0
    divergence_typed: bool = False
    divergence_healed: bool = False
    divergence_error: Optional[str] = None

    @property
    def failures(self) -> List[object]:
        failing: List[object] = [r for r in self.fault_results if not r.ok]
        failing.extend(r for r in self.crash_results if not r.ok)
        return failing

    @property
    def ok(self) -> bool:
        return (
            not self.failures
            and self.byte_deterministic
            and self.divergence_typed
            and self.divergence_healed
            and self.divergence_error is None
        )

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {
                "ok": self.ok,
                "seed": self.config.seed,
                "ops": self.config.ops,
                "txns": self.config.txns,
                "workload": self.config.workload,
                "stream_length": self.stream_length,
                "byte_deterministic": self.byte_deterministic,
                "fault_classes": [r.to_dict() for r in self.fault_results],
                "crash_points_total": self.crash_points_total,
                "crash_points_tested": len(self.crash_results),
                "crash_failures": [
                    r.to_dict() for r in self.crash_results if not r.ok
                ],
                "divergence": {
                    "typed": self.divergence_typed,
                    "healed": self.divergence_healed,
                    "error": self.divergence_error,
                },
            }
        )

    def render(self) -> str:
        lines = [
            f"replication torture seed={self.config.seed} "
            f"ops={self.config.ops} txns={self.config.txns} "
            f"stream={self.stream_length} change(s)",
            "byte determinism: "
            + ("identical" if self.byte_deterministic else "DIVERGED"),
        ]
        for result in self.fault_results:
            verdict = "ok" if result.ok else "FAILED"
            outcome = (
                "converged"
                if result.converged
                else "timed out (typed), resumed clean"
            )
            lines.append(
                f"  [{verdict}] channel={result.classes}: {outcome}, "
                f"{result.faults_injected} fault(s), {result.retries} "
                f"retrie(s), {result.applied} applied"
            )
            if result.error:
                lines.append(f"    {result.error}")
        crash_failed = [r for r in self.crash_results if not r.ok]
        lines.append(
            f"crash matrix: {len(self.crash_results)} of "
            f"{self.crash_points_total} point(s) tested, "
            f"{len(crash_failed)} failing"
        )
        for result in crash_failed:
            lines.append(
                f"  point {result.point} offset={result.offset} "
                f"[{result.kind}, channel={result.classes}]: {result.error}"
            )
        lines.append(
            "divergence drill: "
            + (
                "typed when resync disabled, healed by auto-resync"
                if self.divergence_typed and self.divergence_healed
                else f"FAILED ({self.divergence_error})"
            )
        )
        lines.append(
            "no silently divergent replica"
            if self.ok
            else f"{len(self.failures)} FAILING leg(s)"
        )
        return "\n".join(lines)


# ==================================================================== the legs ==


def check_byte_determinism(
    config: ReplicationTortureConfig, primary: XMLStore, image: bytes
) -> bool:
    """Leg 2: same seed ⇒ same stream bytes, state, and lag trace."""
    outcomes = []
    for _ in range(2):
        stream = ChangeStream(WriteAheadLog.from_bytes(image))
        stream_bytes = encode_batch(list(stream.records()))
        replica = _fresh_replica(config, "determinism")
        channel = _channel(config, image, "all", seed=config.seed)
        report = catch_up(
            channel,
            replica,
            primary_store=primary,
            batch_size=config.batch_size,
            # generous budget: the bounded fault allowance guarantees an
            # eventually-honest channel, so this always converges
            retry=RetryPolicy(max_attempts=4 * config.max_attempts),
        )
        trace = json.dumps(report.to_dict(), sort_keys=True)
        outcomes.append((stream_bytes, replica.store.read(), trace))
    return outcomes[0] == outcomes[1]


def run_divergence_drill(
    config: ReplicationTortureConfig, primary: XMLStore, image: bytes
) -> Tuple[bool, bool, Optional[str]]:
    """Leg 5: a write around the stream must never survive unnoticed."""
    replica = _fresh_replica(config, "divergence")
    honest = _channel(config, image, "none", seed=config.seed)
    catch_up(
        honest,
        replica,
        primary_store=primary,
        batch_size=config.batch_size,
        retry=RetryPolicy(max_attempts=config.max_attempts),
    )
    # split-brain: a local write the stream never carried
    replica.store.load_document("<diverged/>")
    if state_digest(replica.store) == state_digest(primary):
        return False, False, "digest failed to distinguish a divergent replica"
    typed = False
    try:
        catch_up(
            _channel(config, image, "none", seed=config.seed),
            replica,
            primary_store=primary,
            batch_size=config.batch_size,
            retry=RetryPolicy(max_attempts=config.max_attempts),
            auto_resync=False,
        )
    except ReplicaDivergenceError:
        typed = True
    if not typed:
        return False, False, "divergence with resync disabled raised no typed error"
    report = catch_up(
        _channel(config, image, "none", seed=config.seed),
        replica,
        primary_store=primary,
        batch_size=config.batch_size,
        retry=RetryPolicy(max_attempts=config.max_attempts),
        auto_resync=True,
    )
    if report.resyncs < 1:
        return typed, False, "auto-resync never fired on a divergent replica"
    error = _verify_converged(replica, primary, "divergence-drill")
    return typed, error is None, error


def run_replication_torture(
    config: Optional[ReplicationTortureConfig] = None,
) -> ReplicationTortureReport:
    """All five legs for ``config``; see the module docstring."""
    config = config if config is not None else ReplicationTortureConfig()
    primary = build_primary(config)
    primary_image = primary.wal.to_bytes()
    report = ReplicationTortureReport(config=config)
    report.stream_length = ChangeStream(
        WriteAheadLog.from_bytes(primary_image)
    ).length()
    if report.stream_length == 0:
        raise StoreError("replication torture needs a non-empty change stream")
    # leg 2
    report.byte_deterministic = check_byte_determinism(
        config, primary, primary_image
    )
    # leg 3
    for classes in config.fault_classes:
        result = run_fault_class(config, classes, primary, primary_image)
        report.fault_results.append(result)
        if not result.ok:
            _log.warning("fault class %s FAILED: %s", classes, result.error)
    # leg 4: crash the *replica* at every point of a converged apply
    oracle_replica = _fresh_replica(config, "oracle")
    catch_up(
        _channel(config, primary_image, "none", seed=config.seed),
        oracle_replica,
        primary_store=primary,
        batch_size=config.batch_size,
        retry=RetryPolicy(max_attempts=config.max_attempts),
    )
    replica_image = oracle_replica.store.wal.to_bytes()
    points = truncation_points(replica_image)
    cases = [
        (index, offset, kind, durable, classes)
        for index, (offset, kind, durable) in enumerate(points)
        for classes in config.crash_fault_classes
    ]
    report.crash_points_total = len(cases)
    if config.crash_points is not None and config.crash_points < len(cases):
        rng = random.Random(config.seed ^ 0x5EED)
        cases = sorted(rng.sample(cases, config.crash_points))
    for index, offset, kind, durable, classes in cases:
        result = run_crash_point(
            config,
            primary,
            primary_image,
            replica_image,
            offset,
            kind,
            durable,
            classes,
            point=index,
        )
        report.crash_results.append(result)
        if not result.ok:
            _log.warning(
                "crash point %d (%s@%d, %s) FAILED: %s",
                index, kind, offset, classes, result.error,
            )
    # leg 5
    (
        report.divergence_typed,
        report.divergence_healed,
        report.divergence_error,
    ) = run_divergence_drill(config, primary, primary_image)
    return report
