"""Plain-text table/CSV rendering for benchmark results."""

from __future__ import annotations

import io
from typing import Iterable, List, Sequence, Tuple, Union

Cell = Union[str, int, float]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned monospace table (numbers right-aligned, 2dp)."""
    rendered_rows: List[List[str]] = []
    numeric = [True] * len(headers)
    for row in rows:
        cells = []
        for index, cell in enumerate(row):
            if isinstance(cell, float):
                cells.append(f"{cell:,.2f}")
            elif isinstance(cell, int):
                cells.append(f"{cell:,}")
            else:
                cells.append(str(cell))
                numeric[index] = False
        rendered_rows.append(cells)
    widths = [
        max(len(headers[index]), *(len(row[index]) for row in rendered_rows))
        if rendered_rows
        else len(headers[index])
        for index in range(len(headers))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    out.write(header_line + "\n")
    out.write("-" * len(header_line) + "\n")
    for row in rendered_rows:
        out.write(
            "  ".join(
                cell.rjust(width) if numeric[index] else cell.ljust(width)
                for index, (cell, width) in enumerate(zip(row, widths))
            )
            + "\n"
        )
    return out.getvalue()


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """CSV rendering (for piping into plotting tools)."""
    def render(cell: Cell) -> str:
        text = f"{cell:.6g}" if isinstance(cell, float) else str(cell)
        if "," in text or '"' in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(headers)]
    lines.extend(",".join(render(cell) for cell in row) for row in rows)
    return "\n".join(lines) + "\n"


def format_table5(rows) -> str:
    """Render Table-5 rows in the paper's layout."""
    return format_table(
        ["Indexing approach", "Insert (kb/s)", "Seq.scan (kb/s)", "Random reads (kb/s)"],
        [row.cells() for row in rows],
        title="Table 5: Lazy indexing in XML storage (simulated-disk kb/s)",
    )


def phase_dict(result) -> dict:
    """One :class:`~repro.bench.harness.PhaseResult` as a JSON-ready dict,
    including the per-phase metrics delta when the phase captured one."""
    out = {
        "label": result.label,
        "operations": result.operations,
        "xml_bytes": result.xml_bytes,
        "simulated_seconds": result.simulated_seconds,
        "wall_seconds": result.wall_seconds,
        "device_reads": result.device_reads,
        "device_writes": result.device_writes,
        "tokens_scanned": result.tokens_scanned,
        "kb_per_second": result.kb_per_second,
    }
    if result.metrics is not None:
        out["metrics"] = result.metrics
    if result.explain is not None:
        out["explain"] = result.explain
    if result.profile is not None:
        out["profile"] = result.profile
    return out


def table5_to_json(rows) -> str:
    """Table-5 rows as a JSON document (one object per approach, each
    phase carrying its metrics snapshot).  Every row is stamped with the
    artifact schema version; ``tools/bench_compare.py`` asserts it."""
    import json

    from repro.obs.schema import SCHEMA_VERSION

    payload = [
        {
            "schema_version": SCHEMA_VERSION,
            "approach": row.approach,
            "insert": phase_dict(row.insert),
            "seq_scan": phase_dict(row.seq_scan),
            "random_reads": phase_dict(row.random_reads),
        }
        for row in rows
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
