"""Ablation experiments A–E (DESIGN.md experiment index).

The paper's §9 names the studies it is "currently evaluating": the effect
of variable-sized ranges, the functionality of the partial index, and —
via the §8 related-work discussion — lazy vs. eager segment indexing
(Catania et al.) and identifier-scheme orthogonality.  Each function here
regenerates one of those as a parameter sweep; the ``benchmarks/`` tree
wraps them for pytest-benchmark, and EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.bench.harness import (
    PhaseResult,
    insert_phase,
    random_read_phase,
    run_phase,
)
from repro.ids.dewey import DeweyScheme
from repro.ids.ordpath import OrdpathScheme
from repro.ids.prepost import PrePostLabeler
from repro.workloads.generator import purchase_order_stream, purchase_orders_document
from repro.workloads.operations import hot_cold_choices


# ---------------------------------------------------------------- Ablation A --

@dataclass
class GranularityPoint:
    max_range_tokens: Optional[int]
    ranges: int
    insert: PhaseResult
    random_reads: PhaseResult


def run_granularity_sweep(
    range_sizes: Sequence[Optional[int]] = (32, 128, 512, 2048, None),
    base_orders: int = 120,
    insert_orders: int = 12,
    reads: int = 150,
    pool_capacity: int = 16,
    seed: int = 7,
) -> List[GranularityPoint]:
    """Ablation A: insert and random-read throughput vs. range size.

    Expected shape: inserts degrade slightly as ranges get smaller (more
    index entries per insert); random reads degrade sharply as ranges get
    *larger* (longer scans per lookup) — the trade-off §4.2 describes.
    ``None`` = one range per insert operation (the paper's rule).
    """
    points: List[GranularityPoint] = []
    document = purchase_orders_document(base_orders, seed=seed)
    for size in range_sizes:
        config = StoreConfig(
            policy=IndexingPolicy.RANGE,
            max_range_tokens=size,
            buffer_pool_capacity=pool_capacity,
        )
        store = XMLStore.open(config)
        root = store.load_document(document)
        fragments = list(
            purchase_order_stream(insert_orders, seed=seed + 1, start_no=base_orders)
        )
        insert_result = insert_phase(store, root, fragments)
        # reads run against a freshly loaded store (pre-insert layout);
        # uniform ids isolate the scan-length effect from caching effects
        store = XMLStore.open(config)
        store.load_document(document)
        item_ids = [n.node_id for n in store.xpath("//item")]
        rng = random.Random(seed)
        read_ids = [rng.choice(item_ids) for _ in range(reads)]
        read_result = random_read_phase(store, read_ids)
        points.append(
            GranularityPoint(
                max_range_tokens=size,
                ranges=len(store.range_snapshot()),
                insert=insert_result,
                random_reads=read_result,
            )
        )
    return points


# ---------------------------------------------------------------- Ablation B --

@dataclass
class PartialCapacityPoint:
    capacity: Optional[int]
    hit_rate: float
    random_reads: PhaseResult


def run_partial_capacity_sweep(
    capacities: Sequence[Optional[int]] = (0, 8, 32, 128, None),
    base_orders: int = 120,
    reads: int = 300,
    hot_fraction: float = 0.1,
    pool_capacity: int = 16,
    seed: int = 7,
) -> List[PartialCapacityPoint]:
    """Ablation B: random-read throughput vs. partial-index capacity.

    Capacity 0 degenerates to the plain Range Index; unbounded capacity is
    the paper's configuration.  Expected shape: throughput grows with
    capacity until the hot set fits, then flattens (laziness means cold
    entries never cost anything either way).
    """
    document = purchase_orders_document(base_orders, seed=seed)
    points: List[PartialCapacityPoint] = []
    for capacity in capacities:
        if capacity == 0:
            config = StoreConfig(
                policy=IndexingPolicy.RANGE, buffer_pool_capacity=pool_capacity
            )
        else:
            config = StoreConfig(
                policy=IndexingPolicy.RANGE_PLUS_PARTIAL,
                partial_index_capacity=capacity,
                buffer_pool_capacity=pool_capacity,
            )
        store = XMLStore.open(config)
        store.load_document(document)
        item_ids = [n.node_id for n in store.xpath("//item")]
        read_ids = hot_cold_choices(
            item_ids, reads, hot_fraction=hot_fraction, hot_probability=0.9, seed=seed
        )
        result = random_read_phase(store, read_ids)
        hit_rate = (
            store.partial_index.stats.hit_rate if store.partial_index is not None else 0.0
        )
        points.append(PartialCapacityPoint(capacity, hit_rate, result))
    return points


# ---------------------------------------------------------------- Ablation C --

@dataclass
class LazinessPoint:
    segments: int
    lazy_insert: PhaseResult
    eager_memory_insert: PhaseResult
    eager_full_insert: PhaseResult

    @property
    def lazy_advantage(self) -> float:
        """How many times faster lazy insertion is than the eager
        (disk-indexed) strawman."""
        return self.lazy_insert.kb_per_second / max(
            self.eager_full_insert.kb_per_second, 1e-12
        )


def run_lazy_vs_eager(
    segment_counts: Sequence[int] = (10, 25, 50, 100),
    items_per_order: int = 5,
    pool_capacity: int = 24,
    seed: int = 7,
) -> List[LazinessPoint]:
    """Ablation C: lazy vs. eager indexing of inserted segments.

    The §8 comparison: Catania et al.'s segments are "defined lazily" but
    their *content* is indexed eagerly at insert, and "their performance
    is degraded ... especially as the segments increase in number".  We
    measure the same append stream under three disciplines: lazy (the
    store's default), eager population of the memory partial index, and
    eager per-node indexing in the disk-based full index (the faithful
    Catania analogue).  Expected shape: lazy wins everywhere, and its
    advantage over the eager-full discipline *grows* with the number of
    segments (the index being maintained keeps growing).
    """
    points: List[LazinessPoint] = []
    for segments in segment_counts:
        results: Dict[str, PhaseResult] = {}
        variants = [
            ("lazy", IndexingPolicy.RANGE_PLUS_PARTIAL, False),
            ("eager-memory", IndexingPolicy.RANGE_PLUS_PARTIAL, True),
            ("eager-full", IndexingPolicy.FULL, False),
        ]
        for label, policy, eager in variants:
            config = StoreConfig(
                policy=policy,
                eager_partial_index=eager,
                buffer_pool_capacity=pool_capacity,
            )
            store = XMLStore.open(config)
            root = store.load_document("<purchase-orders/>")
            fragments = list(
                purchase_order_stream(segments, items_per_order, seed=seed)
            )
            results[label] = insert_phase(store, root, fragments, label=label)
        points.append(
            LazinessPoint(
                segments=segments,
                lazy_insert=results["lazy"],
                eager_memory_insert=results["eager-memory"],
                eager_full_insert=results["eager-full"],
            )
        )
    return points


# ---------------------------------------------------------------- Ablation D --

@dataclass
class IdSchemeResult:
    scheme: str
    inserts: int
    labels_changed: int
    supports_order: bool
    supports_ancestry: bool


def run_id_scheme_comparison(
    siblings: int = 200, middle_inserts: int = 50, seed: int = 7
) -> List[IdSchemeResult]:
    """Ablation D: relabeling cost of identifier schemes under repeated
    middle-sibling insertion (§6: id schemes are orthogonal to the store;
    their *update* costs differ wildly).

    Expected shape: sequential store ids and ORDPATH never relabel;
    Dewey relabels following siblings; pre/post relabels O(document).
    """
    rng = random.Random(seed)
    results: List[IdSchemeResult] = []

    # --- sequential store ids: stable by construction
    results.append(
        IdSchemeResult(
            scheme="sequential (store)",
            inserts=middle_inserts,
            labels_changed=0,
            supports_order=False,  # only within a range (§6.2)
            supports_ancestry=False,
        )
    )

    # --- ORDPATH: caret in, never move anyone
    ordpath = OrdpathScheme()
    labels = [(1, 2 * i + 1) for i in range(siblings)]
    changed = 0
    for _ in range(middle_inserts):
        index = rng.randrange(len(labels) - 1)
        left, right = labels[index], labels[index + 1]
        new_label = ordpath.between(left, right)
        changed += ordpath.relabel_cost(labels, left)
        labels.insert(index + 1, new_label)
    results.append(
        IdSchemeResult(
            scheme="ordpath",
            inserts=middle_inserts,
            labels_changed=changed,
            supports_order=True,
            supports_ancestry=True,
        )
    )

    # --- Dewey: renumber following siblings
    dewey = DeweyScheme()
    dewey_labels = [(1, i + 1) for i in range(siblings)]
    changed = 0
    for _ in range(middle_inserts):
        index = rng.randrange(len(dewey_labels) - 1)
        new_label, moves = dewey.renumber_after(dewey_labels, dewey_labels[index])
        changed += len(moves)
        mapping = dict(moves)
        dewey_labels = [mapping.get(l, l) for l in dewey_labels]
        dewey_labels.insert(index + 1, new_label)
    results.append(
        IdSchemeResult(
            scheme="dewey",
            inserts=middle_inserts,
            labels_changed=changed,
            supports_order=True,
            supports_ancestry=True,
        )
    )

    # --- pre/post: renumber everything after the insert point
    labeler = PrePostLabeler()
    from repro.ids.prepost import PrePostLabel

    prepost = [PrePostLabel(i + 1, i) for i in range(siblings)]  # flat siblings
    changed = 0
    for _ in range(middle_inserts):
        index = rng.randrange(len(prepost) - 1)
        target = prepost[index]
        new_label, relabeled = labeler.insert_leaf(
            prepost, target.pre + 1, target.post + 1
        )
        changed += sum(1 for old, new in zip(prepost, relabeled) if old != new)
        prepost = relabeled
        prepost.insert(index + 1, new_label)
    results.append(
        IdSchemeResult(
            scheme="prepost",
            inserts=middle_inserts,
            labels_changed=changed,
            supports_order=True,
            supports_ancestry=True,
        )
    )
    return results


# ---------------------------------------------------------------- Ablation E --

@dataclass
class MixedWorkloadPoint:
    read_fraction: float
    policy: str
    simulated_seconds: float
    operations: int


def run_adaptive_mixed(
    read_fractions: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95),
    operations: int = 300,
    base_orders: int = 60,
    pool_capacity: int = 16,
    seed: int = 7,
) -> List[MixedWorkloadPoint]:
    """Ablation E: adaptive policy vs. fixed policies across read mixes.

    Expected shape: the plain Range Index loses everywhere that lookups
    repeat (a Table-5 insight: even *updates* profit from memoized
    lookups); eager population wastes work on update-heavy mixes; and
    ADAPTIVE tracks the best fixed discipline across the whole sweep
    (§2.1's "middle approach ... depending on the application load").
    """
    from repro.workloads.operations import apply_stream, mixed_stream

    policies = [
        ("range", IndexingPolicy.RANGE, False),
        ("range+partial", IndexingPolicy.RANGE_PLUS_PARTIAL, False),
        ("eager-partial", IndexingPolicy.RANGE_PLUS_PARTIAL, True),
        ("adaptive", IndexingPolicy.ADAPTIVE, False),
    ]
    document = purchase_orders_document(base_orders, seed=seed)
    points: List[MixedWorkloadPoint] = []
    for fraction in read_fractions:
        for name, policy, eager in policies:
            config = StoreConfig(
                policy=policy,
                eager_partial_index=eager,
                buffer_pool_capacity=pool_capacity,
                adaptive_window=32,
            )
            store = XMLStore.open(config)
            root = store.load_document(document)
            item_ids = [n.node_id for n in store.xpath("//item")]
            read_ids = hot_cold_choices(
                item_ids, operations, hot_fraction=0.05, seed=seed
            )
            fragments = list(purchase_order_stream(operations, seed=seed + 2,
                                                   start_no=base_orders))
            stream = mixed_stream(
                read_ids, root, fragments, fraction, operations, seed=seed
            )
            before = store.simulated_seconds
            apply_stream(store, stream)
            points.append(
                MixedWorkloadPoint(
                    read_fraction=fraction,
                    policy=name,
                    simulated_seconds=store.simulated_seconds - before,
                    operations=operations,
                )
            )
    return points
