"""Table 5 reproduction: lazy indexing vs. the full-index strawman.

Paper (Table 5, kb/s on a 2005 Pentium 4 + MySQL prototype)::

    Indexing approach                              Insert  Seq.scan  Random
    Full Index (max. granularity)                   27.97   1150.59  672.22
    Range Index (many, granular entries)            97.xx   1496.47  136.98
    Range Index (few, coarse, large entries)        91.xx   1496.47   33.41
    Range Index (coarse) + Partial Index (memory)  182.xx   1496.47  994.36

Expected *shape* (what this reproduction checks — see EXPERIMENTS.md):

* full-index inserts are the slowest by a wide margin (index maintenance
  per node);
* range-index inserts are several times faster; coarse vs granular are in
  the same ballpark;
* adding the partial index makes inserts the *fastest* (target lookups
  are memoized) — the paper's headline;
* random reads: coarse alone is the slowest (scan per lookup), granular
  is several times better, full index is fast, coarse+partial is at least
  as fast as the full index;
* sequential scans are insensitive to range granularity and somewhat
  slower under the full index (its pages interleave with the data,
  breaking sequentiality).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.bench.harness import (
    PhaseResult,
    insert_phase,
    random_read_phase,
    sequential_scan_phase,
)
from repro.workloads.generator import purchase_order_stream, purchase_orders_document
from repro.workloads.operations import hot_cold_choices


@dataclass
class Table5Config:
    """Scale knobs for the Table 5 run."""

    #: orders in the bulk-loaded base document
    base_orders: int = 200
    #: items per order (~14 tokens each)
    items_per_order: int = 5
    #: orders appended during the insert phase
    insert_orders: int = 50
    #: point reads in the random-read phase.  The paper's partial index
    #: pays off on *repeated* access to the same logical positions ("a
    #: repeated search for the same logical position will benefit", §5),
    #: so the stream must be long relative to its hot set.
    random_reads: int = 400
    #: fraction of the id population that is "hot"
    hot_fraction: float = 0.02
    #: probability a read hits the hot set
    hot_probability: float = 0.95
    #: buffer pool frames — deliberately smaller than the document, so
    #: the full index's "very high storage requirements" (§4.1) show up
    #: as cache pollution, as they did on the paper's testbed
    pool_capacity: int = 24
    #: tokens per range in the "many, granular entries" row
    granular_tokens: int = 512
    #: profile each phase (telemetry + event log + EXPLAIN attachment on
    #: the phase rows).  Off by default: the disabled path must leave the
    #: simulated numbers byte-identical.
    events_enabled: bool = False
    #: attach a cost profile (call tree + component attribution, see
    #: :mod:`repro.obs.profiler`) to every phase row.  Same contract as
    #: ``events_enabled``: off by default, byte-identical numbers when on.
    profile: bool = False
    #: build each row's block device from this ``StoreConfig -> BlockDevice``
    #: callable instead of the default in-memory device.  The crash-
    #: consistency tests use it to run Table 5 over a pass-through
    #: :class:`~repro.storage.faults.FaultyDisk` and pin the numbers
    #: byte-identical (the fault layer's zero-cost contract).
    backend_factory: Optional[object] = None
    #: record workload-history snapshots (one per phase, plus the
    #: periodic interval captures; see :mod:`repro.obs.history`).  Off by
    #: default under the usual contract: history on or off, the simulated
    #: numbers are byte-identical (tests/bench/test_history_zero_cost.py).
    history: bool = False
    #: evaluate alert rules and SLO budgets (see :mod:`repro.obs.alerts`
    #: / :mod:`repro.obs.slo`) during the run.  Off by default under the
    #: same contract: alerts on or off, the simulated numbers are
    #: byte-identical (tests/bench/test_alerts_zero_cost.py).
    alerts: bool = False
    #: keep the black-box flight recorder (see :mod:`repro.obs.recorder`)
    #: during the run.  Off by default under the same contract: recorder
    #: on or off, the simulated numbers are byte-identical
    #: (tests/bench/test_recorder_zero_cost.py).
    recorder: bool = False
    #: write checksum-framed pages (see :mod:`repro.storage.pages`).  Off
    #: here — unlike the store default — so the benchmark numbers stay
    #: comparable with the committed pre-checksum baseline; the robustness
    #: tests flip it on and bound the overhead with the bench_compare
    #: tolerance instead (tests/bench/test_checksum_cost.py).
    checksums: bool = False
    seed: int = 7

    @classmethod
    def small(cls) -> "Table5Config":
        """A fast preset (≈10 s) that still reproduces the shape."""
        return cls(
            base_orders=120,
            insert_orders=12,
            random_reads=200,
            hot_fraction=0.02,
            pool_capacity=16,
            granular_tokens=256,
        )


@dataclass
class Table5Row:
    approach: str
    insert: PhaseResult
    seq_scan: PhaseResult
    random_reads: PhaseResult

    def cells(self) -> Tuple[str, float, float, float]:
        return (
            self.approach,
            self.insert.kb_per_second,
            self.seq_scan.kb_per_second,
            self.random_reads.kb_per_second,
        )


#: (row label, indexing policy, max_range_tokens) for the four approaches.
APPROACHES: List[Tuple[str, IndexingPolicy, Optional[str]]] = [
    ("Full Index (max. granularity)", IndexingPolicy.FULL, None),
    ("Range Index (many, granular entries)", IndexingPolicy.RANGE, "granular"),
    ("Range Index (few, coarse, large entries)", IndexingPolicy.RANGE, None),
    (
        "Range Index (coarse) + Partial Index (memory)",
        IndexingPolicy.RANGE_PLUS_PARTIAL,
        None,
    ),
]


def build_store(
    policy: IndexingPolicy, granularity: Optional[str], config: Table5Config
) -> Tuple[XMLStore, int]:
    """A store bulk-loaded with the base document under the row's config;
    returns (store, root id)."""
    store_config = StoreConfig(
        policy=policy,
        buffer_pool_capacity=config.pool_capacity,
        max_range_tokens=(
            config.granular_tokens if granularity == "granular" else None
        ),
        telemetry_enabled=config.events_enabled,
        events_enabled=config.events_enabled,
        profiling_enabled=config.profile,
        history_enabled=config.history,
        alerts_enabled=config.alerts,
        recorder_enabled=config.recorder,
        checksums_enabled=config.checksums,
    )
    device = (
        config.backend_factory(store_config)
        if config.backend_factory is not None
        else None
    )
    store = XMLStore.open(store_config, device=device)
    document = purchase_orders_document(
        config.base_orders, config.items_per_order, seed=config.seed
    )
    root = store.load_document(document)
    assert root is not None
    return store, root


def sample_read_ids(store: XMLStore, config: Table5Config) -> List[int]:
    """Node ids of "small pieces": the items of the base document, with a
    hot/cold skew so repeated lookups occur (what the partial index
    memoizes)."""
    item_ids = [node.node_id for node in store.xpath("/purchase-orders/purchase-order/item")]
    assert item_ids
    rng = random.Random(config.seed)
    rng.shuffle(item_ids)
    return hot_cold_choices(
        item_ids,
        config.random_reads,
        hot_fraction=config.hot_fraction,
        hot_probability=config.hot_probability,
        seed=config.seed,
    )


def run_row(
    approach: str,
    policy: IndexingPolicy,
    granularity: Optional[str],
    config: Table5Config,
) -> Table5Row:
    """Run the three phases for one indexing approach."""
    # --- insert phase (fresh store, bulk base, then measured appends)
    store, root = build_store(policy, granularity, config)
    fragments = list(
        purchase_order_stream(
            config.insert_orders,
            config.items_per_order,
            seed=config.seed + 1,
            start_no=config.base_orders,
        )
    )
    insert_result = insert_phase(store, root, fragments)
    # --- sequential scan (fresh store so inserts don't change the data)
    store, _ = build_store(policy, granularity, config)
    scan_result = sequential_scan_phase(store)
    # --- random reads (same store, cold cache, skewed id stream)
    read_ids = sample_read_ids(store, config)
    read_result = random_read_phase(store, read_ids)
    return Table5Row(approach, insert_result, scan_result, read_result)


def run_table5(config: Optional[Table5Config] = None) -> List[Table5Row]:
    """Regenerate all four rows of Table 5."""
    config = config if config is not None else Table5Config()
    return [
        run_row(approach, policy, granularity, config)
        for approach, policy, granularity in APPROACHES
    ]


def check_shape(rows: List[Table5Row]) -> List[str]:
    """Validate the paper's qualitative claims; returns violated claims
    (empty = the shape reproduces)."""
    by_name = {row.approach: row for row in rows}
    full = by_name["Full Index (max. granularity)"]
    granular = by_name["Range Index (many, granular entries)"]
    coarse = by_name["Range Index (few, coarse, large entries)"]
    partial = by_name["Range Index (coarse) + Partial Index (memory)"]
    claims = [
        (
            "full-index inserts are the slowest",
            full.insert.kb_per_second
            < min(r.insert.kb_per_second for r in (granular, coarse, partial)),
        ),
        (
            "partial index gives the fastest inserts",
            partial.insert.kb_per_second
            > max(r.insert.kb_per_second for r in (full, granular, coarse)),
        ),
        (
            "coarse ranges alone give the slowest random reads",
            coarse.random_reads.kb_per_second
            < min(
                r.random_reads.kb_per_second for r in (full, granular, partial)
            ),
        ),
        (
            "granular ranges beat coarse on random reads",
            granular.random_reads.kb_per_second
            > coarse.random_reads.kb_per_second,
        ),
        (
            "partial index random reads at least match the full index",
            partial.random_reads.kb_per_second
            >= full.random_reads.kb_per_second,
        ),
        (
            "sequential scans are insensitive to range granularity (±25%)",
            abs(
                granular.seq_scan.kb_per_second - coarse.seq_scan.kb_per_second
            )
            <= 0.25 * coarse.seq_scan.kb_per_second,
        ),
        (
            "full index does not beat range variants on sequential scan",
            full.seq_scan.kb_per_second
            <= 1.10 * coarse.seq_scan.kb_per_second,
        ),
    ]
    return [name for name, holds in claims if not holds]
