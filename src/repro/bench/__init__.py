"""Benchmark harness: phases, Table-5 runner, ablations, reporting."""

from repro.bench.harness import (
    PhaseResult,
    insert_phase,
    make_cold,
    random_read_phase,
    run_phase,
    sequential_scan_phase,
)
from repro.bench.reporting import format_csv, format_table, format_table5
from repro.bench.table5 import (
    APPROACHES,
    Table5Config,
    Table5Row,
    check_shape,
    run_table5,
)

__all__ = [
    "APPROACHES",
    "PhaseResult",
    "Table5Config",
    "Table5Row",
    "check_shape",
    "format_csv",
    "format_table",
    "format_table5",
    "insert_phase",
    "make_cold",
    "random_read_phase",
    "run_phase",
    "run_table5",
    "sequential_scan_phase",
]
