"""Micro-benchmark harness: phases, cold caches, kb/s accounting.

The paper's metric is "kilobytes/second (read speed, relative to data
size)" on a 2005 disk.  Our primary clock is the *simulated* disk clock
(see :mod:`repro.storage.disk` and DESIGN.md): every phase snapshots the
instrumented device before and after, and throughput is XML bytes over
simulated seconds.  Wall-clock seconds are recorded alongside (and
pytest-benchmark measures them independently), but Python wall time
measures the interpreter, not the storage design — the simulated clock is
what reproduces the paper's *shape*.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.store import XMLStore
from repro.obs.bridge import metrics_snapshot
from repro.obs.clock import perf_seconds
from repro.obs.explain import ExplainRecorder
from repro.obs.profiler import ProfileRecorder

#: Floor for elapsed simulated time, so fully cached phases report a very
#: large (but finite) throughput instead of dividing by zero.
MIN_SIMULATED_SECONDS = 1e-9


@dataclass
class PhaseResult:
    """Measurements for one benchmark phase."""

    label: str
    operations: int
    xml_bytes: int
    simulated_seconds: float
    wall_seconds: float
    device_reads: int
    device_writes: int
    tokens_scanned: int
    #: Per-phase metrics delta (counters: after - before; gauges: after),
    #: keyed by flat sample name.  See :mod:`repro.obs.bridge`.
    metrics: Optional[Dict[str, float]] = None
    #: EXPLAIN report for the phase (access-path attribution; only
    #: captured when the store's event log is enabled).
    explain: Optional[Dict[str, object]] = None
    #: cost profile for the phase (call tree + component attribution;
    #: only captured when the store's config enables profiling).
    profile: Optional[Dict[str, object]] = None

    @property
    def kb_per_second(self) -> float:
        """Simulated-clock throughput, the paper's Table 5 metric."""
        elapsed = max(self.simulated_seconds, MIN_SIMULATED_SECONDS)
        return (self.xml_bytes / 1024.0) / elapsed

    @property
    def wall_kb_per_second(self) -> float:
        elapsed = max(self.wall_seconds, MIN_SIMULATED_SECONDS)
        return (self.xml_bytes / 1024.0) / elapsed

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.kb_per_second:,.1f} kb/s simulated "
            f"({self.operations} ops, {self.xml_bytes / 1024:.0f} KB, "
            f"{self.device_reads}r/{self.device_writes}w)"
        )


def make_cold(store: XMLStore) -> None:
    """Flush and empty the buffer pool so the next phase reads from the
    (simulated) disk — the paper's benchmarks read cold data."""
    store.pool.flush_all()
    store.pool.drop_all()


def run_phase(
    store: XMLStore,
    label: str,
    thunk: Callable[[], int],
    operations: int,
    cold: bool = False,
) -> PhaseResult:
    """Run one phase and account it.

    ``thunk`` performs the work and returns the number of XML bytes it
    processed.  Dirty pages are flushed *inside* the measured window so
    write-heavy phases pay their write-back, as a real store would.
    """
    if cold:
        make_cold(store)
    else:
        store.pool.flush_all()
    disk_before = store.device.stats.snapshot()
    scanned_before = store.locator.stats.tokens_scanned
    simulated_before = store.simulated_seconds
    # registry snapshots happen outside the wall-clock window so the
    # telemetry export never contaminates the measured time
    metrics_before = metrics_snapshot(store)
    # only profile the phase when the event log (or the cost profiler)
    # is on, so the default (disabled) path stays exactly as it was
    recorder = ExplainRecorder(store, label) if store.event_log.enabled else None
    profiler = (
        ProfileRecorder(store, label)
        if store.config.profiling_enabled
        else None
    )
    wall_start = perf_seconds()
    if recorder is not None or profiler is not None:
        with ExitStack() as recorders:
            if profiler is not None:
                recorders.enter_context(profiler)
            if recorder is not None:
                recorders.enter_context(recorder)
            xml_bytes = thunk()
            store.pool.flush_all()
    else:
        xml_bytes = thunk()
        store.pool.flush_all()
    wall_seconds = perf_seconds() - wall_start
    metrics_after = metrics_snapshot(store)
    if store.history.enabled:
        # one labeled snapshot per phase; reads counters only, so the
        # measured simulated/wall window above is untouched
        store.history.capture(store, label)
    disk = store.device.stats.delta(disk_before)
    explain = None
    if recorder is not None and recorder.report is not None:
        explain = recorder.report.to_dict(include_events=False)
    profile = None
    if profiler is not None and profiler.profile is not None:
        profile = profiler.profile.to_dict()
    return PhaseResult(
        label=label,
        operations=operations,
        xml_bytes=xml_bytes,
        simulated_seconds=store.simulated_seconds - simulated_before,
        wall_seconds=wall_seconds,
        device_reads=disk.reads,
        device_writes=disk.writes,
        tokens_scanned=store.locator.stats.tokens_scanned - scanned_before,
        metrics=metrics_after.delta(metrics_before),
        explain=explain,
        profile=profile,
    )


def insert_phase(
    store: XMLStore, target_id: int, fragments: List[str], label: str = "insert"
) -> PhaseResult:
    """Measure ``insert_into_last`` throughput (the paper's insert bench)."""

    def work() -> int:
        total = 0
        for fragment in fragments:
            store.insert_into_last(target_id, fragment)
            total += len(fragment.encode("utf-8"))
        return total

    return run_phase(store, label, work, operations=len(fragments))


def sequential_scan_phase(store: XMLStore, label: str = "seq-scan") -> PhaseResult:
    """Measure a full document read from a cold cache."""

    def work() -> int:
        return len(store.read().encode("utf-8"))

    return run_phase(store, label, work, operations=1, cold=True)


def random_read_phase(
    store: XMLStore, node_ids: List[int], label: str = "random-reads"
) -> PhaseResult:
    """Measure point reads of small pieces, from a cold cache."""

    def work() -> int:
        total = 0
        for node_id in node_ids:
            total += len(store.read(node_id).encode("utf-8"))
        return total

    return run_phase(store, label, work, operations=len(node_ids), cold=True)
