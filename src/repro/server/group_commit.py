"""Group commit: many committing transactions, one sync barrier.

Under redo buffering a commit appends exactly one ``TXN_COMMIT`` frame
with ``sync=False`` — volatile until a barrier.  Committing sessions
park here; the scheduler flushes the queue when the batch is full or
when nothing else can run (the classic group-commit policy: absorb
commits while there is other work to do, then pay one barrier for the
whole batch).  The WAL tracks ``group_commits`` and the drained batch
sizes, which the bridge exports as ``repro_wal_group_commits_total``
and the ``repro_wal_group_commit_batch_size`` histogram.
"""

from __future__ import annotations

from typing import List


class GroupCommitQueue:
    """Parks committing sessions until the shared barrier."""

    def __init__(self, wal, max_batch: int = 8, event_log=None) -> None:
        self.wal = wal
        self.max_batch = max_batch
        self.event_log = event_log
        self.waiting: List[object] = []
        #: Barriers issued by :meth:`flush` (≥1 frame drained).
        self.flushes = 0

    def enqueue(self, session) -> bool:
        """Register a committed session awaiting durability.

        Returns True when the session must wait for the barrier; False
        when it is already durable (it wrote nothing, or its frame was
        synced eagerly by the per-commit discipline)."""
        if self.wal.pending_frames == 0:
            session.durable = True
            return False
        self.waiting.append(session)
        return True

    @property
    def should_flush(self) -> bool:
        return len(self.waiting) >= self.max_batch

    def flush(self, reason: str = "idle") -> int:
        """Pay one barrier for everything pending; wake the waiters."""
        frames = self.wal.sync()
        batch = len(self.waiting)
        for session in self.waiting:
            session.durable = True
        self.waiting.clear()
        if frames:
            self.flushes += 1
            if self.event_log is not None and self.event_log.enabled:
                self.event_log.emit(
                    "server", "group_commit_flush",
                    frames=frames, sessions=batch, reason=reason,
                )
        return frames


class PerCommitQueue:
    """The degenerate discipline (``server_group_commit=False``): every
    commit synced its own frame already, so nobody ever waits.  Exists so
    the bench can compare barrier counts at equal committed work."""

    max_batch = 1

    def __init__(self, wal, event_log=None) -> None:
        self.wal = wal
        self.event_log = event_log
        self.waiting: List[object] = []
        self.flushes = 0

    def enqueue(self, session) -> bool:
        # commit_sync=True already paid the barrier inside append()
        self.wal.sync()
        session.durable = True
        return False

    @property
    def should_flush(self) -> bool:
        return False

    def flush(self, reason: str = "idle") -> int:
        return self.wal.sync()
