"""Deterministic cooperative scheduler.

No threads, no wall clock: sessions are generators, and this scheduler
decides — from a seed or an explicit schedule script — which runnable
session advances next.  Time is the store's *simulated* clock, so a
trace is replayable bit-for-bit: the same seed over the same programs
yields the same interleaving, the same WAL bytes, and the same event
log (the byte-determinism CI gate pins exactly this).

Scheduling policy:

* a session is runnable unless it finished, is suspended on a queued
  lock request that has not been granted, or is parked awaiting the
  group-commit barrier;
* when the batch reaches ``server_group_commit_max_batch`` the group
  flushes eagerly;
* when *nothing* is runnable but committers are parked, the group
  flushes — the classic policy: absorb commits while other work exists,
  pay one barrier when the pipeline drains;
* no runnable session, nothing to flush, unfinished sessions left ⇒
  a stall, raised loudly (deadlocks are detected at enqueue time, so a
  stall is a scheduler/lock bug, never an expected state).

The ``script`` form drives the interleaving test harness: a list of
integers, each choosing (mod the runnable count) which session steps
next.  Scripts shrink well — any prefix or subsequence is still a
valid schedule, with exhausted scripts falling back to "first runnable".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConcurrencyError


@dataclass(frozen=True)
class ScheduleStep:
    """One trace entry: which session advanced, to what status, when."""

    step: int
    session_id: int
    status: str
    clock: float


class CooperativeScheduler:
    """Advances sessions one step at a time, deterministically."""

    def __init__(self, server, seed: int = 0, script: Optional[Sequence[int]] = None) -> None:
        self.server = server
        self.seed = seed
        self.rng = random.Random(seed)
        self.script = None if script is None else list(script)
        self._cursor = 0
        self.steps = 0
        self.trace: List[ScheduleStep] = []
        #: The choices actually made (session ids, in order) — feed this
        #: back as a script to replay the exact interleaving.
        self.choices: List[int] = []

    def _pick(self, runnable):
        if self.script is not None:
            if self._cursor < len(self.script):
                index = self.script[self._cursor] % len(runnable)
            else:
                index = 0
            self._cursor += 1
            return runnable[index]
        return runnable[self.rng.randrange(len(runnable))]

    def run(self, max_steps: int = 100_000) -> None:
        server = self.server
        while True:
            server.admit_from_backlog()
            runnable = [s for s in server.sessions if s.runnable()]
            if not runnable:
                if server.group_commit.waiting:
                    server.group_commit.flush(reason="idle")
                    continue
                if any(not s.finished for s in server.sessions):
                    blocked = [
                        (s.session_id, s.blocked_on)
                        for s in server.sessions
                        if not s.finished
                    ]
                    raise ConcurrencyError(
                        f"scheduler stall: no runnable session, nothing to "
                        f"flush; blocked={blocked!r}"
                    )
                break
            if server.group_commit.should_flush:
                server.group_commit.flush(reason="batch-full")
            session = self._pick(runnable)
            status = session.step()
            self.choices.append(session.session_id)
            self.trace.append(
                ScheduleStep(
                    self.steps,
                    session.session_id,
                    status,
                    server.store.simulated_seconds,
                )
            )
            self.steps += 1
            if self.steps >= max_steps:
                raise ConcurrencyError(
                    f"scheduler exceeded {max_steps} steps without quiescing"
                )
        # drain: aborted transactions' frames (and stragglers) hit disk
        server.group_commit.flush(reason="drain")
