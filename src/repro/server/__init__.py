"""Concurrent serving layer: sessions, group commit, snapshot reads.

The server multiplexes N logical clients over one
:class:`~repro.core.store.XMLStore` without threads: sessions are
generators advanced by a deterministic cooperative scheduler
(:mod:`repro.server.scheduler`), writers share sync barriers through
group commit (:mod:`repro.server.group_commit`), and read-only sessions
pin consistent lock-free views (:mod:`repro.server.snapshot`).  The
asyncio adapter (:mod:`repro.server.netadapter`) exposes the same core
over a real socket for ``repro serve`` / ``repro client``.
"""

from repro.server.group_commit import GroupCommitQueue, PerCommitQueue
from repro.server.scheduler import CooperativeScheduler, ScheduleStep
from repro.server.sessions import (
    MUTATING_OPS,
    READER_OPS,
    WRITER_OPS,
    ServerReport,
    ServerStats,
    Session,
    SessionOp,
    XMLServer,
)
from repro.server.snapshot import Snapshot, SnapshotManager, TokenDocument

__all__ = [
    "CooperativeScheduler",
    "GroupCommitQueue",
    "MUTATING_OPS",
    "PerCommitQueue",
    "READER_OPS",
    "ScheduleStep",
    "ServerReport",
    "ServerStats",
    "Session",
    "SessionOp",
    "Snapshot",
    "SnapshotManager",
    "TokenDocument",
    "WRITER_OPS",
    "XMLServer",
]
