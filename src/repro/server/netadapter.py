"""Asyncio socket adapter: the deterministic core, served for real.

The cooperative scheduler is synchronous on purpose — determinism comes
from owning every interleaving decision.  This adapter is the thin
bridge to actual concurrency: connections speak newline-delimited JSON,
their session programs are collected into batches, and a single driver
task feeds each batch to :meth:`XMLServer.run`.  Requests that arrive
together are multiplexed through one scheduler run, so real concurrent
clients share group-commit barriers exactly like logical sessions do.

Protocol (one JSON object per line, response mirrors request order):

* ``{"cmd": "session", "read_only": false, "ops": [{"op": "read",
  "node_id": 1}]}`` → ``{"ok": true, "session": N, "outcome":
  "committed", "results": [...]}``
* ``{"cmd": "stats"}`` → server counters + WAL group-commit counters
* ``{"cmd": "ping"}`` → ``{"ok": true, "pong": true}``
* ``{"cmd": "shutdown"}`` → acks, then stops the server loop
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, ServerUnavailableError, SessionLimitError
from repro.server.sessions import SessionOp, XMLServer


def _jsonable(value):
    """Session results may hold tuples or store objects; wire-safe them."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return str(value)


class AsyncXMLServer:
    """Serves one :class:`XMLServer` over a TCP socket."""

    def __init__(
        self,
        server: XMLServer,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.seed = seed
        self.requests_served = 0
        self.batches_driven = 0
        self._queue: "asyncio.Queue[Tuple[dict, asyncio.Future]]" = asyncio.Queue()
        self._stop = asyncio.Event()
        self._sock_server: Optional[asyncio.AbstractServer] = None
        self._driver_task: Optional[asyncio.Task] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._sock_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._sock_server.sockets[0].getsockname()[1]
        self._driver_task = asyncio.ensure_future(self._driver())

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request arrives."""
        if self._sock_server is None:
            await self.start()
        await self._stop.wait()
        await self.stop()

    async def stop(self) -> None:
        self._stop.set()
        if self._driver_task is not None:
            self._driver_task.cancel()
            try:
                await self._driver_task
            except asyncio.CancelledError:
                pass
            self._driver_task = None
        if self._sock_server is not None:
            self._sock_server.close()
            await self._sock_server.wait_closed()
            self._sock_server = None

    # -- the driver: batches of sessions through one scheduler run -------------

    async def _driver(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            while not self._queue.empty():
                batch.append(self._queue.get_nowait())
            submitted: List[Tuple[object, asyncio.Future]] = []
            for request, future in batch:
                try:
                    ops = [SessionOp.from_dict(op) for op in request.get("ops", [])]
                    session = self.server.submit(
                        ops, read_only=bool(request.get("read_only", False))
                    )
                except SessionLimitError as exc:
                    if not future.done():
                        future.set_result(
                            {"ok": False, "outcome": "shed", "error": str(exc)}
                        )
                    continue
                submitted.append((session, future))
            if submitted:
                try:
                    self.server.run(seed=self.seed)
                except ReproError as exc:
                    for session, future in submitted:
                        if not future.done():
                            future.set_result({"ok": False, "error": str(exc)})
                    continue
                self.batches_driven += 1
            for session, future in submitted:
                if not future.done():
                    future.set_result(
                        {
                            "ok": session.outcome == "committed",
                            "session": session.session_id,
                            "outcome": session.outcome,
                            "results": [_jsonable(r) for r in session.results],
                            "error": session.error,
                        }
                    )

    # -- connections -----------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                else:
                    response = await self._respond(request)
                writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
                await writer.drain()
                if isinstance(request, dict) and request.get("cmd") == "shutdown":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _respond(self, request: dict) -> dict:
        self.requests_served += 1
        command = request.get("cmd")
        if command == "ping":
            return {"ok": True, "pong": True}
        if command == "stats":
            wal = self.server.store.wal
            return {
                "ok": True,
                "stats": self.server.stats.to_dict(),
                "wal": {
                    "group_commits": wal.group_commits,
                    "group_commit_batches": list(wal.group_commit_batches),
                    "sync_barriers": wal.sync_barriers,
                    "appends": wal.appends,
                },
                "requests_served": self.requests_served,
                "batches_driven": self.batches_driven,
            }
        if command == "shutdown":
            self._stop.set()
            return {"ok": True, "stopping": True}
        if command == "session":
            future: asyncio.Future = asyncio.get_event_loop().create_future()
            await self._queue.put((request, future))
            return await future
        return {"ok": False, "error": f"unknown cmd {command!r}"}


def _attempt_request(host: str, port: int, payload: dict, timeout: float) -> dict:
    """One connection, one request line, one response line."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((json.dumps(payload) + "\n").encode())
        chunks: List[bytes] = []
        while True:
            data = conn.recv(65536)
            if not data:
                break
            chunks.append(data)
            if data.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        # the server died between accept and respond: surface it as a
        # connection-class failure so the retry loop reconnects
        raise ConnectionError("server closed the connection without responding")
    return json.loads(raw.decode())


def client_request(
    host: str,
    port: int,
    payload: dict,
    timeout: float = 10.0,
    retries: int = 0,
    retry_backoff: float = 0.1,
) -> dict:
    """Blocking one-shot client with capped reconnect.

    A refused, dropped or half-finished connection is retried up to
    ``retries`` times on a fresh socket, backing off ``retry_backoff *
    2**(attempt-1)`` wall seconds between attempts (via the sanctioned
    :func:`repro.obs.clock.sleep` — the server being restarted really
    does take wall time to come back).  Requests are whole lines over
    fresh connections, so a retry can at worst re-submit an idempotent
    read or re-run a session the server never acknowledged — the same
    at-least-once contract every line-oriented retrying client has.
    Exhausting the budget raises the typed
    :class:`repro.errors.ServerUnavailableError` (exit 1).
    """
    from repro.obs.clock import sleep

    attempts = max(1, retries + 1)
    failure: Optional[Exception] = None
    for attempt in range(1, attempts + 1):
        try:
            return _attempt_request(host, port, payload, timeout)
        except (ConnectionError, socket.timeout, OSError) as exc:
            failure = exc
            if attempt < attempts:
                sleep(retry_backoff * 2 ** (attempt - 1))
    raise ServerUnavailableError(
        f"server {host}:{port} unreachable after {attempts} attempt(s): "
        f"{failure}",
        attempts=attempts,
    )
