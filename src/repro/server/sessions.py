"""Sessions and the serving front-end.

A :class:`Session` is one logical client: a program of
:class:`SessionOp` steps executed inside one transaction (writers) or
one snapshot (read-only sessions).  Sessions are coroutines — plain
generators — advanced one step at a time by the cooperative scheduler,
which is what makes every interleaving deterministic and replayable.

The writer loop implements the queued-wait discipline end to end: a
conflicting lock raises :class:`LockWaitError`, the session suspends
(its request stays in the lock manager's FIFO), and the scheduler
resumes it once the grant arrives, at which point the operation is
retried (the lock manager dedupes the re-request).  ``DeadlockError``
aborts the session deterministically — the victim is always the
requester whose enqueue closed the cycle.

:class:`XMLServer` multiplexes N sessions over one ``XMLStore`` with
admission control: up to ``server_max_sessions`` run concurrently,
up to ``server_max_queue_depth`` wait in the backlog, and everything
beyond that is shed with :class:`SessionLimitError` (counted, so the
alert engine sees overload as ``repro_server_sessions_shed_total``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.concurrency.transactions import TransactionManager
from repro.errors import (
    ConcurrencyError,
    DeadlockError,
    LockWaitError,
    SessionLimitError,
    StorageError,
    StoreError,
    TransactionStateError,
)

#: What a session op may fail with and still leave the server healthy:
#: logical store errors (missing nodes, invalid targets) and storage
#: degradation (quarantined blocks) — both abort the session, never the
#: scheduler.
_SESSION_OP_ERRORS = (StoreError, StorageError)
from repro.server.group_commit import GroupCommitQueue, PerCommitQueue
from repro.server.snapshot import SnapshotManager


@dataclass(frozen=True)
class SessionOp:
    """One step of a client program."""

    op: str
    node_id: Optional[int] = None
    xml: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"op": self.op, "node_id": self.node_id, "xml": self.xml}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SessionOp":
        return cls(
            op=str(data.get("op", "")),
            node_id=data.get("node_id"),
            xml=str(data.get("xml", "")),
        )


#: Ops that change the store — the server materializes lazy snapshots
#: just before the first of these runs.
MUTATING_OPS = frozenset(
    {
        "load_document",
        "insert_before",
        "insert_after",
        "insert_into_first",
        "insert_into_last",
        "delete_node",
        "replace_node",
        "replace_content",
    }
)

#: Everything a writer program may contain.
WRITER_OPS = MUTATING_OPS | {"read", "xpath", "abort"}

#: Everything a read-only (snapshot) program may contain.
READER_OPS = frozenset({"read", "exists"})


class Session:
    """One logical client, driven step-by-step by the scheduler."""

    def __init__(
        self,
        server: "XMLServer",
        session_id: int,
        program,
        read_only: bool = False,
    ) -> None:
        self.server = server
        self.session_id = session_id
        self.program: List[SessionOp] = list(program)
        self.read_only = read_only
        self.txn = None
        self.snapshot = None
        self.results: List[object] = []
        #: None while running; "committed" / "aborted" / "deadlock" /
        #: "error" / "shed" once finished.
        self.outcome: Optional[str] = None
        self.error: Optional[str] = None
        #: Resource the session is suspended on (queued lock request).
        self.blocked_on: Optional[tuple] = None
        self.durable = False
        self.awaiting_durable = False
        self.ops_executed = 0
        self.lock_waits = 0
        self._gen = self._run()

    # -- scheduler interface ---------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.outcome is not None

    def runnable(self) -> bool:
        """Whether the scheduler may advance this session right now."""
        if self.finished:
            return False
        if self.awaiting_durable:
            return self.durable
        if self.blocked_on is not None and self.txn is not None:
            # suspended on a lock: resumable once the FIFO grant arrived
            return not self.server.transactions.locks.waiting_resources(
                self.txn.txn_id
            )
        return True

    def step(self) -> str:
        """Advance one scheduling step; returns a status label for the
        trace ("open" / "op" / "blocked" / "await-durable" / "done")."""
        try:
            return next(self._gen)
        except StopIteration:
            return "done"

    # -- the session program --------------------------------------------------

    def _run(self):
        if self.read_only and self.server.config.server_snapshot_reads:
            yield from self._run_snapshot_reader()
        else:
            yield from self._run_writer()

    def _run_snapshot_reader(self):
        server = self.server
        self.snapshot = server.snapshots.open(server.transactions.active.values())
        server.emit(
            "session_open",
            session=self.session_id,
            snapshot=True,
            materialized=self.snapshot.materialized,
        )
        yield "open"
        for op in self.program:
            try:
                if op.op == "read":
                    self.results.append(self.snapshot.read(op.node_id))
                elif op.op == "exists":
                    self.results.append(self.snapshot.exists(op.node_id))
                else:
                    raise ConcurrencyError(
                        f"op {op.op!r} is not valid in a read-only session"
                    )
            except _SESSION_OP_ERRORS as exc:
                # absence, never wrong answers: degraded/missing reads
                # surface as explicit error results
                self.results.append(("error", type(exc).__name__))
            self.ops_executed += 1
            server.stats.snapshot_reads += 1
            yield "op"
        self.snapshot.close()
        self._finish("committed")

    def _run_writer(self):
        server = self.server
        self.txn = server.transactions.begin()
        server.emit(
            "session_open",
            session=self.session_id,
            snapshot=False,
            txn=self.txn.txn_id,
        )
        yield "open"
        for op in self.program:
            if op.op == "abort":
                self._rollback(None, "aborted")
                return
            while True:
                try:
                    result = self._execute(op)
                    break
                except LockWaitError as exc:
                    self.blocked_on = exc.resource
                    self.lock_waits += 1
                    server.stats.lock_waits += 1
                    server.emit(
                        "session_blocked",
                        session=self.session_id,
                        txn=self.txn.txn_id,
                        resource=str(exc.resource),
                    )
                    yield "blocked"
                    self.blocked_on = None
                except DeadlockError as exc:
                    server.stats.deadlocks += 1
                    self._rollback(exc, "deadlock")
                    return
                except _SESSION_OP_ERRORS as exc:
                    server.stats.errors += 1
                    self._rollback(exc, "error")
                    return
            self.results.append(result)
            self.ops_executed += 1
            yield "op"
        wrote = self.txn.has_changes
        self.txn.commit()
        if wrote and server.group_commit.enqueue(self):
            self.awaiting_durable = True
            while not self.durable:
                yield "await-durable"
            self.awaiting_durable = False
        else:
            self.durable = True
        self._finish("committed")

    def _execute(self, op: SessionOp):
        if op.op not in WRITER_OPS:
            raise ConcurrencyError(f"unknown session op {op.op!r}")
        if op.op in MUTATING_OPS:
            # the live store is about to diverge from the committed
            # state: promote lazy snapshots while the two still agree
            self.server.snapshots.before_mutation()
        txn = self.txn
        if op.op == "read":
            return txn.read(op.node_id)
        if op.op == "xpath":
            return txn.xpath(op.xml)
        if op.op == "load_document":
            return txn.load_document(op.xml)
        if op.op == "delete_node":
            txn.delete_node(op.node_id)
            return None
        return getattr(txn, op.op)(op.node_id, op.xml)

    def _rollback(self, exc: Optional[Exception], outcome: str) -> None:
        try:
            if self.txn.has_changes:
                # defensive: lazy snapshots cannot coexist with a dirty
                # transaction, but undo does mutate the store
                self.server.snapshots.before_mutation()
            self.txn.abort()
        except TransactionStateError:  # pragma: no cover - defensive
            pass
        if exc is not None:
            self.error = f"{type(exc).__name__}: {exc}"
        self._finish(outcome)

    def _finish(self, outcome: str) -> None:
        self.outcome = outcome
        stats = self.server.stats
        stats.ops_executed += self.ops_executed
        if outcome == "committed":
            stats.sessions_committed += 1
        else:
            stats.sessions_aborted += 1
        self.server.emit(
            "session_close",
            severity="info",
            session=self.session_id,
            outcome=outcome,
            ops=self.ops_executed,
            error=self.error or "",
        )


@dataclass
class ServerStats:
    """Deterministic counters; the bridge exports them as
    ``repro_server_*`` metrics."""

    sessions_submitted: int = 0
    sessions_admitted: int = 0
    sessions_queued: int = 0
    sessions_shed: int = 0
    sessions_committed: int = 0
    sessions_aborted: int = 0
    deadlocks: int = 0
    errors: int = 0
    lock_waits: int = 0
    ops_executed: int = 0
    snapshot_reads: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class ServerReport:
    """What one scheduler run produced (see :meth:`XMLServer.run`)."""

    seed: int
    steps: int
    outcomes: Dict[int, str]
    results: Dict[int, List[object]]
    stats: Dict[str, int]
    group_commits: int
    group_commit_batches: List[int]
    sync_barriers: int
    trace: List[Tuple[int, int, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.server.report/v1",
            "seed": self.seed,
            "steps": self.steps,
            "outcomes": {str(k): v for k, v in self.outcomes.items()},
            "stats": self.stats,
            "group_commits": self.group_commits,
            "group_commit_batches": list(self.group_commit_batches),
            "sync_barriers": self.sync_barriers,
        }


class XMLServer:
    """Session front-end multiplexing logical clients over one store."""

    def __init__(self, store) -> None:
        self.store = store
        self.config = store.config
        self.transactions = TransactionManager(
            store, wait_on_conflict=True, redo_buffering=True
        )
        self.snapshots = SnapshotManager(store)
        if self.config.server_group_commit:
            # commits defer their barrier to the shared group flush
            self.transactions.commit_sync = False
            self.group_commit = GroupCommitQueue(
                store.wal,
                max_batch=self.config.server_group_commit_max_batch,
                event_log=store.event_log,
            )
        else:
            self.group_commit = PerCommitQueue(store.wal, event_log=store.event_log)
        self.stats = ServerStats()
        #: Admitted sessions, scheduler-visible.
        self.sessions: List[Session] = []
        #: Submitted but waiting for a free slot.
        self.backlog: List[Session] = []
        self._next_session_id = 1
        # let the metrics bridge and EXPLAIN find the serving counters
        store.server = self

    # -- admission -------------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return sum(1 for s in self.sessions if not s.finished)

    def submit(self, program, read_only: bool = False) -> Session:
        """Admit (or queue, or shed) one client program."""
        self.stats.sessions_submitted += 1
        session = Session(self, self._next_session_id, program, read_only=read_only)
        self._next_session_id += 1
        if self.active_sessions < self.config.server_max_sessions:
            self.sessions.append(session)
            self.stats.sessions_admitted += 1
        elif len(self.backlog) < self.config.server_max_queue_depth:
            self.backlog.append(session)
            self.stats.sessions_queued += 1
        else:
            self.stats.sessions_shed += 1
            session.outcome = "shed"
            self.emit(
                "session_shed",
                severity="warning",
                session=session.session_id,
                active=self.active_sessions,
                backlog=len(self.backlog),
            )
            raise SessionLimitError(
                f"session {session.session_id} shed: "
                f"{self.active_sessions} active (max "
                f"{self.config.server_max_sessions}), backlog full "
                f"(max {self.config.server_max_queue_depth})"
            )
        return session

    def admit_from_backlog(self) -> None:
        while self.backlog and self.active_sessions < self.config.server_max_sessions:
            session = self.backlog.pop(0)
            self.sessions.append(session)
            self.stats.sessions_admitted += 1

    # -- execution -------------------------------------------------------------

    def run(self, seed: int = 0, script=None, max_steps: int = 100_000) -> ServerReport:
        """Drive every admitted (and backlogged) session to completion
        under the cooperative scheduler; returns the run report."""
        from repro.server.scheduler import CooperativeScheduler

        scheduler = CooperativeScheduler(self, seed=seed, script=script)
        scheduler.run(max_steps=max_steps)
        return self.report(seed=seed, steps=scheduler.steps, trace=scheduler.trace)

    def report(self, seed: int = 0, steps: int = 0, trace=None) -> ServerReport:
        wal = self.store.wal
        return ServerReport(
            seed=seed,
            steps=steps,
            outcomes={s.session_id: s.outcome for s in self.sessions},
            results={s.session_id: list(s.results) for s in self.sessions},
            stats=self.stats.to_dict(),
            group_commits=wal.group_commits,
            group_commit_batches=list(wal.group_commit_batches),
            sync_barriers=wal.sync_barriers,
            trace=list(trace or []),
        )

    # -- plumbing ----------------------------------------------------------------

    def emit(self, kind: str, severity: str = "debug", **fields) -> None:
        log = self.store.event_log
        if log is not None and log.enabled:
            log.emit("server", kind, severity=severity, **fields)
