"""Snapshot reads: a consistent committed view that never takes locks.

Read-only sessions must not queue behind writers' X locks (the whole
point of serving mixed traffic), so instead of S-locking their way
through the store they pin the *committed* state as of snapshot open:

* If no active transaction holds uncommitted changes, the live store
  **is** the committed state — the snapshot stays *lazy* (zero copy) and
  serves reads straight from the store until the moment a writer is
  about to mutate it, at which point the server's ``before_mutation``
  hook materializes the view (the lazy discipline the paper's title
  endorses: copy only when someone actually writes).
* If writers do hold changes, the snapshot materializes eagerly: it
  captures the live token sequence (with the real node ids, regenerated
  per range exactly like the locator does) and applies the writers'
  logical undo entries — the same inverses ``Transaction.abort`` runs —
  to a private token-list model, yielding the committed content.

Reads over the materialized model are exact in content *and* ids: the
undo entries record the original ids of any content they re-create, so
nodes a writer had deleted reappear in the snapshot under their
committed ids.

Degraded interaction: capturing walks real blocks, so a quarantined
block raises ``ChecksumError`` (the snapshot fails loudly rather than
fabricate content), and reads of ids a repair could not salvage raise
``NodeNotFoundError`` — absence, never wrong answers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.concurrency.tokendoc import TokenDocument, capture_document

__all__ = ["TokenDocument", "capture_document", "Snapshot", "SnapshotManager"]


class Snapshot:
    """One read-only session's pinned view."""

    def __init__(self, manager: "SnapshotManager", model: Optional[TokenDocument]) -> None:
        self._manager = manager
        self._model = model
        self.closed = False

    @property
    def materialized(self) -> bool:
        return self._model is not None

    def _materialize_from_live(self) -> None:
        """Called by the manager the moment a writer is about to mutate:
        the live store still equals the committed state this snapshot
        pinned, so a plain capture suffices."""
        if self._model is None:
            self._model = capture_document(self._manager.store)

    def read(self, node_id: Optional[int] = None) -> str:
        if self._model is not None:
            return self._model.read(node_id)
        return self._manager.store.read(node_id)

    def exists(self, node_id: int) -> bool:
        if self._model is not None:
            return self._model.exists(node_id)
        return self._manager.store.exists(node_id)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._manager._forget(self)


class SnapshotManager:
    """Hands out snapshots and materializes the lazy ones just in time."""

    def __init__(self, store) -> None:
        self.store = store
        self._lazy: List[Snapshot] = []
        #: Materializations performed (lazy promotions + eager opens) —
        #: the "how often did laziness pay off" counter.
        self.materializations = 0
        self.lazy_opens = 0
        self.eager_opens = 0

    def open(self, active_transactions) -> Snapshot:
        """Pin the committed state.  ``active_transactions`` is the live
        transaction set (the manager's ``active`` dict values)."""
        dirty = [txn for txn in active_transactions if txn.has_changes]
        if not dirty:
            self.lazy_opens += 1
            snapshot = Snapshot(self, None)
            self._lazy.append(snapshot)
            return snapshot
        self.eager_opens += 1
        self.materializations += 1
        model = capture_document(self.store)
        # newest transaction's inverses first: under strict 2PL the
        # write sets are disjoint, so cross-transaction order cannot
        # matter, but a deterministic order keeps runs byte-identical
        for txn in sorted(dirty, key=lambda t: t.txn_id, reverse=True):
            for entry in reversed(txn.undo_entries):
                entry.apply(model, log=False)
        return Snapshot(self, model)

    def before_mutation(self) -> None:
        """A writer is about to change the store: promote every lazy
        snapshot to a materialized view of the still-committed state."""
        if not self._lazy:
            return
        for snapshot in self._lazy:
            snapshot._materialize_from_live()
            self.materializations += 1
        self._lazy.clear()

    def _forget(self, snapshot: Snapshot) -> None:
        if snapshot in self._lazy:
            self._lazy.remove(snapshot)

    @property
    def open_lazy(self) -> int:
        return len(self._lazy)
