"""Crash recovery: replaying the logical WAL against a recovered store.

Recovery contract
-----------------
* The store checkpoints by flushing its buffer pool and catalog and writing
  a CHECKPOINT record.
* Every mutating operation appends a logical record *before* mutating
  in-memory state (write-ahead rule).
* After a crash, the state on disk is the last checkpoint's state;
  :func:`replay` re-executes the logged operations after the last
  checkpoint, in LSN order, restoring the pre-crash logical state.

The payload codecs here are shared between the store (encoding) and
recovery (decoding) so they cannot drift apart.
"""

from __future__ import annotations

import struct
from typing import Any, List, Protocol

from repro.errors import WALError
from repro.log import get_logger
from repro.storage.wal import LogRecord, RecordType, WriteAheadLog

_LEN = struct.Struct("<I")

_log = get_logger("storage.recovery")


def encode_op_payload(id_bytes: bytes, xml_text: str) -> bytes:
    """Encode an update operation's (target id, XML fragment) payload."""
    xml_bytes = xml_text.encode("utf-8")
    return _LEN.pack(len(id_bytes)) + id_bytes + xml_bytes


def decode_op_payload(payload: bytes) -> tuple:
    """Inverse of :func:`encode_op_payload`; returns (id_bytes, xml_text)."""
    if len(payload) < _LEN.size:
        raise WALError("truncated operation payload")
    (id_len,) = _LEN.unpack_from(payload, 0)
    start = _LEN.size
    if len(payload) < start + id_len:
        raise WALError("truncated identifier in operation payload")
    id_bytes = payload[start : start + id_len]
    xml_text = payload[start + id_len :].decode("utf-8")
    return id_bytes, xml_text


class ReplayableStore(Protocol):
    """The slice of the store interface recovery needs."""

    def decode_node_id(self, id_bytes: bytes) -> Any: ...

    def load_document(self, xml_text: str, log: bool = True) -> Any: ...

    def insert_before(self, node_id: Any, xml_text: str, log: bool = True) -> Any: ...

    def insert_after(self, node_id: Any, xml_text: str, log: bool = True) -> Any: ...

    def insert_into_first(self, node_id: Any, xml_text: str, log: bool = True) -> Any: ...

    def insert_into_last(self, node_id: Any, xml_text: str, log: bool = True) -> Any: ...

    def delete_node(self, node_id: Any, log: bool = True) -> Any: ...

    def replace_node(self, node_id: Any, xml_text: str, log: bool = True) -> Any: ...

    def replace_content(self, node_id: Any, xml_text: str, log: bool = True) -> Any: ...


def replay_record(store: ReplayableStore, record: LogRecord) -> None:
    """Re-execute one logical log record against ``store``."""
    rt = record.record_type
    if rt == RecordType.CHECKPOINT:
        return
    if rt == RecordType.TXN_COMMIT:
        _replay_commit(store, record.payload)
        return
    _replay_op(store, rt, record.payload)


def _replay_op(store: ReplayableStore, rt: int, payload: bytes) -> None:
    id_bytes, xml_text = decode_op_payload(payload)
    if rt == RecordType.LOAD_DOCUMENT:
        store.load_document(xml_text, log=False)
        return
    node_id = store.decode_node_id(id_bytes)
    if rt == RecordType.INSERT_BEFORE:
        store.insert_before(node_id, xml_text, log=False)
    elif rt == RecordType.INSERT_AFTER:
        store.insert_after(node_id, xml_text, log=False)
    elif rt == RecordType.INSERT_INTO_FIRST:
        store.insert_into_first(node_id, xml_text, log=False)
    elif rt == RecordType.INSERT_INTO_LAST:
        store.insert_into_last(node_id, xml_text, log=False)
    elif rt == RecordType.DELETE_NODE:
        store.delete_node(node_id, log=False)
    elif rt == RecordType.REPLACE_NODE:
        store.replace_node(node_id, xml_text, log=False)
    elif rt == RecordType.REPLACE_CONTENT:
        store.replace_content(node_id, xml_text, log=False)
    else:
        raise WALError(f"unknown log record type {rt}")


def _replay_commit(store: ReplayableStore, payload: bytes) -> None:
    """Re-execute one committed transaction (a ``TXN_COMMIT`` frame).

    Each operation pins the id allocator to the cursor it observed live
    (see :mod:`repro.storage.txnlog`), so re-execution assigns identical
    node ids regardless of how the committing transactions interleaved;
    afterwards the allocator is restored to its high-water mark so later
    records never re-allocate an id the transaction consumed.
    """
    from repro.storage.txnlog import decode_commit

    commit = decode_commit(payload)
    scheme = getattr(store, "id_scheme", None)
    seek = getattr(scheme, "seek", None)
    high_water = scheme.high_water_mark if seek is not None else 0
    for op in commit.ops:
        if seek is not None and op.id_cursor_before >= 1:
            seek(op.id_cursor_before)
        _replay_op(store, op.record_type, op.payload)
        if seek is not None:
            high_water = max(
                high_water, op.id_cursor_after, scheme.high_water_mark
            )
    if seek is not None:
        seek(max(high_water, 1))


def replay(store: ReplayableStore, wal: WriteAheadLog) -> List[LogRecord]:
    """Replay everything after the last checkpoint; returns the records
    replayed (useful for assertions in tests).

    Soundness contract: the store must be at exactly the last checkpoint's
    state.  That holds when it was reopened from a checkpoint catalog *and*
    no post-checkpoint dirty page reached the device (the buffer pool did
    not evict between the checkpoint and the crash; block deallocations
    are already safe because the pool defers them to the next flush).
    Page-LSN-guarded physiological redo, which lifts the eviction
    restriction, is out of scope (see DESIGN.md); when the restriction
    cannot be guaranteed, use :func:`replay_all` on a fresh store instead.
    """
    pending = wal.records_after_last_checkpoint()
    _log.info("replaying %d WAL record(s) after last checkpoint", len(pending))
    _emit_recovery_event(store, "replay", pending)
    for record in pending:
        replay_record(store, record)
    _emit_recovery_event(store, "replay_done", pending)
    # pending records mean the previous incarnation did not close
    # cleanly (a clean close checkpoints, leaving zero) — that is an
    # incident worth a bundle; the getattr guard keeps bare replayable
    # stores (tests, repair scaffolding) working
    if pending:
        incidents = getattr(store, "incidents", None)
        if incidents is not None and incidents.enabled:
            incidents.trigger(
                "crash-recovery",
                key="replay",
                records=len(pending),
                first_lsn=pending[0].lsn,
                last_lsn=pending[-1].lsn,
            )
    return pending


def replay_all(store: ReplayableStore, wal: WriteAheadLog) -> List[LogRecord]:
    """Logical full restore: replay the *entire* log (checkpoint markers
    ignored) against a fresh, empty store.  Always sound; costs a full
    re-execution of the operation history."""
    records = [
        record
        for record in wal.records()
        if record.record_type != RecordType.CHECKPOINT
    ]
    _log.info("full restore: replaying %d WAL record(s)", len(records))
    _emit_recovery_event(store, "full_restore", records)
    for record in records:
        replay_record(store, record)
    _emit_recovery_event(store, "full_restore_done", records)
    return records


def _emit_recovery_event(store, kind: str, records: List[LogRecord]) -> None:
    """Recovery work shows up in the structured event log (when the store
    has one), so EXPLAIN can attribute post-crash cost to replay."""
    event_log = getattr(store, "event_log", None)
    if event_log is None or not event_log.enabled:
        return
    event_log.emit(
        "recovery", kind, severity="info",
        records=len(records),
        first_lsn=records[0].lsn if records else None,
        last_lsn=records[-1].lsn if records else None,
    )
