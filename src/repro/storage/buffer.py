"""Buffer pool with LRU replacement, pin counts and write-back caching.

The pool caches *decoded* :class:`~repro.storage.pages.SlottedPage` objects
keyed by block number.  A fetched page is pinned; a pinned page is never
evicted.  Dirty pages are written back (as full block images) on eviction
and on :meth:`BufferPool.flush_all`.

Device I/O statistics (and hence the simulated clock used by benchmarks)
only advance on real block reads and writes, so the buffer pool's hit rate
directly shapes benchmark results — exactly as in the paper's setup, where
MySQL's buffer pool stood between the store and the disk.

Block images pass through a :class:`~repro.storage.pages.PageCodec` on
the way in and out; with checksums enabled the codec verifies every
fetched image and the pool *quarantines* blocks that fail persistently: a
bounded number of re-reads (with optional backoff) distinguishes a
transient fault from real media damage, after which the block is marked
bad and every further fetch fails fast with the original
:class:`~repro.errors.ChecksumError` — no retry storms, no repeated
device reads of a rotten block.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.obs import clock

from repro.errors import BufferPoolExhaustedError, ChecksumError, StorageError
from repro.log import get_logger
from repro.obs.events import NOOP_EVENT_LOG
from repro.obs.heatmap import NOOP_HEATMAP
from repro.obs.incident import NOOP_INCIDENTS
from repro.storage.disk import BlockDevice
from repro.storage.pages import PageCodec, SlottedPage

DEFAULT_POOL_CAPACITY = 64

_log = get_logger("storage.buffer")


@dataclass
class BufferStats:
    """Hit/miss counters for a :class:`BufferPool`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    checksum_errors: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.checksum_errors = 0

    def register_metrics(self, registry) -> None:
        """Project these counters into a metrics registry."""
        accesses = registry.counter(
            "repro_buffer_accesses_total",
            "Buffer-pool page requests by outcome.",
            labelnames=("result",),
        )
        accesses.labels(result="hit").inc(self.hits)
        accesses.labels(result="miss").inc(self.misses)
        registry.counter(
            "repro_buffer_evictions_total", "Frames evicted to admit new pages."
        ).inc(self.evictions)
        registry.counter(
            "repro_buffer_dirty_writebacks_total", "Dirty pages written back."
        ).inc(self.dirty_writebacks)
        registry.gauge(
            "repro_buffer_hit_rate", "Fraction of requests served from memory."
        ).set(self.hit_rate)
        registry.counter(
            "repro_storage_checksum_errors_total",
            "Block images that failed checksum verification on fetch.",
        ).inc(self.checksum_errors)


class _Frame:
    __slots__ = ("page", "pin_count", "dirty")

    def __init__(self, page: SlottedPage) -> None:
        self.page = page
        self.pin_count = 0
        self.dirty = False


class PageGuard:
    """Context manager returned by :meth:`BufferPool.fetch`.

    Unpins the page on exit.  Call :meth:`mark_dirty` after mutating the
    page so the pool writes it back.
    """

    __slots__ = ("_pool", "block_no", "_frame", "_released")

    def __init__(self, pool: "BufferPool", block_no: int, frame: _Frame) -> None:
        self._pool = pool
        self.block_no = block_no
        self._frame = frame
        self._released = False

    @property
    def page(self) -> SlottedPage:
        return self._frame.page

    def mark_dirty(self) -> None:
        self._frame.dirty = True

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._pool._unpin(self.block_no)

    def __enter__(self) -> "PageGuard":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class BufferPool:
    """Fixed-capacity LRU cache of decoded pages over a block device."""

    def __init__(
        self,
        device: BlockDevice,
        capacity: int = DEFAULT_POOL_CAPACITY,
        codec: Optional[PageCodec] = None,
        read_retries: int = 2,
        retry_backoff: float = 0.0,
    ) -> None:
        if capacity < 1:
            raise StorageError("buffer pool capacity must be >= 1")
        self.device = device
        self.capacity = capacity
        #: Block-image codec; the pass-through default keeps direct
        #: ``BufferPool(device)`` construction (tests, tools) legacy-raw.
        self.codec = codec if codec is not None else PageCodec(device.block_size)
        #: Bounded re-reads before a failing block is quarantined (covers
        #: transient faults without retry storms) and the sleep between
        #: them (0.0 keeps simulated workloads instant).
        self.read_retries = read_retries
        self.retry_backoff = retry_backoff
        self.stats = BufferStats()
        #: Blocks that failed verification even after re-reads: block_no
        #: -> the ChecksumError to replay on every further fetch.
        self._quarantined: Dict[int, ChecksumError] = {}
        #: Structured event log / block heatmap (no-ops unless the owning
        #: store attaches live ones).
        self.event_log = NOOP_EVENT_LOG
        self.heatmap = NOOP_HEATMAP
        self.incidents = NOOP_INCIDENTS
        # OrderedDict in LRU order: least-recently-used first.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        # Blocks logically freed but not yet released to the device.
        # Deallocation is deferred to flush_all() so that a crash (drop_all)
        # leaves every block the last checkpoint's catalog references
        # intact — the deallocation analogue of write-ahead logging.
        self._pending_frees: list = []

    @property
    def cached_pages(self) -> int:
        """Pages currently resident (pinned or not)."""
        return len(self._frames)

    # -- public API ---------------------------------------------------------

    def fetch(self, block_no: int) -> PageGuard:
        """Pin and return the page in ``block_no``.

        Raises :class:`~repro.errors.ChecksumError` when the block is
        quarantined or its device image fails verification even after
        the bounded re-reads.
        """
        quarantined = self._quarantined.get(block_no)
        if quarantined is not None:
            raise quarantined
        frame = self._frames.get(block_no)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(block_no)
            if self.heatmap.enabled:
                self.heatmap.record_fetch(block_no, hit=True)
        else:
            self.stats.misses += 1
            frame = _Frame(self._read_verified(block_no))
            self._admit(block_no, frame)
            if self.heatmap.enabled:
                self.heatmap.record_fetch(block_no, hit=False)
        frame.pin_count += 1
        return PageGuard(self, block_no, frame)

    def _read_verified(self, block_no: int) -> SlottedPage:
        """Read and decode one block, retrying transient failures; a
        persistent failure quarantines the block and re-raises."""
        attempts = 1 + max(0, self.read_retries)
        error: Optional[ChecksumError] = None
        for attempt in range(attempts):
            if attempt and self.retry_backoff > 0.0:
                clock.sleep(self.retry_backoff * attempt)
            data = self.device.read_block(block_no)
            try:
                return self.codec.decode(data, block_no)
            except ChecksumError as exc:
                error = exc
        assert error is not None
        self.stats.checksum_errors += 1
        self.quarantine(block_no, error, retries=attempts - 1)
        raise error

    def quarantine(
        self,
        block_no: int,
        error: ChecksumError,
        retries: int = 0,
        source: str = "fetch",
        owner=None,
    ) -> None:
        """Mark ``block_no`` bad: every further fetch fails fast with
        ``error`` until :meth:`clear_quarantine`.  ``source``/``owner``
        say who detected the fault ("fetch" on the read path, "scrub"
        with the owning component from the scrubber) — they enrich the
        incident bundle, not the event."""
        self._quarantined[block_no] = error
        _log.error("quarantined block %d: %s", block_no, error)
        if self.event_log.enabled:
            self.event_log.emit(
                "fault",
                "checksum_error",
                severity="error",
                block=block_no,
                expected_crc=error.expected_crc,
                actual_crc=error.actual_crc,
                retries=retries,
            )
        # trigger after the quarantine map and event are in place, so
        # the bundle's quarantine.json and recorder ring include this
        # very block
        if self.incidents.enabled:
            self.incidents.trigger(
                "checksum-quarantine",
                key=str(block_no),
                block=block_no,
                expected_crc=error.expected_crc,
                actual_crc=error.actual_crc,
                retries=retries,
                source=source,
                owner=owner,
            )

    def is_quarantined(self, block_no: int) -> bool:
        return block_no in self._quarantined

    def quarantined_blocks(self) -> list:
        """Quarantined block numbers, ascending."""
        return sorted(self._quarantined)

    def clear_quarantine(self, block_no: Optional[int] = None) -> None:
        """Forget quarantine state for one block (or all) after repair."""
        if block_no is None:
            self._quarantined.clear()
        else:
            self._quarantined.pop(block_no, None)

    def new_page(self, stream: int = 0) -> PageGuard:
        """Allocate a fresh block (from ``stream``'s extents) and return
        its (empty, dirty) page."""
        block_no = self.device.allocate_block(stream)
        frame = _Frame(self.codec.new_page())
        frame.dirty = True
        self._admit(block_no, frame)
        frame.pin_count += 1
        return PageGuard(self, block_no, frame)

    def free_page(self, block_no: int) -> None:
        """Drop a page from the pool and schedule its block for release.

        The device-level free happens at the next :meth:`flush_all` (i.e.
        checkpoint); until then the block's last flushed content remains
        readable, so a crash recovers the checkpointed state intact.
        """
        frame = self._frames.pop(block_no, None)
        if frame is not None and frame.pin_count:
            raise StorageError(f"cannot free pinned block {block_no}")
        self._pending_frees.append(block_no)

    def flush(self, block_no: int) -> None:
        """Write back one dirty page (keeps it cached)."""
        frame = self._frames.get(block_no)
        if frame is not None and frame.dirty:
            self.device.write_block(block_no, self.codec.encode(frame.page, block_no))
            self.stats.dirty_writebacks += 1
            frame.dirty = False
            if self.heatmap.enabled:
                self.heatmap.record_write(block_no)

    def flush_all(self) -> None:
        """Write back every dirty page, release deferred frees, and sync."""
        flushed = 0
        for block_no in list(self._frames):
            if self._frames[block_no].dirty:
                flushed += 1
            self.flush(block_no)
        freed = len(self._pending_frees)
        for block_no in self._pending_frees:
            self.device.free_block(block_no)
        self._pending_frees.clear()
        self.device.sync()
        if self.event_log.enabled:
            self.event_log.emit("buffer", "flush_all", flushed=flushed, freed=freed)

    def drop_all(self) -> None:
        """Forget every cached page *without* writing back, and abandon
        deferred frees (crash simulation: the blocks stay allocated on the
        device, wasting space but keeping the last checkpoint readable)."""
        for frame in self._frames.values():
            if frame.pin_count:
                raise StorageError("cannot drop pinned pages")
        self._frames.clear()
        self._pending_frees.clear()

    def cached_blocks(self) -> Iterator[int]:
        return iter(self._frames)

    def dirty_blocks(self) -> list:
        """Blocks whose cached page differs from the device image.

        The crash-consistency harness inspects this to relate in-memory
        state to what a simulated crash would lose.
        """
        return [no for no, frame in self._frames.items() if frame.dirty]

    @property
    def pending_frees(self) -> int:
        """Blocks logically freed but not yet released to the device."""
        return len(self._pending_frees)

    def pending_free_blocks(self) -> list:
        """The deferred-free block numbers themselves (scrubber: their
        device images are garbage-to-be and must not be verified)."""
        return list(self._pending_frees)

    @property
    def num_cached(self) -> int:
        return len(self._frames)

    # -- internals ----------------------------------------------------------

    def _admit(self, block_no: int, frame: _Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[block_no] = frame

    def _evict_one(self) -> None:
        for victim_no, victim in self._frames.items():
            if victim.pin_count == 0:
                if victim.dirty:
                    self.device.write_block(
                        victim_no, self.codec.encode(victim.page, victim_no)
                    )
                    self.stats.dirty_writebacks += 1
                    if self.heatmap.enabled:
                        self.heatmap.record_write(victim_no)
                del self._frames[victim_no]
                self.stats.evictions += 1
                _log.debug("evicted block %d (dirty=%s)", victim_no, victim.dirty)
                if self.event_log.enabled:
                    self.event_log.emit("buffer", "evict",
                                        block=victim_no, dirty=victim.dirty)
                return
        _log.warning("buffer pool exhausted: all %d frames pinned", self.capacity)
        raise BufferPoolExhaustedError(
            f"all {self.capacity} frames are pinned; cannot evict"
        )

    def _unpin(self, block_no: int) -> None:
        frame = self._frames.get(block_no)
        if frame is None:
            return  # page was explicitly freed while the guard was alive
        if frame.pin_count <= 0:
            raise StorageError(f"unpin of unpinned block {block_no} (bug)")
        frame.pin_count -= 1
