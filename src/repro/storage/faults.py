"""Deterministic fault injection under the simulated block device.

This module is the crash-consistency counterpart of
:class:`~repro.storage.disk.InstrumentedDevice`: where the instrumented
device *counts* every access, :class:`FaultyDisk` decides which accesses
become **durable**.  It models the volatile/stable split of a real disk
stack:

* ``write_block`` lands in a *volatile* write cache (the OS page cache);
* ``sync`` flushes the cache to the stable backend — optionally in a
  seeded-random order, so a crash mid-sync persists an arbitrary subset
  of the writes issued since the last barrier (write reordering);
* a crash (:meth:`FaultyDisk.crash`) discards everything volatile; the
  backend then holds exactly the durable image recovery must start from;
* the block being written when a crash fires may be **torn**: only a
  seeded prefix of its sectors reaches stable storage.

Crash points are driven by a shared :class:`FaultClock`: every durable-
state-relevant I/O (block write, per-block sync flush, WAL frame append)
ticks the clock, and the clock raises
:class:`~repro.errors.SimulatedCrashError` when the configured point is
reached.  A dry run with ``crash_at=None`` counts the points; the
torture harness (:mod:`repro.testing.torture`) then replays the same
seeded workload once per point, crashing at each.

:class:`WALFaultAdapter` extends the same clock under the write-ahead
log: a crash during an append persists only a prefix of the record frame
(a torn WAL tail), which the WAL's CRC framing must detect and discard.

Beyond crash faults, the disk injects **media faults** — the silent-
corruption half of the storage-failure taxonomy: ``bitrot`` (flip bits
in a block after it reaches stable storage), ``lost_write`` (drop a
synced write but acknowledge it) and ``misdirect`` (persist a synced
write to the wrong block).  Media faults draw from a *separate* seeded
stream (``seed ^ 0xB17B07``) and never tick the fault clock, so arming
them leaves crash-point enumeration and the shuffle order bit-identical
to a media-free run with the same seed.  Every injected fault lands in
the :attr:`FaultyDisk.media_faults` ledger so the torture harness can
assert that each one was detected, healed by a later overwrite, or
provably unreachable.

All fault classes live in the :data:`FAULT_CLASSES` registry — the
single source for :meth:`FaultConfig.from_classes`, the CLI help text
and the CI matrix values.

Everything is deterministic given ``FaultConfig.seed``: the shuffle
order, tear offsets and crash point are all drawn from one
``random.Random`` stream, so a failing (seed, crash point) pair is an
exact reproduction recipe.

The layer is strictly opt-in: stores built without a ``FaultyDisk`` in
their device chain take no new branches, and a pass-through
``FaultyDisk`` (no crash point armed) is cost-invisible — the simulated
clock is charged by the instrumented wrapper above it, which accounts
identically whatever backend it wraps (pinned by the zero-cost tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import BlockNotFoundError, SimulatedCrashError, StorageError
from repro.log import get_logger
from repro.obs.events import NOOP_EVENT_LOG
from repro.storage.disk import BlockDevice, InstrumentedDevice

_log = get_logger("storage.faults")

#: Sector granularity of torn writes: a crash persists a whole number of
#: sectors of the in-flight block, never a partial sector.
DEFAULT_SECTOR_SIZE = 512

#: XOR'd into ``FaultConfig.seed`` for the media-fault stream, keeping it
#: independent of the crash clock's stream ("BITROT" in hexspeak).
_MEDIA_SEED_SALT = 0xB17B07


@dataclass(frozen=True)
class FaultClass:
    """One entry of the shared fault-class registry."""

    name: str
    #: ``"crash"`` (volatile-cache / crash-point faults, on by default via
    #: ``all``) or ``"media"`` (silent-corruption faults, opt-in by name).
    kind: str
    description: str


#: The single source of truth for fault-class names: the
#: :meth:`FaultConfig.from_classes` parser, the CLI ``torture
#: --fault-classes`` help text and the CI matrix values are all derived
#: from this tuple, so a new class cannot drift out of the help text.
FAULT_CLASSES = (
    FaultClass(
        "torn-page", "crash",
        "tear the block image in flight when the crash point fires mid-sync",
    ),
    FaultClass(
        "torn-wal", "crash",
        "tear the WAL frame being appended when the crash point fires there",
    ),
    FaultClass(
        "reorder", "crash",
        "flush each sync barrier's writes in seeded-random order",
    ),
    FaultClass(
        "bitrot", "media",
        "flip k seeded bits in a block after it reaches stable storage",
    ),
    FaultClass(
        "lost_write", "media",
        "silently drop a synced write but acknowledge it (stale block image)",
    ),
    FaultClass(
        "misdirect", "media",
        "persist a synced write to the wrong block (both blocks end up bad)",
    ),
)

CRASH_CLASSES = tuple(c.name for c in FAULT_CLASSES if c.kind == "crash")
MEDIA_CLASSES = tuple(c.name for c in FAULT_CLASSES if c.kind == "media")


def fault_classes_help() -> str:
    """One-line help text for ``--fault-classes``, registry-derived."""
    crash = ", ".join(CRASH_CLASSES)
    media = ", ".join(MEDIA_CLASSES)
    return (
        f"comma list of fault classes — crash: {crash}; media: {media}; "
        f"or all (= every crash class; media classes are opt-in by name) / none"
    )


@dataclass
class FaultConfig:
    """What the fault layer is allowed to do, and when to crash.

    ``crash_at=None`` is the counting (dry-run) mode: the clock ticks but
    never fires, and ``FaultClock.points`` afterwards holds every crash
    point the workload exposes.
    """

    seed: int = 0
    #: crash when the clock reaches this tick (0-based); None = never
    crash_at: Optional[int] = None
    #: tear the block image being flushed when the crash fires mid-sync
    torn_page_writes: bool = True
    #: tear the WAL frame being appended when the crash fires there
    torn_wal_appends: bool = True
    #: flush the volatile cache in seeded-random order on sync, so a
    #: mid-sync crash persists an arbitrary subset of the barrier's writes
    reorder_sync: bool = True
    sector_size: int = DEFAULT_SECTOR_SIZE
    #: media faults (silent corruption after the sync barrier): opt-in,
    #: drawn from a separate seeded stream so they never perturb the
    #: crash clock (see the module docstring)
    bitrot: bool = False
    lost_writes: bool = False
    misdirected_writes: bool = False
    #: per-flushed-block probability of injecting one media fault
    media_fault_rate: float = 0.05
    #: bits flipped per bitrot event
    bitrot_bits: int = 3

    @property
    def media_faults_enabled(self) -> bool:
        return self.bitrot or self.lost_writes or self.misdirected_writes

    @classmethod
    def from_classes(
        cls,
        classes: str,
        seed: int = 0,
        crash_at: Optional[int] = None,
        media_fault_rate: Optional[float] = None,
    ) -> "FaultConfig":
        """Build a config from a comma-separated fault-class list.

        Class names come from :data:`FAULT_CLASSES` (crash:
        ``torn-page``, ``torn-wal``, ``reorder``; media: ``bitrot``,
        ``lost_write``, ``misdirect``).  ``all`` (or an empty string)
        enables every *crash* class — media classes are opt-in by name,
        alone or alongside crash classes; ``none`` disables everything.
        """
        overrides = {}
        if media_fault_rate is not None:
            overrides["media_fault_rate"] = media_fault_rate
        if classes in ("", "all"):
            return cls(seed=seed, crash_at=crash_at, **overrides)
        wanted = {token.strip() for token in classes.split(",") if token.strip()}
        wanted.discard("none")
        known = {c.name for c in FAULT_CLASSES}
        unknown = wanted - known
        if unknown:
            raise StorageError(
                f"unknown fault class(es) {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(
            seed=seed,
            crash_at=crash_at,
            torn_page_writes="torn-page" in wanted,
            torn_wal_appends="torn-wal" in wanted,
            reorder_sync="reorder" in wanted,
            bitrot="bitrot" in wanted,
            lost_writes="lost_write" in wanted,
            misdirected_writes="misdirect" in wanted,
            **overrides,
        )


class FaultClock:
    """Shared crash-point counter for every fault site of one store.

    Each durability-relevant I/O calls :meth:`tick` with a label; the
    clock records the label (so reports can name each point) and returns
    True when that tick is the armed crash point.  The *caller* then
    applies its partial durable effect (torn sectors, WAL prefix) and
    calls :meth:`crash` to raise.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.ticks = 0
        #: label of every point seen so far, in order
        self.points: List[str] = []
        self.crashed = False
        self.crash_label: Optional[str] = None

    def tick(self, label: str) -> bool:
        """Register one crash point; True when it is time to die."""
        point = self.ticks
        self.ticks += 1
        self.points.append(label)
        return self.config.crash_at is not None and point == self.config.crash_at

    def crash(self, label: str) -> "NoReturn":  # type: ignore[name-defined]
        self.crashed = True
        self.crash_label = label
        _log.warning("simulated crash at point %d: %s", self.ticks - 1, label)
        raise SimulatedCrashError(
            f"simulated crash at I/O point {self.ticks - 1} ({label})"
        )


@dataclass
class MediaFault:
    """One injected silent-corruption event, for ledger accounting.

    ``pending_blocks`` holds the blocks whose stable image is still wrong
    because of this fault; a later successful flush of a block removes it
    (the damage was overwritten — *healed*).  The torture harness asserts
    every unhealed fault is either detected or provably unreachable.
    """

    kind: str  # "bitrot" | "lost_write" | "misdirect"
    block_no: int  # the write's intended block
    target_block: Optional[int]  # where a misdirected write landed
    sync_attempt: int  # FaultyDisk.sync_attempts when injected
    pending_blocks: set = field(default_factory=set)

    @property
    def healed(self) -> bool:
        return not self.pending_blocks

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "block_no": self.block_no,
            "target_block": self.target_block,
            "sync_attempt": self.sync_attempt,
            "pending_blocks": sorted(self.pending_blocks),
            "healed": self.healed,
        }


class FaultyDisk(BlockDevice):
    """Volatile-cache block device with deterministic crash semantics.

    Wraps a stable ``backend`` (normally a
    :class:`~repro.storage.disk.MemoryBlockDevice`).  Reads see the
    volatile cache (the live process's view); only :meth:`sync` moves
    writes to the backend.  :meth:`crash` discards the volatile state, so
    the backend afterwards holds exactly what a real disk would after
    power loss — including torn and reordered writes when enabled.

    Allocations go straight to the backend (they model file growth, not
    data): after a crash the blocks stay allocated with stale content,
    exactly the "wasted but readable" guarantee the buffer pool's
    deferred-free discipline relies on.  Frees are volatile and applied
    at the next sync, mirroring that discipline at device level.
    """

    def __init__(
        self,
        backend: BlockDevice,
        config: Optional[FaultConfig] = None,
        clock: Optional[FaultClock] = None,
    ) -> None:
        super().__init__(backend.block_size)
        self.backend = backend
        self.config = config if config is not None else FaultConfig()
        self.clock = clock if clock is not None else FaultClock(self.config)
        #: writes since the last completed sync: block -> latest image
        self._volatile: dict = {}
        #: frees since the last completed sync
        self._volatile_frees: List[int] = []
        #: syncs *started* (a mid-sync crash still counts its attempt);
        #: the torture harness uses this to decide whether the durable
        #: image still matches the last checkpoint's catalog.
        self.sync_attempts = 0
        self.sync_completions = 0
        self.torn_blocks: List[int] = []
        #: media-fault stream, independent of the crash clock's rng: the
        #: same seed enumerates identical crash points with media faults
        #: armed or not
        self.media_rng = random.Random(self.config.seed ^ _MEDIA_SEED_SALT)
        #: ledger of injected silent-corruption events
        self.media_faults: List[MediaFault] = []
        self._media_disabled = False
        #: structured event log (no-op unless a store attaches a live one)
        self.event_log = NOOP_EVENT_LOG

    # -- crash plumbing ------------------------------------------------------

    def _die(self, label: str) -> None:
        if self.event_log.enabled:
            self.event_log.emit(
                "fault", "crash", severity="warning",
                point=self.clock.ticks - 1, label=label,
            )
        self.crash()
        self.clock.crash(label)

    def crash(self) -> None:
        """Discard all volatile state (the process is gone)."""
        self._volatile.clear()
        self._volatile_frees.clear()

    @property
    def unsynced_writes(self) -> int:
        """Blocks whose latest write has not reached stable storage."""
        return len(self._volatile)

    # -- BlockDevice ---------------------------------------------------------

    def read_block(self, block_no: int) -> bytes:
        if block_no in self._volatile_frees:
            raise BlockNotFoundError(f"block {block_no} was freed")
        cached = self._volatile.get(block_no)
        if cached is not None:
            return cached
        return self.backend.read_block(block_no)

    def write_block(self, block_no: int, data: bytes) -> None:
        if self.clock.tick(f"write:block={block_no}"):
            # the write never reached even the volatile cache
            self._die(f"write:block={block_no}")
        # fail fast on writes to unallocated blocks, like the backend would
        self.read_block(block_no)
        self._volatile[block_no] = self._check_payload(data)

    def allocate_block(self, stream: int = 0) -> int:
        return self.backend.allocate_block(stream)

    def free_block(self, block_no: int) -> None:
        # validate the block exists in the merged view, then defer
        self.read_block(block_no)
        self._volatile.pop(block_no, None)
        self._volatile_frees.append(block_no)

    @property
    def num_blocks(self) -> int:
        return self.backend.num_blocks - len(self._volatile_frees)

    def block_numbers(self) -> Iterator[int]:
        freed = set(self._volatile_frees)
        return iter(b for b in self.backend.block_numbers() if b not in freed)

    def sync(self) -> None:
        """Flush the volatile cache to stable storage (the fsync barrier).

        Each block flushed is its own crash point; with ``reorder_sync``
        the flush order is a seeded shuffle, so crashing mid-sync
        persists an arbitrary subset of the barrier's writes.  The block
        in flight when the crash fires may additionally be torn at a
        seeded sector boundary.
        """
        self.sync_attempts += 1
        pending = sorted(self._volatile.items())
        if self.config.reorder_sync and len(pending) > 1:
            self.clock.rng.shuffle(pending)
        for block_no, data in pending:
            if self.clock.tick(f"sync:block={block_no}"):
                if self.config.torn_page_writes:
                    self._tear_block(block_no, data)
                self._die(f"sync:block={block_no}")
            self._flush_block(block_no, data)
        self._volatile.clear()
        for block_no in self._volatile_frees:
            self.backend.free_block(block_no)
            # a freed block's damage can no longer reach a reader
            self._heal(block_no)
        self._volatile_frees.clear()
        self.backend.sync()
        self.sync_completions += 1
        if self.event_log.enabled:
            self.event_log.emit("fault", "sync", blocks=len(pending))

    # -- media faults --------------------------------------------------------

    def _flush_block(self, block_no: int, data: bytes) -> None:
        """Move one volatile write to stable storage, possibly injecting
        a media fault.  Never ticks the crash clock: media faults draw
        only from :attr:`media_rng`."""
        if (
            self.config.media_faults_enabled
            and not self._media_disabled
            and self.media_rng.random() < self.config.media_fault_rate
            and self._inject_media_fault(block_no, data)
        ):
            return
        self.backend.write_block(block_no, data)
        self._heal(block_no)

    def disable_media_faults(self) -> None:
        """Stop injecting from now on (the ledger is kept).

        The media torture harness calls this after the workload so its
        scrub/repair verification runs against a *frozen* damage set —
        otherwise the repair's own flushes could rot, making the
        post-repair checks nondeterministic.
        """
        self._media_disabled = True

    def _inject_media_fault(self, block_no: int, data: bytes) -> bool:
        """Inject one enabled media fault for this flush; False when no
        fault could apply (the caller then flushes normally)."""
        kinds = []
        if self.config.bitrot:
            kinds.append("bitrot")
        if self.config.lost_writes:
            kinds.append("lost_write")
        if self.config.misdirected_writes:
            kinds.append("misdirect")
        kind = kinds[0] if len(kinds) == 1 else self.media_rng.choice(kinds)
        if kind == "bitrot":
            # the write lands, then the medium rots under it
            self.backend.write_block(block_no, data)
            self._heal(block_no)
            corrupted = bytearray(data)
            for _ in range(max(1, self.config.bitrot_bits)):
                bit = self.media_rng.randrange(len(corrupted) * 8)
                corrupted[bit // 8] ^= 1 << (bit % 8)
            self.backend.write_block(block_no, bytes(corrupted))
            fault = MediaFault(
                "bitrot", block_no, None, self.sync_attempts, {block_no}
            )
        elif kind == "lost_write":
            # acknowledged but never persisted: the stale image survives
            fault = MediaFault(
                "lost_write", block_no, None, self.sync_attempts, {block_no}
            )
        else:  # misdirect
            candidates = [b for b in self.backend.block_numbers() if b != block_no]
            if not candidates:
                return False
            target = self.media_rng.choice(sorted(candidates))
            self.backend.write_block(target, data)
            fault = MediaFault(
                "misdirect", block_no, target, self.sync_attempts,
                {block_no, target},
            )
        self.media_faults.append(fault)
        _log.warning(
            "media fault: %s block=%d target=%s", fault.kind, fault.block_no,
            fault.target_block,
        )
        if self.event_log.enabled:
            self.event_log.emit(
                "fault", fault.kind, severity="warning",
                block=fault.block_no, target=fault.target_block,
                sync_attempt=fault.sync_attempt,
            )
        return True

    def _heal(self, block_no: int) -> None:
        """A fresh image reached stable storage at ``block_no``: any
        earlier damage there is overwritten."""
        if not self.media_faults:
            return
        for fault in self.media_faults:
            fault.pending_blocks.discard(block_no)

    def unhealed_media_faults(self) -> List[MediaFault]:
        """Injected faults whose damage is still on stable storage."""
        return [f for f in self.media_faults if not f.healed]

    def _tear_block(self, block_no: int, data: bytes) -> None:
        """Persist a seeded prefix of ``data``'s sectors (a torn write)."""
        sectors = max(1, self.block_size // self.config.sector_size)
        keep = self.clock.rng.randrange(0, sectors)
        tear_at = keep * self.config.sector_size
        old = self.backend.read_block(block_no)
        self.backend.write_block(block_no, data[:tear_at] + old[tear_at:])
        self.torn_blocks.append(block_no)
        _log.warning("torn write: block %d kept %d/%d sectors", block_no, keep, sectors)
        if self.event_log.enabled:
            self.event_log.emit(
                "fault", "torn_write", severity="warning",
                block=block_no, sectors_kept=keep, sectors=sectors,
            )

    def close(self) -> None:
        self.backend.close()


class WALFaultAdapter:
    """Crash points under the write-ahead log's frame appends.

    The WAL calls :meth:`append_frame` instead of writing frames itself
    when an adapter is attached.  A crash during an append persists a
    seeded strict prefix of the frame — the torn-tail case the WAL's CRC
    framing must detect — then raises through the shared clock.
    """

    def __init__(self, clock: FaultClock) -> None:
        self.clock = clock
        self.config = clock.config
        #: frames fully written (the torture harness maps these to the
        #: operations whose log records are durable)
        self.frames_completed = 0
        self.event_log = NOOP_EVENT_LOG

    def append_frame(self, stream, frame: bytes) -> None:
        if self.clock.tick(f"wal:frame={self.frames_completed}"):
            if self.config.torn_wal_appends and len(frame) > 1:
                prefix = self.clock.rng.randrange(0, len(frame))
                stream.write(frame[:prefix])
                if self.event_log.enabled:
                    self.event_log.emit(
                        "fault", "torn_wal_append", severity="warning",
                        bytes_kept=prefix, frame_bytes=len(frame),
                    )
            if self.event_log.enabled:
                self.event_log.emit(
                    "fault", "crash", severity="warning",
                    point=self.clock.ticks - 1,
                    label=f"wal:frame={self.frames_completed}",
                )
            self.clock.crash(f"wal:frame={self.frames_completed}")
        stream.write(frame)
        self.frames_completed += 1


@dataclass
class FaultHarness:
    """One store's worth of wired-together fault machinery.

    Bundles the shared clock, the faulty device (already wrapped in an
    :class:`~repro.storage.disk.InstrumentedDevice`, as stores expect)
    and the WAL adapter, so callers build all three consistently.
    """

    config: FaultConfig
    clock: FaultClock
    disk: FaultyDisk
    device: InstrumentedDevice
    wal_adapter: WALFaultAdapter = field(repr=False, default=None)  # type: ignore[assignment]


def build_fault_harness(
    config: FaultConfig,
    backend: BlockDevice,
    cost_model=None,
) -> FaultHarness:
    """Wire a :class:`FaultyDisk` over ``backend`` plus a WAL adapter,
    all sharing one :class:`FaultClock`."""
    clock = FaultClock(config)
    disk = FaultyDisk(backend, config=config, clock=clock)
    device = InstrumentedDevice(disk, cost_model=cost_model)
    adapter = WALFaultAdapter(clock)
    return FaultHarness(
        config=config, clock=clock, disk=disk, device=device, wal_adapter=adapter
    )


def find_fault_layer(device: Optional[BlockDevice]) -> Optional[FaultyDisk]:
    """The :class:`FaultyDisk` inside a (possibly wrapped) device chain,
    or None — used by the store to attach its event log."""
    seen = 0
    while device is not None and seen < 8:  # defensive bound on the chain
        if isinstance(device, FaultyDisk):
            return device
        device = getattr(device, "backend", None)
        seen += 1
    return None
