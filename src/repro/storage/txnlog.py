"""Transaction commit records: one WAL frame per committed transaction.

The serving layer's group commit defers the WAL barrier, which makes the
per-operation logging discipline unsound: a crash between the barriers
could persist *some* operations of an uncommitted transaction.  Instead,
a transaction executed under redo buffering logs nothing while active;
at commit all of its operations are packed into a single
``RecordType.TXN_COMMIT`` frame.  The frame CRC then gives transaction
durability for free — recovery replays a commit record completely or
discards it completely (a torn group-commit tail), never a partial
transaction.

Each operation carries the id-allocation cursor observed immediately
before it executed.  Replay pins the sequential id scheme to that cursor
before re-executing the operation, so re-execution allocates exactly the
node ids the operation allocated live — even when interleaved
transactions (committed in a different order, or aborted and therefore
absent from the log) consumed ids in between.  ``id_cursor_after`` lets
replay restore the allocator's high-water mark once the record is done.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import WALError

_HEADER = struct.Struct("<QI")  # txn_id, op count
_OP = struct.Struct("<HqqI")  # record_type, cursor before, cursor after, length


@dataclass(frozen=True)
class CommitOp:
    """One logical operation inside a commit record."""

    record_type: int
    #: The regular per-op payload (see ``encode_op_payload``).
    payload: bytes
    #: Id-scheme cursor (next id to allocate) observed immediately
    #: before / after the operation ran live; -1 = unknown (no pinning).
    id_cursor_before: int = -1
    id_cursor_after: int = -1


@dataclass(frozen=True)
class TxnCommit:
    """A decoded commit record."""

    txn_id: int
    ops: Tuple[CommitOp, ...]


def encode_commit(txn_id: int, ops: List[CommitOp]) -> bytes:
    parts = [_HEADER.pack(txn_id, len(ops))]
    for op in ops:
        parts.append(
            _OP.pack(
                op.record_type,
                op.id_cursor_before,
                op.id_cursor_after,
                len(op.payload),
            )
        )
        parts.append(op.payload)
    return b"".join(parts)


def decode_commit(payload: bytes) -> TxnCommit:
    if len(payload) < _HEADER.size:
        raise WALError("truncated transaction commit record")
    txn_id, count = _HEADER.unpack_from(payload, 0)
    offset = _HEADER.size
    ops: List[CommitOp] = []
    for _ in range(count):
        if len(payload) < offset + _OP.size:
            raise WALError("truncated operation header in commit record")
        record_type, before, after, length = _OP.unpack_from(payload, offset)
        offset += _OP.size
        if len(payload) < offset + length:
            raise WALError("truncated operation payload in commit record")
        ops.append(
            CommitOp(
                record_type=record_type,
                payload=payload[offset : offset + length],
                id_cursor_before=before,
                id_cursor_after=after,
            )
        )
        offset += length
    if offset != len(payload):
        raise WALError("trailing bytes in transaction commit record")
    return TxnCommit(txn_id=txn_id, ops=tuple(ops))
