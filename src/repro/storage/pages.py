"""Slotted pages with an *ordered* slot directory.

A page stores a sequence of variable-length records.  Unlike a classic
relational slotted page, the slot order is meaningful: within a block, the
slot order *is* document order of the tokens stored there (see
:mod:`repro.storage.heap`).  Records can therefore be inserted at an
arbitrary slot position, which shifts the following slots.

Pages are value objects that serialize to exactly ``page_size`` bytes.  The
on-page layout is::

    u16 record_count | u16 len_0 | u16 len_1 | ... | payload_0 payload_1 ...

Because a page is rewritten wholesale when flushed (the buffer pool always
writes full block images), records do not need stable on-page offsets and
no tombstone/compaction machinery is necessary: deletion simply removes the
slot.  ``free_space`` reports how many more payload bytes fit.

When checksums are enabled (:class:`PageCodec`), every block image is
framed with an 8-byte self-verification header in front of the slotted
payload::

    u16 magic | u16 version | u32 crc32 | payload ...

The CRC covers ``pack("<q", block_no) + payload``, so a page persisted to
the *wrong* block (a misdirected write) fails verification exactly like
bit rot does.  The framing shrinks the payload area visible to
:class:`SlottedPage` by :data:`CHECKSUM_OVERHEAD` bytes; with checksums
disabled the codec is a pure pass-through and block images are
byte-identical to the legacy raw format.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    ChecksumError,
    PageFullError,
    RecordTooLargeError,
    SlotNotFoundError,
    StorageError,
)

_HEADER = struct.Struct("<H")
_SLOT = struct.Struct("<H")

#: Per-record overhead in bytes (the length field in the slot directory).
RECORD_OVERHEAD = _SLOT.size

#: Fixed page overhead in bytes (the record-count header).
PAGE_HEADER_SIZE = _HEADER.size


def page_capacity(page_size: int) -> int:
    """Maximum payload bytes a single record may occupy in a page."""
    return page_size - PAGE_HEADER_SIZE - RECORD_OVERHEAD


_CHECKSUM_HEADER = struct.Struct("<HHI")
_BLOCK_NO = struct.Struct("<q")

#: Magic marking a checksum-framed page image.
CHECKSUM_MAGIC = 0xC5B1

#: On-page format version of the checksum frame.
CHECKSUM_VERSION = 1

#: Bytes the checksum frame steals from every block image.
CHECKSUM_OVERHEAD = _CHECKSUM_HEADER.size


def _page_crc(block_no: int, payload: bytes) -> int:
    return zlib.crc32(_BLOCK_NO.pack(block_no) + payload) & 0xFFFFFFFF


class PageCodec:
    """Encode/decode block images, optionally checksum-framed.

    The codec is the single place where the on-page layout differs
    between the legacy raw format and the self-verifying framed format;
    the buffer pool and scrubber never look at the frame themselves.
    With ``checksums=False`` every method is a pass-through and
    ``page_size == block_size`` (legacy stores decode bit-for-bit as
    before).  Which mode a persisted store uses is recorded in its
    catalog, never sniffed from page bytes — a flipped bit in the magic
    field must surface as a :class:`~repro.errors.ChecksumError`, not a
    silent fall-back to the raw decode path.
    """

    __slots__ = ("block_size", "checksums")

    def __init__(self, block_size: int, checksums: bool = False) -> None:
        if checksums and block_size <= CHECKSUM_OVERHEAD + PAGE_HEADER_SIZE:
            raise StorageError(
                f"block size {block_size} too small for checksum framing"
            )
        self.block_size = block_size
        self.checksums = checksums

    @property
    def page_size(self) -> int:
        """Payload bytes available to :class:`SlottedPage` per block."""
        if self.checksums:
            return self.block_size - CHECKSUM_OVERHEAD
        return self.block_size

    def new_page(self) -> SlottedPage:
        return SlottedPage(self.page_size)

    def encode(self, page: SlottedPage, block_no: int) -> bytes:
        """The block image for ``page`` at ``block_no``."""
        payload = page.to_bytes()
        if not self.checksums:
            return payload
        crc = _page_crc(block_no, payload)
        return _CHECKSUM_HEADER.pack(CHECKSUM_MAGIC, CHECKSUM_VERSION, crc) + payload

    def decode(self, data: bytes, block_no: int) -> SlottedPage:
        """Verify (when framing is on) and decode a block image.

        Raises :class:`~repro.errors.ChecksumError` on any verification
        failure; decoding is strict — there is no fall-back path.
        """
        if not self.checksums:
            return SlottedPage.from_bytes(data)
        ok, expected, actual = self._verify(data, block_no)
        if not ok:
            raise ChecksumError(
                f"block {block_no} failed checksum verification "
                f"(stored={expected!r}, computed={actual!r})",
                block_no=block_no,
                expected_crc=expected,
                actual_crc=actual,
            )
        return SlottedPage.from_bytes(data[CHECKSUM_OVERHEAD:])

    def inspect(
        self, data: bytes, block_no: int
    ) -> Tuple[bool, Optional[int], Optional[int]]:
        """Non-raising verification for the scrubber.

        Returns ``(ok, stored_crc, computed_crc)``; with checksums off,
        every image is vacuously ok (legacy pages carry no checksum).
        """
        if not self.checksums:
            return True, None, None
        return self._verify(data, block_no)

    def _verify(
        self, data: bytes, block_no: int
    ) -> Tuple[bool, Optional[int], Optional[int]]:
        if len(data) < CHECKSUM_OVERHEAD:
            return False, None, None
        magic, version, stored = _CHECKSUM_HEADER.unpack_from(data, 0)
        computed = _page_crc(block_no, data[CHECKSUM_OVERHEAD:])
        if magic != CHECKSUM_MAGIC or version != CHECKSUM_VERSION:
            return False, stored, computed
        return stored == computed, stored, computed


class SlottedPage:
    """A page holding an ordered sequence of variable-length records."""

    __slots__ = ("page_size", "_records", "_used")

    def __init__(self, page_size: int, records: Sequence[bytes] = ()) -> None:
        self.page_size = page_size
        self._records: List[bytes] = []
        self._used = PAGE_HEADER_SIZE
        for record in records:
            self.append(record)

    # -- capacity -----------------------------------------------------------

    @property
    def free_space(self) -> int:
        """Bytes available for one more record's payload (its overhead
        already accounted for)."""
        return max(0, self.page_size - self._used - RECORD_OVERHEAD)

    def fits(self, record: bytes) -> bool:
        return len(record) + RECORD_OVERHEAD <= self.page_size - self._used

    @property
    def used_bytes(self) -> int:
        return self._used

    # -- record access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._records)

    def record(self, slot: int) -> bytes:
        try:
            return self._records[self._check(slot)]
        except IndexError:
            raise SlotNotFoundError(f"slot {slot} out of range") from None

    def records(self) -> List[bytes]:
        """A copy of all records in slot order."""
        return list(self._records)

    # -- mutation -----------------------------------------------------------

    def append(self, record: bytes) -> int:
        """Add ``record`` after the last slot; return its slot index."""
        return self.insert(len(self._records), record)

    def insert(self, slot: int, record: bytes) -> int:
        """Insert ``record`` *at* ``slot`` (shifting later slots right)."""
        if not 0 <= slot <= len(self._records):
            raise SlotNotFoundError(
                f"insert position {slot} out of range 0..{len(self._records)}"
            )
        need = len(record) + RECORD_OVERHEAD
        if len(record) + RECORD_OVERHEAD + PAGE_HEADER_SIZE > self.page_size:
            raise RecordTooLargeError(
                f"record of {len(record)} bytes can never fit in a "
                f"{self.page_size}-byte page"
            )
        if self._used + need > self.page_size:
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.page_size - self._used} bytes free)"
            )
        self._records.insert(slot, bytes(record))
        self._used += need
        return slot

    def delete(self, slot: int) -> bytes:
        """Remove and return the record at ``slot`` (shifting later slots
        left)."""
        record = self._records.pop(self._check(slot))
        self._used -= len(record) + RECORD_OVERHEAD
        return record

    def replace(self, slot: int, record: bytes) -> None:
        """Replace the record at ``slot`` in place."""
        index = self._check(slot)
        old = self._records[index]
        new_used = self._used - len(old) + len(record)
        if new_used > self.page_size:
            raise PageFullError(
                f"replacement record of {len(record)} bytes does not fit"
            )
        self._records[index] = bytes(record)
        self._used = new_used

    def split(self, slot: int) -> "SlottedPage":
        """Move slots ``[slot:]`` into a fresh page and return it.

        Used when inserting into the middle of a full block: the tail of
        the block moves to a new block chained right after it.
        """
        index = self._check_boundary(slot)
        tail = SlottedPage(self.page_size)
        for record in self._records[index:]:
            tail.append(record)
        for record in self._records[index:]:
            self._used -= len(record) + RECORD_OVERHEAD
        del self._records[index:]
        return tail

    def extend(self, records: Sequence[bytes]) -> None:
        """Append many records; raises before mutating if they do not all
        fit."""
        need = sum(len(r) + RECORD_OVERHEAD for r in records)
        if self._used + need > self.page_size:
            raise PageFullError(f"{len(records)} records need {need} bytes")
        for record in records:
            self._records.append(bytes(record))
        self._used += need

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        parts = [_HEADER.pack(len(self._records))]
        parts.extend(_SLOT.pack(len(r)) for r in self._records)
        parts.extend(self._records)
        data = b"".join(parts)
        if len(data) > self.page_size:
            raise StorageError("page serialization exceeded page size (bug)")
        return data + b"\x00" * (self.page_size - len(data))

    @classmethod
    def from_bytes(cls, data: bytes) -> "SlottedPage":
        page_size = len(data)
        (count,) = _HEADER.unpack_from(data, 0)
        lengths = []
        offset = PAGE_HEADER_SIZE
        for _ in range(count):
            (length,) = _SLOT.unpack_from(data, offset)
            lengths.append(length)
            offset += RECORD_OVERHEAD
        page = cls(page_size)
        for length in lengths:
            page.append(data[offset : offset + length])
            offset += length
        return page

    # -- internal -----------------------------------------------------------

    def _check(self, slot: int) -> int:
        if not 0 <= slot < len(self._records):
            raise SlotNotFoundError(
                f"slot {slot} out of range 0..{len(self._records) - 1}"
            )
        return slot

    def _check_boundary(self, slot: int) -> int:
        if not 0 <= slot <= len(self._records):
            raise SlotNotFoundError(
                f"split position {slot} out of range 0..{len(self._records)}"
            )
        return slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlottedPage(records={len(self._records)}, "
            f"used={self._used}/{self.page_size})"
        )
