"""Page-level storage substrate: devices, pages, buffer pool, chains, WAL.

This package plays the role MySQL's storage layer played in the paper's
prototype, but is instrumented so benchmarks can account every block I/O
(see :mod:`repro.storage.disk`).
"""

from repro.storage.buffer import BufferPool, BufferStats, PageGuard
from repro.storage.disk import (
    DEFAULT_BLOCK_SIZE,
    BlockDevice,
    DiskCostModel,
    DiskStats,
    FaultInjector,
    FileBlockDevice,
    InstrumentedDevice,
    MemoryBlockDevice,
)
from repro.storage.freespace import FreeSpaceMap
from repro.storage.heap import ChainedFile, Position
from repro.storage.pages import SlottedPage, page_capacity
from repro.storage.recovery import replay, replay_record
from repro.storage.wal import LogRecord, RecordType, WriteAheadLog

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockDevice",
    "BufferPool",
    "BufferStats",
    "ChainedFile",
    "DiskCostModel",
    "DiskStats",
    "FaultInjector",
    "FileBlockDevice",
    "FreeSpaceMap",
    "InstrumentedDevice",
    "LogRecord",
    "MemoryBlockDevice",
    "PageGuard",
    "Position",
    "RecordType",
    "SlottedPage",
    "WriteAheadLog",
    "page_capacity",
    "replay",
    "replay_record",
]
