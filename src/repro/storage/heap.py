"""Chained block files: the document-order backbone of the store.

The paper's storage model (§3.3, §4.4) keeps token records "serialized in
sequential blocks/pages, in document order", with document order preserved
"through the chaining of blocks and through the ordering of ranges inside
blocks".  :class:`ChainedFile` implements exactly that substrate: a doubly
linked chain of slotted-page blocks where

* the chain order of blocks, and
* the slot order of records inside each block

together define one global, totally ordered sequence of records.  New
blocks can be spliced in anywhere, and a block can be *split* at a slot
boundary (moving its tail records into a fresh successor block) so that
records can be inserted into the middle of the sequence.

Chain links are kept in memory and serialized via :meth:`ChainedFile.to_catalog`
into the store's catalog, which the store persists and WAL-logs; the blocks
themselves are persisted through the buffer pool.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import BlockNotFoundError, PageFullError, StorageError
from repro.storage.buffer import BufferPool, PageGuard


class Position(NamedTuple):
    """A record position: block number + slot index inside that block."""

    block_no: int
    slot: int


class _Link(NamedTuple):
    prev: Optional[int]
    next: Optional[int]


_CATALOG_ENTRY = struct.Struct("<qqq")  # block_no, prev(-1=None), next(-1=None)
_CATALOG_HEADER = struct.Struct("<qqI")  # head(-1), tail(-1), count


class ChainedFile:
    """A doubly linked chain of slotted-page blocks over a buffer pool."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self._links: Dict[int, _Link] = {}
        self.head: Optional[int] = None
        self.tail: Optional[int] = None

    # -- chain structure ----------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self._links)

    def contains_block(self, block_no: int) -> bool:
        return block_no in self._links

    def next_block(self, block_no: int) -> Optional[int]:
        return self._link(block_no).next

    def prev_block(self, block_no: int) -> Optional[int]:
        return self._link(block_no).prev

    def blocks(self) -> Iterator[int]:
        """Iterate block numbers in chain (document) order."""
        current = self.head
        while current is not None:
            yield current
            current = self._links[current].next

    def append_block(self) -> int:
        """Add a fresh empty block at the end of the chain."""
        if self.tail is None:
            return self._first_block()
        return self.insert_block_after(self.tail)

    def insert_block_after(self, block_no: int) -> int:
        """Splice a fresh empty block right after ``block_no``."""
        link = self._link(block_no)
        with self.pool.new_page() as guard:
            new_no = guard.block_no
            guard.mark_dirty()
        self._links[new_no] = _Link(prev=block_no, next=link.next)
        self._links[block_no] = _Link(prev=link.prev, next=new_no)
        if link.next is not None:
            after = self._links[link.next]
            self._links[link.next] = _Link(prev=new_no, next=after.next)
        else:
            self.tail = new_no
        return new_no

    def insert_block_before(self, block_no: int) -> int:
        """Splice a fresh empty block right before ``block_no``."""
        link = self._link(block_no)
        if link.prev is not None:
            return self.insert_block_after(link.prev)
        with self.pool.new_page() as guard:
            new_no = guard.block_no
            guard.mark_dirty()
        self._links[new_no] = _Link(prev=None, next=block_no)
        self._links[block_no] = _Link(prev=new_no, next=link.next)
        self.head = new_no
        return new_no

    def remove_block(self, block_no: int) -> None:
        """Unlink ``block_no`` from the chain and free it."""
        self.unlink_block(block_no)
        self.pool.free_page(block_no)

    def unlink_block(self, block_no: int) -> None:
        """Re-chain around ``block_no`` without reading or freeing it.

        The repair path (:mod:`repro.core.repair`) uses this to route the
        chain around a *dead* (checksum-failing) block: the block's page
        cannot be fetched and its device image must stay untouched until
        repair decides what to do with it, so neither the
        :meth:`remove_block` free nor any page access is acceptable.
        """
        link = self._link(block_no)
        if link.prev is not None:
            before = self._links[link.prev]
            self._links[link.prev] = _Link(prev=before.prev, next=link.next)
        else:
            self.head = link.next
        if link.next is not None:
            after = self._links[link.next]
            self._links[link.next] = _Link(prev=link.prev, next=after.next)
        else:
            self.tail = link.prev
        del self._links[block_no]

    def _first_block(self) -> int:
        with self.pool.new_page() as guard:
            block_no = guard.block_no
            guard.mark_dirty()
        self._links[block_no] = _Link(prev=None, next=None)
        self.head = self.tail = block_no
        return block_no

    def _link(self, block_no: int) -> _Link:
        try:
            return self._links[block_no]
        except KeyError:
            raise BlockNotFoundError(f"block {block_no} is not in this chain") from None

    # -- record-level operations ---------------------------------------------

    def fetch(self, block_no: int) -> PageGuard:
        if block_no not in self._links:
            raise BlockNotFoundError(f"block {block_no} is not in this chain")
        return self.pool.fetch(block_no)

    def read_record(self, pos: Position) -> bytes:
        with self.fetch(pos.block_no) as guard:
            return guard.page.record(pos.slot)

    def block_record_count(self, block_no: int) -> int:
        with self.fetch(block_no) as guard:
            return len(guard.page)

    def records(self, start: Optional[Position] = None) -> Iterator[Tuple[Position, bytes]]:
        """Iterate ``(position, record)`` pairs in document order.

        ``start`` restricts iteration to begin at that position (inclusive).
        """
        if self.head is None:
            return
        if start is None:
            block_no: Optional[int] = self.head
            first_slot = 0
        else:
            block_no = start.block_no
            first_slot = start.slot
        while block_no is not None:
            with self.fetch(block_no) as guard:
                page_records = guard.page.records()
            for slot in range(first_slot, len(page_records)):
                yield Position(block_no, slot), page_records[slot]
            first_slot = 0
            block_no = self._links[block_no].next

    def split_block(self, block_no: int, slot: int) -> int:
        """Split a block at ``slot``: records ``[slot:]`` move into a fresh
        block chained right after.  Returns the new block number.
        """
        new_no = self.insert_block_after(block_no)
        with self.fetch(block_no) as source, self.fetch(new_no) as target:
            tail = source.page.split(slot)
            target.page.extend(tail.records())
            source.mark_dirty()
            target.mark_dirty()
        return new_no

    def insert_records(self, pos: Position, records: Sequence[bytes]) -> List[Position]:
        """Insert ``records`` so the first lands *at* ``pos``.

        Existing records at and after ``pos`` keep following the inserted
        run in document order.  ``pos.slot`` may equal the block's record
        count, meaning "after the last record of the block".  Blocks are
        split and allocated as needed.  Returns the positions of the
        inserted records (in order).
        """
        if not records:
            return []
        block_no, slot = pos
        with self.fetch(block_no) as guard:
            record_count = len(guard.page)
        if not 0 <= slot <= record_count:
            raise StorageError(
                f"insert slot {slot} out of range 0..{record_count} in block {block_no}"
            )
        # If the insert point is mid-block and the whole run does not fit,
        # split the block so we can append freely into the gap.
        if slot < record_count:
            need = sum(len(r) + 2 for r in records)
            with self.fetch(block_no) as guard:
                fits = guard.page.free_space + 2 >= need
            if not fits:
                self.split_block(block_no, slot)
        positions: List[Position] = []
        current = block_no
        insert_at = slot
        for record in records:
            current, insert_at = self._insert_one(current, insert_at, record)
            positions.append(Position(current, insert_at))
            insert_at += 1
        return positions

    def _insert_one(self, block_no: int, slot: int, record: bytes) -> Tuple[int, int]:
        """Insert one record at (block_no, slot), splitting/allocating as
        needed; returns where it actually landed."""
        with self.fetch(block_no) as guard:
            if guard.page.fits(record):
                guard.page.insert(slot, record)
                guard.mark_dirty()
                return block_no, slot
            record_count = len(guard.page)
        if slot < record_count:
            # Mid-block and full: move the tail away, then retry at the gap.
            self.split_block(block_no, slot)
            with self.fetch(block_no) as guard:
                if guard.page.fits(record):
                    guard.page.insert(slot, record)
                    guard.mark_dirty()
                    return block_no, slot
        # Appending at the end of a full block: go to (or create) a block
        # after it and insert at its front.
        next_no = self.insert_block_after(block_no)
        with self.fetch(next_no) as guard:
            guard.page.insert(0, record)
            guard.mark_dirty()
        return next_no, 0

    def append_records(self, records: Sequence[bytes]) -> List[Position]:
        """Append records at the end of the chain (bulk load path)."""
        if self.tail is None:
            self.append_block()
        assert self.tail is not None
        with self.fetch(self.tail) as guard:
            end = len(guard.page)
        return self.insert_records(Position(self.tail, end), records)

    def delete_record(self, pos: Position) -> bytes:
        """Delete the record at ``pos`` (later slots shift left).  Empty
        blocks are *not* removed automatically; callers decide."""
        with self.fetch(pos.block_no) as guard:
            record = guard.page.delete(pos.slot)
            guard.mark_dirty()
        return record

    def replace_record(self, pos: Position, record: bytes) -> None:
        """Replace the record at ``pos``; splits the block if it no longer
        fits."""
        try:
            with self.fetch(pos.block_no) as guard:
                guard.page.replace(pos.slot, record)
                guard.mark_dirty()
                return
        except PageFullError:
            pass
        self.delete_record(pos)
        self.insert_records(pos, [record])

    # -- catalog serialization ------------------------------------------------

    def to_catalog(self) -> bytes:
        """Serialize the chain structure (not the block contents)."""
        head = -1 if self.head is None else self.head
        tail = -1 if self.tail is None else self.tail
        parts = [_CATALOG_HEADER.pack(head, tail, len(self._links))]
        for block_no, link in self._links.items():
            parts.append(
                _CATALOG_ENTRY.pack(
                    block_no,
                    -1 if link.prev is None else link.prev,
                    -1 if link.next is None else link.next,
                )
            )
        return b"".join(parts)

    @classmethod
    def from_catalog(cls, pool: BufferPool, data: bytes) -> "ChainedFile":
        chain = cls(pool)
        head, tail, count = _CATALOG_HEADER.unpack_from(data, 0)
        chain.head = None if head == -1 else head
        chain.tail = None if tail == -1 else tail
        offset = _CATALOG_HEADER.size
        for _ in range(count):
            block_no, prev, nxt = _CATALOG_ENTRY.unpack_from(data, offset)
            offset += _CATALOG_ENTRY.size
            chain._links[block_no] = _Link(
                prev=None if prev == -1 else prev,
                next=None if nxt == -1 else nxt,
            )
        return chain

    # -- integrity ------------------------------------------------------------

    def check_integrity(self) -> None:
        """Verify the chain is a consistent doubly linked list (test aid)."""
        seen = set()
        current = self.head
        prev = None
        while current is not None:
            if current in seen:
                raise StorageError(f"cycle at block {current}")
            seen.add(current)
            link = self._links[current]
            if link.prev != prev:
                raise StorageError(
                    f"block {current} has prev={link.prev}, expected {prev}"
                )
            prev = current
            current = link.next
        if prev != self.tail:
            raise StorageError(f"tail is {self.tail}, chain ends at {prev}")
        if len(seen) != len(self._links):
            raise StorageError(
                f"{len(self._links) - len(seen)} blocks unreachable from head"
            )
