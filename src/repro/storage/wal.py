"""Write-ahead logging of logical store operations.

The store logs each mutating operation (a *logical* log record: operation
code + serialized arguments) before applying it.  Recovery replays the
suffix of the log after the last checkpoint against the recovered state
(see :mod:`repro.storage.recovery`).  Logical logging keeps log volume
proportional to the update stream rather than to the pages touched, which
matches the store's record-oriented design.

Log records are framed as::

    u32 crc32 | u32 length | u16 record_type | u64 lsn | payload

A torn final record (crash mid-append) is detected by the checksum and
discarded during scan.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional

from repro.errors import WALError
from repro.log import get_logger
from repro.obs.events import NOOP_EVENT_LOG
from repro.obs.telemetry import NOOP_TELEMETRY

_FRAME = struct.Struct("<IIHQ")

_log = get_logger("storage.wal")


class RecordType:
    """Well-known record type codes used by the store."""

    CHECKPOINT = 0
    LOAD_DOCUMENT = 1
    INSERT_BEFORE = 2
    INSERT_AFTER = 3
    INSERT_INTO_FIRST = 4
    INSERT_INTO_LAST = 5
    DELETE_NODE = 6
    REPLACE_NODE = 7
    REPLACE_CONTENT = 8
    #: One committed transaction as a single frame: the ops of the
    #: transaction are encoded *inside* the payload (see
    #: :mod:`repro.storage.txnlog`), so the frame CRC makes transaction
    #: durability all-or-nothing — a torn group commit can only lose
    #: whole transactions, never replay a partial one.
    TXN_COMMIT = 9

    NAMES = {
        CHECKPOINT: "checkpoint",
        LOAD_DOCUMENT: "load_document",
        INSERT_BEFORE: "insert_before",
        INSERT_AFTER: "insert_after",
        INSERT_INTO_FIRST: "insert_into_first",
        INSERT_INTO_LAST: "insert_into_last",
        DELETE_NODE: "delete_node",
        REPLACE_NODE: "replace_node",
        REPLACE_CONTENT: "replace_content",
        TXN_COMMIT: "txn_commit",
    }


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    record_type: int
    payload: bytes

    @property
    def type_name(self) -> str:
        return RecordType.NAMES.get(self.record_type, f"type#{self.record_type}")


class WriteAheadLog:
    """Append-only log over a binary stream.

    Pass a file path for a durable log, or nothing for an in-memory log
    (useful in tests and benchmarks where durability is not measured).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        #: Records appended / fsyncs issued over this log's lifetime.
        self.appends = 0
        self.fsyncs = 0
        #: Telemetry facade; the owning store attaches a live one.
        self.telemetry = NOOP_TELEMETRY
        #: Structured event log (no-op unless the store attaches one).
        self.event_log = NOOP_EVENT_LOG
        #: Fault-injection hook (see :class:`repro.storage.faults.
        #: WALFaultAdapter`): when set, frame writes go through it so a
        #: simulated crash can persist a torn record prefix.  None in
        #: normal operation — appends take one attribute check.
        self.fault_adapter = None
        #: Sync barriers issued (every flush, fsync-backed or not) and
        #: group commits (sync calls that drained a deferred batch), with
        #: the drained batch sizes for the histogram export.
        self.sync_barriers = 0
        self.group_commits = 0
        self.group_commit_batches: List[int] = []
        #: Simulated seconds charged per sync barrier (the cost model's
        #: ``sync_seconds``; the owning store wires it).  Zero keeps every
        #: pre-server benchmark byte-identical.
        self.sync_cost = 0.0
        self.simulated_sync_seconds = 0.0
        #: Frames appended with ``sync=False``: written only at the next
        #: :meth:`sync`, so they are *volatile* — a crash before the
        #: barrier loses them entirely (never partially).
        self._pending: List[bytes] = []
        if path is None:
            self._stream: BinaryIO = io.BytesIO()
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._stream = open(path, mode)
            self._stream.seek(0, os.SEEK_END)
        self._next_lsn = self._scan_next_lsn()

    # -- appending ------------------------------------------------------------

    def append(self, record_type: int, payload: bytes = b"", sync: bool = True) -> int:
        """Append a record; returns its LSN.

        With ``sync=True`` (the default) the record is flushed — and
        fsynced on a durable log — before returning.  With ``sync=False``
        the frame is only queued in a volatile buffer; it reaches the
        stream (and stable storage) at the next :meth:`sync`, which lets
        a group commit amortize one barrier over many transactions.
        """
        with self.telemetry.span(
            "wal.append", type=RecordType.NAMES.get(record_type, record_type)
        ):
            lsn = self._next_lsn
            self._next_lsn += 1
            body = _FRAME.pack(0, len(payload), record_type, lsn)[4:] + payload
            crc = zlib.crc32(body)
            frame = struct.pack("<I", crc) + body
            if sync:
                self._stream.seek(0, os.SEEK_END)
                self._write_frame(frame)
                self.appends += 1
                self.flush()
            else:
                self._pending.append(frame)
                self.appends += 1
        if self.event_log.enabled:
            self.event_log.emit(
                "wal", "append",
                lsn=lsn,
                type=RecordType.NAMES.get(record_type, record_type),
                bytes=len(payload),
                deferred=not sync,
            )
        return lsn

    def sync(self) -> int:
        """Write every deferred frame and pay one shared barrier.

        Returns the number of frames made durable.  A no-op (no barrier
        charged) when nothing is pending.  Frames reach the stream one at
        a time through the fault adapter, so a simulated crash mid-batch
        persists a prefix of whole frames plus at most one torn frame —
        which the CRC scan discards.
        """
        if not self._pending:
            return 0
        batch = len(self._pending)
        self._stream.seek(0, os.SEEK_END)
        for frame in self._pending:
            # a simulated crash here abandons the WAL object: the batch
            # stays pending and the group is not counted as committed
            self._write_frame(frame)
        self._pending.clear()
        self.group_commits += 1
        self.group_commit_batches.append(batch)
        self.flush()
        if self.event_log.enabled:
            self.event_log.emit("wal", "group_commit", frames=batch)
        return batch

    @property
    def pending_frames(self) -> int:
        """Deferred frames not yet made durable by :meth:`sync`."""
        return len(self._pending)

    def checkpoint(self) -> int:
        """Write a checkpoint marker; recovery replays only records after
        the last checkpoint."""
        self.sync()
        return self.append(RecordType.CHECKPOINT)

    def flush(self) -> None:
        self._stream.flush()
        if self.path is not None:
            with self.telemetry.span("wal.fsync"):
                os.fsync(self._stream.fileno())
            self.fsyncs += 1
        self.sync_barriers += 1
        self.simulated_sync_seconds += self.sync_cost

    def _write_frame(self, frame: bytes) -> None:
        if self.fault_adapter is not None:
            self.fault_adapter.append_frame(self._stream, frame)
        else:
            self._stream.write(frame)

    # -- snapshots --------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """The raw log image written so far (including any torn tail).

        The torture harness captures this as the *durable* log at a
        simulated crash: appends flush (and fsync) before returning, so
        everything in the stream has reached stable storage.
        """
        position = self._stream.tell()
        self._stream.seek(0)
        data = self._stream.read()
        self._stream.seek(position)
        return data

    @property
    def size_bytes(self) -> int:
        """Bytes currently in the log stream (exported as the
        ``repro_wal_size_bytes`` gauge; 0 once the stream is closed)."""
        if self._stream.closed:
            return 0
        position = self._stream.tell()
        self._stream.seek(0, os.SEEK_END)
        end = self._stream.tell()
        self._stream.seek(position)
        return end

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteAheadLog":
        """An in-memory log over a captured image (crash-recovery input)."""
        wal = cls()
        wal._stream = io.BytesIO(data)
        wal._next_lsn = wal._scan_next_lsn()
        return wal

    # -- scanning ---------------------------------------------------------------

    def records(self) -> Iterator[LogRecord]:
        """Iterate all intact records from the start of the log.

        Stops (without raising) at the first torn/corrupt record, which can
        only be a partially written tail after a crash.
        """
        self._stream.seek(0)
        while True:
            header = self._stream.read(_FRAME.size)
            if len(header) < _FRAME.size:
                return
            crc, length, record_type, lsn = _FRAME.unpack(header)
            payload = self._stream.read(length)
            if len(payload) < length:
                _log.warning("torn WAL tail: record lsn=%d truncated", lsn)
                return
            body = header[4:] + payload
            if zlib.crc32(body) != crc:
                _log.warning("torn WAL tail: record lsn=%d fails checksum", lsn)
                return
            yield LogRecord(lsn=lsn, record_type=record_type, payload=payload)

    def records_after_last_checkpoint(self) -> List[LogRecord]:
        """The records recovery must replay."""
        pending: List[LogRecord] = []
        for record in self.records():
            if record.record_type == RecordType.CHECKPOINT:
                pending.clear()
            else:
                pending.append(record)
        return pending

    # -- maintenance ---------------------------------------------------------------

    def truncate(self) -> None:
        """Discard the whole log (after a checkpoint has made it redundant)."""
        _log.info("truncating WAL (%d records appended so far)", self.appends)
        self._pending.clear()
        self._stream.seek(0)
        self._stream.truncate()
        self.flush()

    def close(self) -> None:
        if self.path is not None:
            self._stream.close()

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def _scan_next_lsn(self) -> int:
        last = -1
        try:
            for record in self.records():
                last = record.lsn
        except WALError:  # pragma: no cover - defensive
            pass
        self._stream.seek(0, os.SEEK_END)
        return last + 1
