"""Online scrubber: verify every block's checksum against the raw device.

The buffer pool verifies blocks *on fetch* — which only catches rot on
blocks the workload happens to read.  The scrubber closes the gap: it
walks every block the store owns (the data chain plus the range/full
index trees), reads the **raw device image** (the pool's cache would
mask media rot with a clean in-memory copy) and verifies the checksum
frame out-of-band.

Two block categories are deliberately *skipped*, not verified:

* blocks whose cached page is dirty in the pool — the device image is
  stale by design and will be overwritten at the next flush, so rot
  under it self-heals;
* blocks on the pool's deferred-free list — their images are
  garbage-to-be.

Scrubbing is *budgeted*: :meth:`Scrubber.step` verifies at most
``budget`` blocks per call, so it can run online between store
operations; :func:`scrub_store` is the run-to-completion convenience.
Detected blocks are quarantined in the buffer pool (every later fetch
fails fast) and reported via a :class:`ScrubReport`, which the ``scrub``
CLI subcommand renders and :func:`repro.core.repair.repair_store`
consumes.

On a legacy (no-checksum) store the scrub is *vacuous*: raw pages carry
no checksum, so every block passes and the report says so
(``legacy=True``) instead of pretending to a guarantee it cannot give.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ChecksumError, ReproError

#: Block owners, in scrub order.
DATA_CHAIN = "data-chain"
RANGE_INDEX = "range-index"
FULL_INDEX = "full-index"


@dataclass
class ScrubIssue:
    """One block that failed out-of-band verification."""

    block_no: int
    owner: str  # DATA_CHAIN / RANGE_INDEX / FULL_INDEX
    kind: str  # "checksum" | "unreadable"
    expected_crc: Optional[int] = None
    actual_crc: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "block_no": self.block_no,
            "owner": self.owner,
            "kind": self.kind,
            "expected_crc": self.expected_crc,
            "actual_crc": self.actual_crc,
        }


@dataclass
class ScrubReport:
    """Outcome of one (possibly incremental) scrub pass."""

    issues: List[ScrubIssue] = field(default_factory=list)
    blocks_total: int = 0
    blocks_checked: int = 0
    #: dirty-in-pool or pending-free blocks (device image not authoritative)
    blocks_skipped: int = 0
    #: True when the store has no checksum framing: the pass is vacuous
    legacy: bool = False
    #: False while an incremental scrub has blocks left to visit
    complete: bool = False

    @property
    def ok(self) -> bool:
        return not self.issues

    def bad_blocks(self) -> List[int]:
        return sorted({issue.block_no for issue in self.issues})

    def to_dict(self) -> dict:
        from repro.obs.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "ok": self.ok,
            "legacy": self.legacy,
            "complete": self.complete,
            "blocks_total": self.blocks_total,
            "blocks_checked": self.blocks_checked,
            "blocks_skipped": self.blocks_skipped,
            "issues": [issue.to_dict() for issue in self.issues],
        }

    def render(self) -> str:
        lines = []
        status = "OK" if self.ok else f"{len(self.issues)} BAD BLOCK(S)"
        if self.legacy:
            status += " (legacy store: no checksums, scrub is vacuous)"
        if not self.complete:
            status += " [incremental: pass incomplete]"
        lines.append(f"scrub: {status}")
        lines.append(
            f"  blocks: {self.blocks_checked}/{self.blocks_total} verified, "
            f"{self.blocks_skipped} skipped (dirty/pending-free)"
        )
        for issue in self.issues:
            detail = ""
            if issue.expected_crc is not None:
                detail = (
                    f" stored=0x{issue.expected_crc:08x}"
                    f" computed=0x{(issue.actual_crc or 0):08x}"
                )
            lines.append(
                f"  block {issue.block_no} [{issue.owner}]: {issue.kind}{detail}"
            )
        return "\n".join(lines)


class Scrubber:
    """Budgeted out-of-band checksum verification over one store.

    The block list is captured at construction (chain order first, then
    the index trees); :meth:`step` advances through it, so interleaving
    scrub steps with store operations verifies each block against the
    device image current when its turn comes.
    """

    def __init__(self, store) -> None:
        self.store = store
        self.report = ScrubReport(legacy=not store.codec.checksums)
        self._blocks = self._collect_blocks()
        self.report.blocks_total = len(self._blocks)
        self._cursor = 0
        self._completion_recorded = False

    def _collect_blocks(self) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []
        # chain membership comes from the catalog links: no device reads
        for block_no in self.store.layout.chain.blocks():
            out.append((block_no, DATA_CHAIN))
        out.extend(self._index_blocks(self.store.range_index._tree, RANGE_INDEX))
        if self.store.full_index is not None:
            out.extend(self._index_blocks(self.store.full_index._tree, FULL_INDEX))
        return out

    def _index_blocks(self, tree, owner: str) -> List[Tuple[int, str]]:
        """Defensive root-first walk: enumerating index blocks requires
        *reading* internal nodes, so a corrupt one is recorded as an
        issue immediately and its subtree (unreachable) is not descended
        into."""
        out: List[Tuple[int, str]] = []
        stack = [tree.root_block]
        while stack:
            block_no = stack.pop()
            out.append((block_no, owner))
            try:
                node = tree._load(block_no)
            except ChecksumError as error:
                self._record(
                    ScrubIssue(
                        block_no, owner, "checksum",
                        expected_crc=error.expected_crc,
                        actual_crc=error.actual_crc,
                    )
                )
                continue
            except ReproError:
                self._record(ScrubIssue(block_no, owner, "unreadable"))
                continue
            if not node.is_leaf:
                stack.extend(reversed(node.children))
        return out

    def _record(self, issue: ScrubIssue) -> None:
        if any(existing.block_no == issue.block_no for existing in self.report.issues):
            return
        self.report.issues.append(issue)
        pool = self.store.pool
        if not pool.is_quarantined(issue.block_no):
            pool.quarantine(
                issue.block_no,
                ChecksumError(
                    f"block {issue.block_no} failed scrub verification",
                    block_no=issue.block_no,
                    expected_crc=issue.expected_crc,
                    actual_crc=issue.actual_crc,
                ),
                source="scrub",
                owner=issue.owner,
            )
        if self.store.event_log.enabled:
            self.store.event_log.emit(
                "fault",
                "scrub_bad_block",
                severity="error",
                block=issue.block_no,
                owner=issue.owner,
                expected_crc=issue.expected_crc,
                actual_crc=issue.actual_crc,
            )

    def step(self, budget: Optional[int] = None) -> bool:
        """Verify up to ``budget`` more blocks (None = all remaining);
        returns True once the pass is complete."""
        pool = self.store.pool
        device = self.store.device
        codec = self.store.codec
        remaining = len(self._blocks) - self._cursor
        count = remaining if budget is None else max(0, min(budget, remaining))
        dirty = set(pool.dirty_blocks())
        pending = set(pool.pending_free_blocks())
        for _ in range(count):
            block_no, owner = self._blocks[self._cursor]
            self._cursor += 1
            if block_no in dirty or block_no in pending:
                self.report.blocks_skipped += 1
                continue
            self.report.blocks_checked += 1
            try:
                data = device.read_block(block_no)
            except ReproError:
                self._record(ScrubIssue(block_no, owner, "unreadable"))
                continue
            ok, stored, computed = codec.inspect(data, block_no)
            if not ok:
                self._record(
                    ScrubIssue(
                        block_no, owner, "checksum",
                        expected_crc=stored, actual_crc=computed,
                    )
                )
        self.report.complete = self._cursor >= len(self._blocks)
        if self.report.complete and not self._completion_recorded:
            # scrub recency: the health report and the
            # repro_storage_scrub_* series read these store-side marks
            self._completion_recorded = True
            self.store.scrub_completions += 1
            self.store.operations_at_last_scrub = (
                self.store.operations.read_ops + self.store.operations.updates
            )
        if self.report.complete and self.store.event_log.enabled:
            self.store.event_log.emit(
                "fault" if self.report.issues else "recovery",
                "scrub_complete",
                severity="error" if self.report.issues else "info",
                checked=self.report.blocks_checked,
                skipped=self.report.blocks_skipped,
                bad=len(self.report.issues),
            )
        return self.report.complete


def scrub_store(store, blocks_per_call: Optional[int] = None) -> ScrubReport:
    """Run a full scrub pass (optionally in ``blocks_per_call`` chunks)
    and return its report."""
    scrubber = Scrubber(store)
    while not scrubber.step(blocks_per_call):
        pass
    return scrubber.report
