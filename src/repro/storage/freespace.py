"""Free-space map: which chained blocks have room for more records.

The paper stores tokens "in the corresponding positions in the storage:
blocks are allocated accordingly" (§3.3).  The free-space map lets the
insert path find, without touching the disk, whether the block at an insert
position can absorb new tokens or whether a split/allocation is needed.

The map is a write-through cache of per-block free bytes, updated by the
store whenever it mutates a page.  It is advisory: a stale entry only costs
an extra page fetch, never correctness.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Optional, Tuple

_ENTRY = struct.Struct("<qI")
_HEADER = struct.Struct("<I")


class FreeSpaceMap:
    """Tracks an estimate of free payload bytes per block."""

    def __init__(self) -> None:
        self._free: Dict[int, int] = {}

    def record(self, block_no: int, free_bytes: int) -> None:
        """Update the estimate for ``block_no``."""
        self._free[block_no] = max(0, free_bytes)

    def forget(self, block_no: int) -> None:
        self._free.pop(block_no, None)

    def free_bytes(self, block_no: int) -> Optional[int]:
        """Last known free bytes for ``block_no`` (None if unknown)."""
        return self._free.get(block_no)

    def has_room(self, block_no: int, need: int) -> Optional[bool]:
        """Whether ``block_no`` can absorb ``need`` bytes (None if unknown)."""
        free = self._free.get(block_no)
        if free is None:
            return None
        return free >= need

    def blocks_with_room(self, need: int) -> Iterator[Tuple[int, int]]:
        """All known ``(block_no, free)`` pairs with at least ``need`` free."""
        return ((b, f) for b, f in self._free.items() if f >= need)

    def __len__(self) -> int:
        return len(self._free)

    # -- catalog serialization -------------------------------------------------

    def to_catalog(self) -> bytes:
        parts = [_HEADER.pack(len(self._free))]
        parts.extend(_ENTRY.pack(b, f) for b, f in self._free.items())
        return b"".join(parts)

    @classmethod
    def from_catalog(cls, data: bytes) -> "FreeSpaceMap":
        fsm = cls()
        (count,) = _HEADER.unpack_from(data, 0)
        offset = _HEADER.size
        for _ in range(count):
            block_no, free = _ENTRY.unpack_from(data, offset)
            offset += _ENTRY.size
            fsm._free[block_no] = free
        return fsm
