"""Block devices and the simulated I/O cost model.

The paper measured a Java/JDBC implementation on a 2005-era disk.  A pure
Python reproduction cannot meaningfully reproduce page-level wall-clock
numbers (see DESIGN.md), so the storage layer runs on an *instrumented*
block device that counts every read and write and charges each access
against an explicit cost model (seek cost for random access, transfer cost
per block, a cheaper rate for sequentially adjacent accesses).  Benchmarks
report throughput over this simulated clock; the *shape* of the results —
which indexing policy wins and by what factor — is determined by the same
quantities that determined it on real hardware: how many blocks were
touched and in what pattern.

Two storage backends are provided:

:class:`MemoryBlockDevice`
    Blocks live in a dict.  Fast, used by tests and benchmarks.

:class:`FileBlockDevice`
    Blocks live in a single binary file at ``block_no * block_size``.
    Demonstrates durability and is exercised by the recovery tests.

Both are normally wrapped in an :class:`InstrumentedDevice`, which adds the
statistics and cost accounting, and optionally a :class:`FaultInjector` used
by the failure-injection test-suite.  For crash-consistency testing the
torture harness inserts a :class:`repro.storage.faults.FaultyDisk` *between*
the instrumented wrapper and the backend: writes then land in a volatile
cache that only reaches stable storage on :meth:`BlockDevice.sync`, so a
simulated crash can discard everything since the last fsync barrier.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import BlockNotFoundError, DiskFaultError, StorageError
from repro.log import get_logger

DEFAULT_BLOCK_SIZE = 4096

_log = get_logger("storage.disk")


class BlockDevice:
    """Abstract fixed-size block device.

    Blocks are addressed by a dense integer block number.  ``allocate``
    returns a zero-filled block; ``free`` returns a block to the allocator
    (block numbers may be reused).
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size < 64:
            raise StorageError(f"block size {block_size} is too small")
        self.block_size = block_size

    # -- interface ----------------------------------------------------------

    #: Blocks are allocated from per-stream *extents* of this many
    #: consecutive block numbers, so different consumers (data chain vs.
    #: index trees) stay physically contiguous — as separate extents or
    #: files would on a real system.  Sequential-access detection in the
    #: cost model depends on this.
    EXTENT_BLOCKS = 64

    def read_block(self, block_no: int) -> bytes:
        raise NotImplementedError

    def write_block(self, block_no: int, data: bytes) -> None:
        raise NotImplementedError

    def allocate_block(self, stream: int = 0) -> int:
        """Allocate a zeroed block from ``stream``'s current extent."""
        raise NotImplementedError

    def free_block(self, block_no: int) -> None:
        raise NotImplementedError

    @property
    def num_blocks(self) -> int:
        raise NotImplementedError

    def block_numbers(self) -> Iterator[int]:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush to stable storage (no-op for memory devices)."""

    def close(self) -> None:
        """Release any OS resources."""

    # -- helpers ------------------------------------------------------------

    def _check_payload(self, data: bytes) -> bytes:
        if len(data) > self.block_size:
            raise StorageError(
                f"payload of {len(data)} bytes exceeds block size {self.block_size}"
            )
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        return data


class _ExtentAllocator:
    """Hands out block numbers from per-stream extents, reusing frees
    within the stream that freed them."""

    def __init__(self, extent_blocks: int) -> None:
        self.extent_blocks = extent_blocks
        self._next_extent_base = 0
        # stream -> (next block in current extent, blocks left in it)
        self._cursor: Dict[int, Tuple[int, int]] = {}
        self._free: Dict[int, List[int]] = {}
        self._stream_of: Dict[int, int] = {}

    def allocate(self, stream: int) -> int:
        free = self._free.get(stream)
        if free:
            block_no = free.pop()
        else:
            cursor, remaining = self._cursor.get(stream, (0, 0))
            if remaining == 0:
                cursor = self._next_extent_base
                self._next_extent_base += self.extent_blocks
                remaining = self.extent_blocks
            block_no = cursor
            self._cursor[stream] = (cursor + 1, remaining - 1)
        self._stream_of[block_no] = stream
        return block_no

    def free(self, block_no: int) -> None:
        stream = self._stream_of.get(block_no, 0)
        self._free.setdefault(stream, []).append(block_no)

    def reserve_existing(self, blocks: int) -> None:
        """Mark the first ``blocks`` block numbers as taken (device
        reopen): future extents start beyond them, and no stream cursor
        may point into the reserved region."""
        extents = -(-blocks // self.extent_blocks)  # ceil division
        self._next_extent_base = max(
            self._next_extent_base, extents * self.extent_blocks
        )
        self._cursor.clear()

    @property
    def high_water_mark(self) -> int:
        return self._next_extent_base


class MemoryBlockDevice(BlockDevice):
    """In-memory block device backed by a dict."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(block_size)
        self._blocks: Dict[int, bytes] = {}
        self._allocator = _ExtentAllocator(self.EXTENT_BLOCKS)

    def read_block(self, block_no: int) -> bytes:
        try:
            return self._blocks[block_no]
        except KeyError:
            raise BlockNotFoundError(f"block {block_no} does not exist") from None

    def write_block(self, block_no: int, data: bytes) -> None:
        if block_no not in self._blocks:
            raise BlockNotFoundError(f"block {block_no} was never allocated")
        self._blocks[block_no] = self._check_payload(data)

    def allocate_block(self, stream: int = 0) -> int:
        block_no = self._allocator.allocate(stream)
        self._blocks[block_no] = b"\x00" * self.block_size
        return block_no

    def free_block(self, block_no: int) -> None:
        if block_no not in self._blocks:
            raise BlockNotFoundError(f"block {block_no} does not exist")
        del self._blocks[block_no]
        self._allocator.free(block_no)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def block_numbers(self) -> Iterator[int]:
        return iter(sorted(self._blocks))


class FileBlockDevice(BlockDevice):
    """Block device backed by a single binary file.

    The file grows on demand.  A small free list is kept in memory only; a
    production system would persist it, but the store's own free-space map
    (see :mod:`repro.storage.freespace`) already records which blocks are
    live, so the device-level free list is reconstructible.
    """

    def __init__(self, path: str, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(block_size)
        self.path = path
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % block_size:
            raise StorageError(
                f"file size {size} is not a multiple of block size {block_size}"
            )
        self._allocator = _ExtentAllocator(self.EXTENT_BLOCKS)
        # Reopening an existing file: treat every existing block as live
        # so reads work; new extents must start strictly past them.
        existing = size // block_size
        self._allocated = set(range(existing))
        self._allocator.reserve_existing(existing)

    def _file_blocks(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell() // self.block_size

    def read_block(self, block_no: int) -> bytes:
        if block_no not in self._allocated:
            raise BlockNotFoundError(f"block {block_no} does not exist")
        self._file.seek(block_no * self.block_size)
        return self._file.read(self.block_size)

    def write_block(self, block_no: int, data: bytes) -> None:
        if block_no not in self._allocated:
            raise BlockNotFoundError(f"block {block_no} does not exist")
        self._file.seek(block_no * self.block_size)
        self._file.write(self._check_payload(data))

    def allocate_block(self, stream: int = 0) -> int:
        block_no = self._allocator.allocate(stream)
        # grow the file to cover the block (extents may leave gaps; fill
        # them with zeros so the file stays dense)
        current = self._file_blocks()
        if block_no >= current:
            self._file.seek(0, os.SEEK_END)
            self._file.write(b"\x00" * ((block_no + 1 - current) * self.block_size))
        else:
            self._file.seek(block_no * self.block_size)
            self._file.write(b"\x00" * self.block_size)
        self._allocated.add(block_no)
        return block_no

    def free_block(self, block_no: int) -> None:
        if block_no not in self._allocated:
            raise BlockNotFoundError(f"block {block_no} does not exist")
        self._allocated.discard(block_no)
        self._allocator.free(block_no)

    @property
    def num_blocks(self) -> int:
        return len(self._allocated)

    def block_numbers(self) -> Iterator[int]:
        return iter(sorted(self._allocated))

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()


@dataclass(frozen=True)
class DiskCostModel:
    """Charges for block accesses, in (simulated) seconds.

    The defaults model a 2005-era commodity disk, the class of hardware in
    the paper's experimental setup: ~8.5 ms average seek + rotational delay
    for a random access, and ~55 MB/s sequential transfer.  An access is
    *sequential* when it touches the block adjacent to the previously
    accessed block of the same kind (read/write treated together, as a
    single head position).
    """

    seek_seconds: float = 0.0085
    transfer_seconds_per_block: float = 4096 / (55 * 1024 * 1024)
    write_penalty: float = 1.0  # multiplier applied to write transfers
    #: Simulated seconds charged per sync barrier (device ``sync()`` and
    #: WAL flush).  Zero by default so the committed Table-5 baselines
    #: are untouched; the serving layer sets it so group commit's
    #: one-barrier-per-batch saving shows up in simulated cost.
    sync_seconds: float = 0.0

    def cost(self, sequential: bool, is_write: bool) -> float:
        cost = self.transfer_seconds_per_block
        if is_write:
            cost *= self.write_penalty
        if not sequential:
            cost += self.seek_seconds
        return cost


@dataclass
class DiskStats:
    """Counters maintained by :class:`InstrumentedDevice`."""

    reads: int = 0
    writes: int = 0
    sequential_reads: int = 0
    sequential_writes: int = 0
    allocations: int = 0
    frees: int = 0
    syncs: int = 0
    simulated_seconds: float = 0.0

    @property
    def random_reads(self) -> int:
        return self.reads - self.sequential_reads

    @property
    def random_writes(self) -> int:
        return self.writes - self.sequential_writes

    @property
    def total_ios(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "DiskStats":
        return DiskStats(**self.__dict__)

    def delta(self, earlier: "DiskStats") -> "DiskStats":
        """Return the difference ``self - earlier`` (for per-phase stats)."""
        return DiskStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            sequential_writes=self.sequential_writes - earlier.sequential_writes,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            syncs=self.syncs - earlier.syncs,
            simulated_seconds=self.simulated_seconds - earlier.simulated_seconds,
        )

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.sequential_reads = 0
        self.sequential_writes = 0
        self.allocations = 0
        self.frees = 0
        self.syncs = 0
        self.simulated_seconds = 0.0

    def register_metrics(self, registry) -> None:
        """Project these counters into a metrics registry."""
        io = registry.counter(
            "repro_disk_io_total",
            "Block accesses by direction and access pattern.",
            labelnames=("op", "pattern"),
        )
        io.labels(op="read", pattern="sequential").inc(self.sequential_reads)
        io.labels(op="read", pattern="random").inc(self.random_reads)
        io.labels(op="write", pattern="sequential").inc(self.sequential_writes)
        io.labels(op="write", pattern="random").inc(self.random_writes)
        registry.counter(
            "repro_disk_allocations_total", "Blocks allocated."
        ).inc(self.allocations)
        registry.counter(
            "repro_disk_frees_total", "Blocks freed."
        ).inc(self.frees)
        registry.counter(
            "repro_disk_syncs_total",
            "Durability barriers issued (fsync boundaries; the crash-"
            "consistency harness may only reorder writes within one).",
        ).inc(self.syncs)
        registry.counter(
            "repro_disk_simulated_seconds_total",
            "Simulated seconds charged by the disk cost model.",
        ).inc(self.simulated_seconds)


class FaultInjector:
    """Hook that may raise :class:`DiskFaultError` on chosen accesses.

    Used by the failure-injection tests, e.g. "crash on the Nth write".
    ``predicate`` receives ``(op, block_no, stats)`` where ``op`` is one of
    ``"read"``/``"write"``/``"alloc"`` and should return True to fire.
    """

    def __init__(
        self, predicate: Callable[[str, int, DiskStats], bool], message: str = "injected fault"
    ) -> None:
        self.predicate = predicate
        self.message = message
        self.fired = 0

    def check(self, op: str, block_no: int, stats: DiskStats) -> None:
        if self.predicate(op, block_no, stats):
            self.fired += 1
            _log.warning("injected disk fault #%d: %s (%s block %d)",
                         self.fired, self.message, op, block_no)
            raise DiskFaultError(f"{self.message} ({op} block {block_no})")


class InstrumentedDevice(BlockDevice):
    """Wraps a backend device with statistics, cost accounting and faults."""

    def __init__(
        self,
        backend: Optional[BlockDevice] = None,
        cost_model: Optional[DiskCostModel] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        backend = backend if backend is not None else MemoryBlockDevice()
        super().__init__(backend.block_size)
        self.backend = backend
        self.cost_model = cost_model if cost_model is not None else DiskCostModel()
        self.fault_injector = fault_injector
        self.stats = DiskStats()
        self._head_position: Optional[int] = None

    # -- accounting ---------------------------------------------------------

    def _account(self, block_no: int, is_write: bool) -> None:
        sequential = (
            self._head_position is not None and block_no == self._head_position + 1
        )
        self.stats.simulated_seconds += self.cost_model.cost(sequential, is_write)
        if is_write:
            self.stats.writes += 1
            if sequential:
                self.stats.sequential_writes += 1
        else:
            self.stats.reads += 1
            if sequential:
                self.stats.sequential_reads += 1
        self._head_position = block_no

    # -- BlockDevice --------------------------------------------------------

    def read_block(self, block_no: int) -> bytes:
        if self.fault_injector is not None:
            self.fault_injector.check("read", block_no, self.stats)
        data = self.backend.read_block(block_no)
        self._account(block_no, is_write=False)
        return data

    def write_block(self, block_no: int, data: bytes) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check("write", block_no, self.stats)
        self.backend.write_block(block_no, data)
        self._account(block_no, is_write=True)

    def allocate_block(self, stream: int = 0) -> int:
        if self.fault_injector is not None:
            self.fault_injector.check("alloc", -1, self.stats)
        block_no = self.backend.allocate_block(stream)
        self.stats.allocations += 1
        return block_no

    def free_block(self, block_no: int) -> None:
        self.backend.free_block(block_no)
        self.stats.frees += 1

    @property
    def num_blocks(self) -> int:
        return self.backend.num_blocks

    def block_numbers(self) -> Iterator[int]:
        return self.backend.block_numbers()

    def sync(self) -> None:
        self.backend.sync()
        self.stats.syncs += 1
        self.stats.simulated_seconds += self.cost_model.sync_seconds

    def close(self) -> None:
        self.backend.close()
