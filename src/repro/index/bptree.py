"""A paged B+-tree over the buffer pool.

This is the ordered-index substrate under both the coarse Range Index and
the full-index baseline.  In the paper's prototype this role was played by
MySQL's B-trees; building our own — *on the same buffer pool and
instrumented device as the data blocks* — means every index node touch is
charged to the same simulated clock as data I/O, so the cost asymmetry the
paper measures (full index: one index insert per node; range index: one
per range) emerges from first principles.

Each tree node occupies one block.  Keys are arbitrary Python objects
serialized through an order-agnostic codec; ordering uses the *decoded*
keys' natural ``<``, so any totally ordered key type works (ints, tuples,
bytes).  Leaves are chained for range scans.  Deletion rebalances by
borrowing from or merging with siblings, so the tree never degrades.

The tree keeps only its root block number as external state
(:attr:`PagedBPlusTree.root_block`); persist that in a catalog to reopen.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import StorageError
from repro.storage.buffer import BufferPool

K = TypeVar("K")
V = TypeVar("V")

_NODE_HEADER = struct.Struct("<Bq")  # is_leaf, next_leaf / first_child


@dataclass(frozen=True)
class KeyCodec(Generic[K]):
    """Order-agnostic key serialization (ordering uses decoded values)."""

    encode: Callable[[K], bytes]
    decode: Callable[[bytes], K]


def _encode_int(value: int) -> bytes:
    return struct.pack("<q", value)


def _decode_int(data: bytes) -> int:
    return struct.unpack("<q", data)[0]


INT_KEY_CODEC: KeyCodec[int] = KeyCodec(encode=_encode_int, decode=_decode_int)


def _encode_int_tuple(value: Tuple[int, ...]) -> bytes:
    return struct.pack(f"<H{len(value)}q", len(value), *value)


def _decode_int_tuple(data: bytes) -> Tuple[int, ...]:
    (count,) = struct.unpack_from("<H", data, 0)
    return struct.unpack_from(f"<{count}q", data, 2)


INT_TUPLE_KEY_CODEC: KeyCodec[Tuple[int, ...]] = KeyCodec(
    encode=_encode_int_tuple, decode=_decode_int_tuple
)

BYTES_KEY_CODEC: KeyCodec[bytes] = KeyCodec(encode=bytes, decode=bytes)


class _Node(Generic[K]):
    """Decoded form of one tree node."""

    __slots__ = ("is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[K] = []
        self.values: List[bytes] = []  # leaf only
        self.children: List[int] = []  # internal only; len == len(keys)+1
        self.next_leaf: Optional[int] = None


class PagedBPlusTree(Generic[K]):
    """B+-tree with byte-string values and pluggable key codec.

    ``order`` is the maximum number of keys per node; it must be chosen so
    a full node serializes into one block (checked at write time).
    """

    #: Allocation stream for tree pages: keeps index extents separate from
    #: the data chain's, as a real system's separate index file would.
    INDEX_STREAM = 1

    def __init__(
        self,
        pool: BufferPool,
        key_codec: KeyCodec[K],
        order: int = 64,
        root_block: Optional[int] = None,
        alloc_stream: int = INDEX_STREAM,
    ) -> None:
        if order < 3:
            raise StorageError("B+-tree order must be >= 3")
        self.pool = pool
        self.key_codec = key_codec
        self.order = order
        self.alloc_stream = alloc_stream
        #: entries decoded while loading nodes — the CPU-cost ledger used
        #: by the simulated clock (analogous to tokens scanned).
        self.entries_loaded = 0
        if root_block is None:
            root = _Node[K](is_leaf=True)
            with pool.new_page(self.alloc_stream) as guard:
                self.root_block = guard.block_no
                self._store(guard, root)
        else:
            self.root_block = root_block

    # ------------------------------------------------------------------ io --

    def _load(self, block_no: int) -> _Node[K]:
        with self.pool.fetch(block_no) as guard:
            records = guard.page.records()
        is_leaf_flag, pointer = _NODE_HEADER.unpack(records[0])
        node = _Node[K](is_leaf=bool(is_leaf_flag))
        if node.is_leaf:
            node.next_leaf = None if pointer == -1 else pointer
            for record in records[1:]:
                (key_len,) = struct.unpack_from("<H", record, 0)
                node.keys.append(self.key_codec.decode(record[2 : 2 + key_len]))
                node.values.append(record[2 + key_len :])
        else:
            node.children.append(pointer)
            for record in records[1:]:
                (key_len,) = struct.unpack_from("<H", record, 0)
                node.keys.append(self.key_codec.decode(record[2 : 2 + key_len]))
                (child,) = struct.unpack_from("<q", record, 2 + key_len)
                node.children.append(child)
        self.entries_loaded += len(node.keys)
        return node

    def _save(self, block_no: int, node: _Node[K]) -> None:
        with self.pool.fetch(block_no) as guard:
            self._store(guard, node)

    def _store(self, guard, node: _Node[K]) -> None:
        page = guard.page
        while len(page):
            page.delete(len(page) - 1)
        if node.is_leaf:
            pointer = -1 if node.next_leaf is None else node.next_leaf
            page.append(_NODE_HEADER.pack(1, pointer))
            for key, value in zip(node.keys, node.values):
                encoded = self.key_codec.encode(key)
                page.append(struct.pack("<H", len(encoded)) + encoded + value)
        else:
            page.append(_NODE_HEADER.pack(0, node.children[0]))
            for key, child in zip(node.keys, node.children[1:]):
                encoded = self.key_codec.encode(key)
                page.append(
                    struct.pack("<H", len(encoded))
                    + encoded
                    + struct.pack("<q", child)
                )
        guard.mark_dirty()

    def _new_node(self, node: _Node[K]) -> int:
        with self.pool.new_page(self.alloc_stream) as guard:
            self._store(guard, node)
            return guard.block_no

    # -------------------------------------------------------------- queries --

    def get(self, key: K) -> Optional[bytes]:
        """The value stored under ``key``, or None."""
        node = self._load(self._find_leaf(key))
        index = _lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        return None

    def __contains__(self, key: K) -> bool:
        return self.get(key) is not None

    def floor_item(self, key: K) -> Optional[Tuple[K, bytes]]:
        """The entry with the largest key ``<= key`` (the Range Index's
        lookup primitive), or None if every key is greater."""
        block_no = self._find_leaf(key)
        node = self._load(block_no)
        index = _upper_bound(node.keys, key) - 1
        if index >= 0:
            return node.keys[index], node.values[index]
        # Everything in this leaf is greater; the floor, if any, is the
        # last entry of the previous leaf.  Leaves are singly linked, so
        # walk down the left spine tracking the predecessor leaf.
        prev = self._predecessor_leaf(block_no)
        if prev is None:
            return None
        prev_node = self._load(prev)
        if not prev_node.keys:
            return None
        return prev_node.keys[-1], prev_node.values[-1]

    def ceiling_item(self, key: K) -> Optional[Tuple[K, bytes]]:
        """The entry with the smallest key ``>= key``, or None."""
        node = self._load(self._find_leaf(key))
        index = _lower_bound(node.keys, key)
        if index < len(node.keys):
            return node.keys[index], node.values[index]
        if node.next_leaf is None:
            return None
        nxt = self._load(node.next_leaf)
        if not nxt.keys:
            return None
        return nxt.keys[0], nxt.values[0]

    def items(
        self, low: Optional[K] = None, high: Optional[K] = None
    ) -> Iterator[Tuple[K, bytes]]:
        """Iterate entries with ``low <= key <= high`` in key order."""
        if low is None:
            block_no: Optional[int] = self._leftmost_leaf()
        else:
            block_no = self._find_leaf(low)
        while block_no is not None:
            node = self._load(block_no)
            for key, value in zip(node.keys, node.values):
                if low is not None and key < low:
                    continue
                if high is not None and high < key:
                    return
                yield key, value
            block_no = node.next_leaf

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    @property
    def is_empty(self) -> bool:
        for _ in self.items():
            return False
        return True

    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        levels = 1
        node = self._load(self.root_block)
        while not node.is_leaf:
            levels += 1
            node = self._load(node.children[0])
        return levels

    # ------------------------------------------------------------- mutation --

    def insert(self, key: K, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        split = self._insert(self.root_block, key, value)
        if split is not None:
            middle_key, right_block = split
            new_root = _Node[K](is_leaf=False)
            new_root.keys = [middle_key]
            new_root.children = [self.root_block, right_block]
            self.root_block = self._new_node(new_root)

    def delete(self, key: K) -> bool:
        """Remove ``key``; returns whether it was present."""
        removed = self._delete(self.root_block, key)
        root = self._load(self.root_block)
        if not root.is_leaf and len(root.children) == 1:
            # shrink the tree: the lone child becomes the root
            old_root = self.root_block
            self.root_block = root.children[0]
            self.pool.free_page(old_root)
        return removed

    def clear(self) -> None:
        """Remove every entry (frees all non-root blocks)."""
        self._free_subtree(self.root_block, keep_root=True)
        root = _Node[K](is_leaf=True)
        self._save(self.root_block, root)

    # ----------------------------------------------------------- insertion --

    def _insert(
        self, block_no: int, key: K, value: bytes
    ) -> Optional[Tuple[K, int]]:
        node = self._load(block_no)
        if node.is_leaf:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
            if len(node.keys) > self.order:
                return self._split_leaf(block_no, node)
            self._save(block_no, node)
            return None
        index = _upper_bound(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        middle_key, right_block = split
        node.keys.insert(index, middle_key)
        node.children.insert(index + 1, right_block)
        if len(node.keys) > self.order:
            return self._split_internal(block_no, node)
        self._save(block_no, node)
        return None

    def _split_leaf(self, block_no: int, node: _Node[K]) -> Tuple[K, int]:
        half = len(node.keys) // 2
        right = _Node[K](is_leaf=True)
        right.keys = node.keys[half:]
        right.values = node.values[half:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:half]
        node.values = node.values[:half]
        right_block = self._new_node(right)
        node.next_leaf = right_block
        self._save(block_no, node)
        return right.keys[0], right_block

    def _split_internal(self, block_no: int, node: _Node[K]) -> Tuple[K, int]:
        half = len(node.keys) // 2
        middle_key = node.keys[half]
        right = _Node[K](is_leaf=False)
        right.keys = node.keys[half + 1 :]
        right.children = node.children[half + 1 :]
        node.keys = node.keys[:half]
        node.children = node.children[: half + 1]
        right_block = self._new_node(right)
        self._save(block_no, node)
        return middle_key, right_block

    # ------------------------------------------------------------ deletion --

    def _delete(self, block_no: int, key: K) -> bool:
        node = self._load(block_no)
        if node.is_leaf:
            index = _lower_bound(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index]
            del node.values[index]
            self._save(block_no, node)
            return True
        index = _upper_bound(node.keys, key)
        removed = self._delete(node.children[index], key)
        if removed:
            self._rebalance_child(block_no, index)
        return removed

    def _min_keys(self) -> int:
        return self.order // 2

    def _rebalance_child(self, parent_block: int, index: int) -> None:
        parent = self._load(parent_block)
        child_block = parent.children[index]
        child = self._load(child_block)
        if len(child.keys) >= self._min_keys():
            return
        # Try borrowing from the left sibling.
        if index > 0:
            left_block = parent.children[index - 1]
            left = self._load(left_block)
            if len(left.keys) > self._min_keys():
                self._borrow_from_left(parent, index, left, child)
                self._save(left_block, left)
                self._save(child_block, child)
                self._save(parent_block, parent)
                return
        # Try borrowing from the right sibling.
        if index < len(parent.children) - 1:
            right_block = parent.children[index + 1]
            right = self._load(right_block)
            if len(right.keys) > self._min_keys():
                self._borrow_from_right(parent, index, child, right)
                self._save(right_block, right)
                self._save(child_block, child)
                self._save(parent_block, parent)
                return
        # Merge with a sibling.
        if index > 0:
            self._merge_children(parent_block, parent, index - 1)
        else:
            self._merge_children(parent_block, parent, index)

    def _borrow_from_left(
        self, parent: _Node[K], index: int, left: _Node[K], child: _Node[K]
    ) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Node[K], index: int, child: _Node[K], right: _Node[K]
    ) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge_children(self, parent_block: int, parent: _Node[K], left_index: int) -> None:
        left_block = parent.children[left_index]
        right_block = parent.children[left_index + 1]
        left = self._load(left_block)
        right = self._load(right_block)
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_index]
        del parent.children[left_index + 1]
        self._save(left_block, left)
        self._save(parent_block, parent)
        self.pool.free_page(right_block)

    # ------------------------------------------------------------ traversal --

    def _find_leaf(self, key: K) -> int:
        block_no = self.root_block
        node = self._load(block_no)
        while not node.is_leaf:
            block_no = node.children[_upper_bound(node.keys, key)]
            node = self._load(block_no)
        return block_no

    def _leftmost_leaf(self) -> int:
        block_no = self.root_block
        node = self._load(block_no)
        while not node.is_leaf:
            block_no = node.children[0]
            node = self._load(block_no)
        return block_no

    def _predecessor_leaf(self, leaf_block: int) -> Optional[int]:
        previous = None
        current = self._leftmost_leaf()
        while current != leaf_block:
            node = self._load(current)
            previous = current
            current = node.next_leaf
            if current is None:
                raise StorageError("leaf chain is broken (bug)")
        return previous

    def block_numbers(self) -> List[int]:
        """Every block this tree occupies (root-first walk).

        The scrubber uses this to know which device blocks belong to the
        index chain; unlike :meth:`items` it visits internal nodes too.
        """
        out: List[int] = []
        stack = [self.root_block]
        while stack:
            block_no = stack.pop()
            out.append(block_no)
            node = self._load(block_no)
            if not node.is_leaf:
                stack.extend(reversed(node.children))
        return out

    def _free_subtree(self, block_no: int, keep_root: bool = False) -> None:
        node = self._load(block_no)
        if not node.is_leaf:
            for child in node.children:
                self._free_subtree(child)
        if not keep_root:
            self.pool.free_page(block_no)

    # ------------------------------------------------------------ integrity --

    def check_integrity(self) -> None:
        """Verify ordering, balance and leaf-chain consistency (test aid)."""
        leaves: List[int] = []
        self._check_node(self.root_block, None, None, leaves, is_root=True)
        # the leaf chain must visit exactly the leaves, left to right
        chained = []
        current: Optional[int] = self._leftmost_leaf()
        while current is not None:
            chained.append(current)
            current = self._load(current).next_leaf
        if chained != leaves:
            raise StorageError(f"leaf chain {chained} != tree leaves {leaves}")

    def _check_node(
        self,
        block_no: int,
        low: Optional[K],
        high: Optional[K],
        leaves: List[int],
        is_root: bool = False,
        depth: int = 0,
        leaf_depth: Optional[List[int]] = None,
    ) -> None:
        if leaf_depth is None:
            leaf_depth = []
        node = self._load(block_no)
        keys = node.keys
        for left, right in zip(keys, keys[1:]):
            if not left < right:
                raise StorageError(f"keys out of order in block {block_no}")
        if low is not None and keys and keys[0] < low:
            raise StorageError(f"key below lower bound in block {block_no}")
        if high is not None and keys and not keys[-1] < high:
            raise StorageError(f"key at/above upper bound in block {block_no}")
        if not is_root and len(keys) < self._min_keys() and not node.is_leaf:
            raise StorageError(f"underfull internal node {block_no}")
        if node.is_leaf:
            if leaf_depth and depth != leaf_depth[0]:
                raise StorageError("leaves at differing depths")
            leaf_depth.append(depth)
            leaves.append(block_no)
            return
        if len(node.children) != len(keys) + 1:
            raise StorageError(f"child count mismatch in block {block_no}")
        bounds = [low] + list(keys) + [high]
        for child, (lo, hi) in zip(node.children, zip(bounds, bounds[1:])):
            self._check_node(child, lo, hi, leaves, depth=depth + 1, leaf_depth=leaf_depth)


def _lower_bound(keys: List[K], key: K) -> int:
    """First index whose key is >= key."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: List[K], key: K) -> int:
    """First index whose key is > key."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
