"""Ordered-index substrate: a paged B+-tree over the buffer pool."""

from repro.index.bptree import (
    BYTES_KEY_CODEC,
    INT_KEY_CODEC,
    INT_TUPLE_KEY_CODEC,
    KeyCodec,
    PagedBPlusTree,
)

__all__ = [
    "BYTES_KEY_CODEC",
    "INT_KEY_CODEC",
    "INT_TUPLE_KEY_CODEC",
    "KeyCodec",
    "PagedBPlusTree",
]
