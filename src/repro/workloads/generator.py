"""Deterministic synthetic XML generators.

The paper's micro-benchmarks are parameterized by node counts and insert
granularity; these generators produce documents and fragments with *exact*
node counts so experiments are reproducible bit-for-bit (all randomness is
seeded).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform victor "
    "whiskey xray yankee zulu"
).split()


def words(rng: random.Random, count: int) -> str:
    """A deterministic phrase of ``count`` vocabulary words."""
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def element_tree_with_nodes(
    node_count: int,
    rng: Optional[random.Random] = None,
    tag: str = "n",
    fanout: int = 8,
) -> str:
    """An element-only tree with exactly ``node_count`` element nodes.

    Children are distributed breadth-first with the given fanout, so the
    tree's depth grows logarithmically — shaped like real documents rather
    than a degenerate chain.
    """
    if node_count < 1:
        raise ValueError("node_count must be >= 1")
    rng = rng if rng is not None else random.Random(0)
    # children[i] = indexes of node i's children
    children: List[List[int]] = [[] for _ in range(node_count)]
    frontier = [0]
    next_node = 1
    while next_node < node_count:
        parent = frontier.pop(0)
        take = min(fanout, node_count - next_node)
        for _ in range(take):
            children[parent].append(next_node)
            frontier.append(next_node)
            next_node += 1
    parts: List[str] = []

    def render(index: int) -> None:
        name = f"{tag}{index}"
        if children[index]:
            parts.append(f"<{name}>")
            for child in children[index]:
                render(child)
            parts.append(f"</{name}>")
        else:
            parts.append(f"<{name}/>")

    render(0)
    return "".join(parts)


def purchase_order(order_no: int, items: int, rng: random.Random) -> str:
    """One ``<purchase-order>`` element — the paper's §4.1 usage pattern
    ("insert a <purchase-order> element as the last child of the root")."""
    parts = [f'<purchase-order no="{order_no}">']
    parts.append(f"<customer>{words(rng, 2)}</customer>")
    parts.append(f"<date>2005-{1 + order_no % 12:02d}-{1 + order_no % 28:02d}</date>")
    for item_no in range(items):
        price = f"{rng.randrange(1, 500)}.{rng.randrange(100):02d}"
        parts.append(
            f'<item sku="sku-{rng.randrange(10_000):04d}">'
            f"<description>{words(rng, 3)}</description>"
            f"<quantity>{rng.randrange(1, 20)}</quantity>"
            f"<price>{price}</price>"
            f"</item>"
        )
    parts.append("</purchase-order>")
    return "".join(parts)


def purchase_orders_document(
    orders: int, items_per_order: int = 3, seed: int = 7
) -> str:
    """A complete ``<purchase-orders>`` document."""
    rng = random.Random(seed)
    body = "".join(
        purchase_order(order_no, items_per_order, rng) for order_no in range(orders)
    )
    return f"<purchase-orders>{body}</purchase-orders>"


def purchase_order_stream(
    count: int, items_per_order: int = 3, seed: int = 7, start_no: int = 0
) -> Iterator[str]:
    """A stream of order fragments, for append workloads."""
    rng = random.Random(seed)
    for order_no in range(start_no, start_no + count):
        yield purchase_order(order_no, items_per_order, rng)


def text_heavy_document(paragraphs: int, words_each: int = 30, seed: int = 11) -> str:
    """A document dominated by character data (articles, not records)."""
    rng = random.Random(seed)
    body = "".join(
        f"<p>{words(rng, words_each)}</p>" for _ in range(paragraphs)
    )
    return f"<article><title>{words(rng, 5)}</title>{body}</article>"
