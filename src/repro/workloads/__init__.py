"""Workload generators and operation streams for the benchmarks."""

from repro.workloads.generator import (
    element_tree_with_nodes,
    purchase_order,
    purchase_order_stream,
    purchase_orders_document,
    text_heavy_document,
    words,
)
from repro.workloads.operations import (
    Operation,
    append_stream,
    apply_operation,
    apply_stream,
    hot_cold_choices,
    mixed_stream,
    read_stream,
    zipf_choices,
)
from repro.workloads.xmark import bidder_fragment, xmark_document

__all__ = [
    "Operation",
    "append_stream",
    "apply_operation",
    "apply_stream",
    "bidder_fragment",
    "element_tree_with_nodes",
    "hot_cold_choices",
    "mixed_stream",
    "purchase_order",
    "purchase_order_stream",
    "purchase_orders_document",
    "read_stream",
    "text_heavy_document",
    "words",
    "xmark_document",
    "zipf_choices",
]
