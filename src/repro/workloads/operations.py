"""Operation streams: the access patterns the benchmarks replay.

A workload is a deterministic sequence of (operation, arguments) drawn
from seeded distributions — uniform or Zipf-skewed node choices, and mixed
read/update streams with a configurable read fraction (the knob Ablation E
sweeps).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple


def zipf_choices(
    population: Sequence[int], count: int, skew: float, seed: int = 0
) -> List[int]:
    """``count`` draws from ``population`` under a Zipf(skew) rank
    distribution (rank 1 = first element).  ``skew=0`` is uniform."""
    if not population:
        raise ValueError("population is empty")
    rng = random.Random(seed)
    if skew <= 0:
        return [rng.choice(population) for _ in range(count)]
    weights = [1.0 / (rank ** skew) for rank in range(1, len(population) + 1)]
    return rng.choices(list(population), weights=weights, k=count)


def hot_cold_choices(
    population: Sequence[int],
    count: int,
    hot_fraction: float = 0.2,
    hot_probability: float = 0.8,
    seed: int = 0,
) -> List[int]:
    """The classic 80/20 pattern: ``hot_probability`` of draws hit the
    first ``hot_fraction`` of the population."""
    if not population:
        raise ValueError("population is empty")
    rng = random.Random(seed)
    hot_size = max(1, int(len(population) * hot_fraction))
    hot, cold = population[:hot_size], population[hot_size:] or population[:hot_size]
    return [
        rng.choice(hot) if rng.random() < hot_probability else rng.choice(cold)
        for _ in range(count)
    ]


@dataclass(frozen=True)
class Operation:
    """One workload step."""

    kind: str  # 'read' | 'insert' | 'delete' | 'replace' | 'scan'
    node_id: Optional[int] = None
    payload: str = ""


def read_stream(node_ids: Sequence[int]) -> List[Operation]:
    return [Operation("read", node_id) for node_id in node_ids]


def append_stream(target_id: int, fragments: Sequence[str]) -> List[Operation]:
    return [Operation("insert", target_id, fragment) for fragment in fragments]


def mixed_stream(
    read_ids: Sequence[int],
    target_id: int,
    fragments: Sequence[str],
    read_fraction: float,
    count: int,
    seed: int = 0,
) -> List[Operation]:
    """A stream of ``count`` operations with the given read fraction;
    updates consume ``fragments`` round-robin."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    rng = random.Random(seed)
    operations: List[Operation] = []
    fragment_index = 0
    for _ in range(count):
        if rng.random() < read_fraction:
            operations.append(Operation("read", rng.choice(list(read_ids))))
        else:
            operations.append(
                Operation("insert", target_id, fragments[fragment_index % len(fragments)])
            )
            fragment_index += 1
    return operations


def apply_operation(store, operation: Operation) -> None:
    """Execute one workload step against a store."""
    if operation.kind == "read":
        assert operation.node_id is not None
        store.read(operation.node_id)
    elif operation.kind == "scan":
        store.read()
    elif operation.kind == "insert":
        assert operation.node_id is not None
        store.insert_into_last(operation.node_id, operation.payload)
    elif operation.kind == "delete":
        assert operation.node_id is not None
        store.delete_node(operation.node_id)
    elif operation.kind == "replace":
        assert operation.node_id is not None
        store.replace_node(operation.node_id, operation.payload)
    else:
        raise ValueError(f"unknown operation kind {operation.kind!r}")


def apply_stream(store, operations: Sequence[Operation]) -> None:
    for operation in operations:
        apply_operation(store, operation)
