"""XMark-like auction documents.

A scaled-down, dependency-free rendition of the XMark benchmark's auction
site schema (site → regions/categories/people/open_auctions).  Not the
official generator — the shape (deep regions, flat people, cross-reference
attributes, mixed text) is what matters for exercising the store the way
XML benchmarks of the paper's era did.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.generator import words

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


def _item(region: str, number: int, rng: random.Random) -> str:
    return (
        f'<item id="item-{region}-{number}">'
        f"<name>{words(rng, 3)}</name>"
        f"<location>{words(rng, 1)}</location>"
        f"<quantity>{rng.randrange(1, 10)}</quantity>"
        f"<payment>{rng.choice(('Cash', 'Creditcard', 'Money order'))}</payment>"
        f"<description><parlist><listitem>{words(rng, 8)}</listitem>"
        f"<listitem>{words(rng, 6)}</listitem></parlist></description>"
        f"</item>"
    )


def _person(number: int, rng: random.Random) -> str:
    email = f"mailto:{words(rng, 1)}{number}@example.org"
    parts = [
        f'<person id="person{number}">',
        f"<name>{words(rng, 2)}</name>",
        f"<emailaddress>{email}</emailaddress>",
    ]
    if rng.random() < 0.5:
        parts.append(f"<phone>+41 {rng.randrange(10, 99)} {rng.randrange(100, 999)}</phone>")
    if rng.random() < 0.3:
        parts.append(
            "<address>"
            f"<street>{rng.randrange(1, 99)} {words(rng, 1)} St</street>"
            f"<city>{words(rng, 1)}</city>"
            f"<country>{rng.choice(('Switzerland', 'Germany', 'France'))}</country>"
            "</address>"
        )
    parts.append("</person>")
    return "".join(parts)


def _auction(number: int, people: int, items: int, rng: random.Random) -> str:
    parts = [
        f'<open_auction id="open_auction{number}">',
        f"<initial>{rng.randrange(1, 300)}.{rng.randrange(100):02d}</initial>",
    ]
    for _ in range(rng.randrange(1, 4)):
        parts.append(
            "<bidder>"
            f"<date>2005-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}</date>"
            f'<personref person="person{rng.randrange(people)}"/>'
            f"<increase>{rng.randrange(1, 50)}.00</increase>"
            "</bidder>"
        )
    parts.append(f'<itemref item="item-{rng.choice(_REGIONS)}-{rng.randrange(items)}"/>')
    parts.append(f"<current>{rng.randrange(10, 1000)}.{rng.randrange(100):02d}</current>")
    parts.append("</open_auction>")
    return "".join(parts)


def xmark_document(
    items_per_region: int = 4,
    people: int = 12,
    auctions: int = 8,
    seed: int = 42,
) -> str:
    """An auction site document; size scales roughly linearly with each
    parameter (items_per_region=4, people=12, auctions=8 ≈ 25 KB)."""
    rng = random.Random(seed)
    parts: List[str] = ["<site>", "<regions>"]
    for region in _REGIONS:
        parts.append(f"<{region}>")
        for number in range(items_per_region):
            parts.append(_item(region, number, rng))
        parts.append(f"</{region}>")
    parts.append("</regions>")
    parts.append("<categories>")
    for number in range(max(2, items_per_region // 2)):
        parts.append(
            f'<category id="category{number}">'
            f"<name>{words(rng, 2)}</name>"
            f"<description>{words(rng, 10)}</description>"
            f"</category>"
        )
    parts.append("</categories>")
    parts.append("<people>")
    for number in range(people):
        parts.append(_person(number, rng))
    parts.append("</people>")
    parts.append("<open_auctions>")
    for number in range(auctions):
        parts.append(_auction(number, people, items_per_region, rng))
    parts.append("</open_auctions>")
    parts.append("</site>")
    return "".join(parts)


def bidder_fragment(people: int, seed: int) -> str:
    """A ``<bidder>`` fragment — XMark's canonical append update."""
    rng = random.Random(seed)
    return (
        "<bidder>"
        f"<date>2005-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}</date>"
        f'<personref person="person{rng.randrange(people)}"/>'
        f"<increase>{rng.randrange(1, 50)}.00</increase>"
        "</bidder>"
    )
