"""One namespaced logger hierarchy for the whole package.

Every module obtains its logger via :func:`get_logger`, which parents it
under the single ``repro`` root logger.  The root carries a
``NullHandler`` (library etiquette: importing the package never prints
anything and never trips the "No handlers could be found" warning), so
log records are invisible until an application installs a handler —
which is exactly what the CLI's ``--verbose`` flag does through
:func:`install_handler`.

Levels follow the usual conventions:

* ``debug`` — hot-path detail (evictions, WAL appends);
* ``info`` — lifecycle events (store open/close, recovery replay);
* ``warning`` — recoverable anomalies (torn WAL tail, injected faults).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

ROOT_LOGGER_NAME = "repro"

_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """The logger for one module, namespaced under ``repro.``.

    Pass the dotted module suffix (``"storage.buffer"``); an empty name
    returns the package root logger.
    """
    if not name:
        return _root
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def install_handler(
    level: int = logging.INFO, stream: Optional[TextIO] = None
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` root (the CLI's
    ``--verbose``); returns the handler so callers can remove it."""
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    _root.addHandler(handler)
    _root.setLevel(level)
    return handler


def remove_handler(handler: logging.Handler) -> None:
    """Detach a handler previously installed by :func:`install_handler`."""
    _root.removeHandler(handler)
