"""Identifier schemes: the store's sequential ids and orthogonal labelings."""

from repro.ids.base import LabelingScheme, StoreIdScheme, document_order_key
from repro.ids.dewey import DeweyLabel, DeweyScheme
from repro.ids.ordpath import OrdpathLabel, OrdpathScheme
from repro.ids.prepost import PrePostLabel, PrePostLabeler
from repro.ids.sequential import SequentialIdScheme

__all__ = [
    "DeweyLabel",
    "DeweyScheme",
    "LabelingScheme",
    "OrdpathLabel",
    "OrdpathScheme",
    "PrePostLabel",
    "PrePostLabeler",
    "SequentialIdScheme",
    "StoreIdScheme",
    "document_order_key",
]
