"""Identifier-scheme interfaces (paper §6: "Orthogonality of ID schemes").

Two roles are separated:

:class:`StoreIdScheme`
    What the *store* needs from a scheme: allocate a fresh interval of
    identifiers for a bulk insert, advance from one id to the next given a
    token (the paper's ``idFactory : {ID} x {token} -> {ID}``, which makes
    id *regeneration* possible so ids need not be stored with tokens), and
    encode/decode ids for the WAL and catalog.  The store's default is the
    paper's choice: unique integers assigned at insert time
    (:class:`~repro.ids.sequential.SequentialIdScheme`).

:class:`LabelingScheme`
    What the *ablation benchmark* (Ablation D) needs: label a whole tree,
    support inserting a node at a position, report how many existing
    labels had to change, and answer document-order/ancestor queries.
    Implementations: Dewey, ORDPATH [17] and pre/post containment labels
    [9].  These demonstrate the paper's claim that identifier schemes are
    orthogonal to the range-based storage model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generic, Iterable, List, Sequence, Tuple, TypeVar

from repro.xmltoken.tokens import Token

IdT = TypeVar("IdT")
LabelT = TypeVar("LabelT")


class StoreIdScheme(ABC, Generic[IdT]):
    """Identifier allocation and regeneration for the store."""

    #: Human-readable scheme name (used in catalogs and reports).
    name: str = "abstract"

    @abstractmethod
    def allocate_interval(self, count: int) -> Tuple[IdT, IdT]:
        """Allocate ``count`` fresh ids; returns (first, last).

        Called once per inserted range; ids within the interval are then
        derived with :meth:`next_id` while scanning the range's tokens.
        """

    @abstractmethod
    def next_id(self, current: IdT, token: Token) -> IdT:
        """The paper's ``idFactory``: the id following ``current`` given
        the next node-starting token."""

    @abstractmethod
    def encode(self, node_id: IdT) -> bytes:
        """Serialize an id (order need not be preserved)."""

    @abstractmethod
    def decode(self, data: bytes) -> IdT:
        """Inverse of :meth:`encode`."""

    @abstractmethod
    def to_catalog(self) -> bytes:
        """Serialize allocator state (for checkpoint/recovery)."""

    @abstractmethod
    def restore_catalog(self, data: bytes) -> None:
        """Restore allocator state saved by :meth:`to_catalog`."""


class LabelingScheme(ABC, Generic[LabelT]):
    """Tree-labeling scheme for the orthogonality ablation.

    Labels answer document order and ancestry; the interesting difference
    between schemes is :meth:`insert_sibling_after`'s relabeling cost.
    """

    name: str = "abstract"

    @abstractmethod
    def label_root(self) -> LabelT:
        """The label of a (new) root node."""

    @abstractmethod
    def first_child(self, parent: LabelT) -> LabelT:
        """Label for the first child of ``parent`` (no existing children)."""

    @abstractmethod
    def next_sibling(self, last_sibling: LabelT) -> LabelT:
        """Label for a node appended after ``last_sibling``."""

    @abstractmethod
    def between(self, left: LabelT, right: LabelT) -> LabelT:
        """Label for a node inserted between two adjacent siblings.

        Raises :class:`~repro.errors.IdExhaustedError` if the scheme cannot
        represent such a label (schemes that must relabel instead report
        the relabeling through :meth:`relabel_cost`).
        """

    @abstractmethod
    def document_order(self, a: LabelT, b: LabelT) -> int:
        """Negative/zero/positive like a comparator, in document order."""

    @abstractmethod
    def is_ancestor(self, ancestor: LabelT, descendant: LabelT) -> bool:
        """Whether ``ancestor`` properly contains ``descendant``."""

    @abstractmethod
    def encode(self, label: LabelT) -> bytes:
        """Order-preserving binary encoding (byte-comparable)."""

    def relabel_cost(self, existing: Sequence[LabelT], insert_after: LabelT) -> int:
        """How many existing labels must change to insert after
        ``insert_after`` among ``existing`` siblings.  Gap-free schemes
        override this; careting/gapped schemes return 0."""
        return 0


def document_order_key(scheme: LabelingScheme, labels: Iterable[Any]) -> List[Any]:
    """Sort ``labels`` into document order using the scheme comparator."""
    import functools

    return sorted(labels, key=functools.cmp_to_key(scheme.document_order))
