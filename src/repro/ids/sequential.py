"""Sequential integer identifiers — the paper's experimental scheme.

"Stable identifiers can be obtained by assigning unique integer numbers to
nodes at insert times" (§6.2).  The scheme allocates a dense interval per
bulk insert, which gives every Range a contiguous ``[startId, endId]`` and
makes the Range Index's interval lookup possible.  Ids are stable (never
reassigned), comparable *within* a range (allocation order = document
order inside one insert), and regenerable: the id factory is simply
"previous id + 1 on every node-starting token".
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import IdSchemeError
from repro.ids.base import StoreIdScheme
from repro.xmltoken.tokens import Token

_STATE = struct.Struct("<q")


class SequentialIdScheme(StoreIdScheme[int]):
    """Unique integers handed out at insert time, starting from 1."""

    name = "sequential"

    def __init__(self, next_id: int = 1) -> None:
        if next_id < 1:
            raise IdSchemeError("sequential ids start at 1")
        self._next = next_id

    @property
    def high_water_mark(self) -> int:
        """The next id that would be allocated."""
        return self._next

    def allocate_interval(self, count: int) -> Tuple[int, int]:
        if count < 1:
            raise IdSchemeError(f"cannot allocate {count} ids")
        first = self._next
        self._next += count
        return first, first + count - 1

    def seek(self, next_id: int) -> None:
        """Move the allocation cursor.

        Transaction-commit replay pins each op's recorded pre-op cursor
        before re-executing it, so the op allocates exactly the ids it
        allocated live even when interleaved transactions (committed in a
        different order, or never committed) consumed ids in between.
        The caller restores the high-water mark afterwards.
        """
        if next_id < 1:
            raise IdSchemeError("sequential ids start at 1")
        self._next = next_id

    def next_id(self, current: int, token: Token) -> int:
        # The token argument is part of the idFactory signature
        # (``{ID} x {token} -> {ID}``); sequential ids do not depend on it.
        return current + 1

    def encode(self, node_id: int) -> bytes:
        return _STATE.pack(node_id)

    def decode(self, data: bytes) -> int:
        if len(data) != _STATE.size:
            raise IdSchemeError(f"bad sequential id encoding ({len(data)} bytes)")
        return _STATE.unpack(data)[0]

    def to_catalog(self) -> bytes:
        return _STATE.pack(self._next)

    def restore_catalog(self, data: bytes) -> None:
        self._next = _STATE.unpack(data)[0]
