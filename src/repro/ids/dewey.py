"""Dewey labels: the classic hierarchical numbering scheme.

A node's label is the tuple of 1-based child ordinals on the path from the
root (root = ``(1,)``, its second child = ``(1, 2)``).  Ancestry is prefix
testing and document order is tuple order — but inserting between siblings
forces renumbering every following sibling *and all their descendants*,
which is exactly the update cost the paper's lazy design avoids paying up
front.  :meth:`DeweyScheme.relabel_cost` quantifies that for Ablation D.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.errors import IdExhaustedError
from repro.ids.base import LabelingScheme

DeweyLabel = Tuple[int, ...]


class DeweyScheme(LabelingScheme[DeweyLabel]):
    """Gap-free hierarchical labels (insertions renumber siblings)."""

    name = "dewey"

    def label_root(self) -> DeweyLabel:
        return (1,)

    def first_child(self, parent: DeweyLabel) -> DeweyLabel:
        return parent + (1,)

    def next_sibling(self, last_sibling: DeweyLabel) -> DeweyLabel:
        if not last_sibling:
            raise IdExhaustedError("the root has no siblings")
        return last_sibling[:-1] + (last_sibling[-1] + 1,)

    def between(self, left: DeweyLabel, right: DeweyLabel) -> DeweyLabel:
        """Dewey cannot label between adjacent siblings without fractions;
        a real system renumbers instead (see :meth:`relabel_cost`)."""
        if left[:-1] != right[:-1]:
            raise IdExhaustedError("labels are not siblings")
        if right[-1] - left[-1] > 1:
            return left[:-1] + (left[-1] + 1,)
        raise IdExhaustedError(
            "no Dewey label exists between adjacent siblings; renumbering required"
        )

    def document_order(self, a: DeweyLabel, b: DeweyLabel) -> int:
        return -1 if a < b else (1 if b < a else 0)

    def is_ancestor(self, ancestor: DeweyLabel, descendant: DeweyLabel) -> bool:
        return (
            len(ancestor) < len(descendant)
            and descendant[: len(ancestor)] == ancestor
        )

    def parent(self, label: DeweyLabel) -> DeweyLabel:
        if len(label) <= 1:
            raise IdExhaustedError("the root has no parent")
        return label[:-1]

    def depth(self, label: DeweyLabel) -> int:
        return len(label)

    def encode(self, label: DeweyLabel) -> bytes:
        """Order-preserving encoding: big-endian 4-byte components.

        Lexicographic byte order equals tuple order because components are
        fixed width and positive.
        """
        return b"".join(struct.pack(">I", component) for component in label)

    def decode(self, data: bytes) -> DeweyLabel:
        if len(data) % 4:
            raise IdExhaustedError(f"bad Dewey encoding length {len(data)}")
        return tuple(
            struct.unpack_from(">I", data, offset)[0]
            for offset in range(0, len(data), 4)
        )

    def relabel_cost(
        self, existing: Sequence[DeweyLabel], insert_after: DeweyLabel
    ) -> int:
        """Labels that must change to insert a sibling right after
        ``insert_after``: every following sibling and its descendants."""
        parent = insert_after[:-1]
        ordinal = insert_after[-1]
        cost = 0
        for label in existing:
            if len(label) > len(parent) and label[: len(parent)] == parent:
                if label[len(parent)] > ordinal:
                    cost += 1
        return cost

    def renumber_after(
        self, existing: Sequence[DeweyLabel], insert_after: DeweyLabel
    ) -> Tuple[DeweyLabel, List[Tuple[DeweyLabel, DeweyLabel]]]:
        """Insert a sibling after ``insert_after``: returns the new node's
        label and the (old, new) relabeling of shifted labels."""
        parent = insert_after[:-1]
        ordinal = insert_after[-1]
        depth = len(parent)
        moves: List[Tuple[DeweyLabel, DeweyLabel]] = []
        for label in existing:
            if len(label) > depth and label[:depth] == parent and label[depth] > ordinal:
                shifted = label[:depth] + (label[depth] + 1,) + label[depth + 1 :]
                moves.append((label, shifted))
        return parent + (ordinal + 1,), moves
