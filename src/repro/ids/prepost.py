"""Pre/post containment labels [9, 16]: the read-optimized strawman.

Each node carries ``(pre, post)`` — its position in a preorder and a
postorder traversal.  Containment is a pair of integer comparisons
(``a`` contains ``d`` iff ``a.pre < d.pre`` and ``d.post < a.post``),
which is what makes containment joins and XPath location steps fast; but
any insertion shifts the pre numbers of everything after the insert point
and the post numbers of everything after *and above* it, so updates are
O(document).  This is exactly the trade-off the paper's §1 names: "good
identifier schemes ... help evaluating XPath expressions based on
containment, but show poor performance for updates."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import IdSchemeError
from repro.xmltoken.tokens import Token, TokenKind


@dataclass(frozen=True, order=True)
class PrePostLabel:
    pre: int
    post: int

    def contains(self, other: "PrePostLabel") -> bool:
        """Proper ancestry via the containment test."""
        return self.pre < other.pre and other.post < self.post


class PrePostLabeler:
    """Assigns and maintains pre/post labels for element trees."""

    name = "prepost"

    def label_stream(self, tokens: Sequence[Token]) -> List[PrePostLabel]:
        """Labels for every *element* node in the token stream, in
        document (begin-token) order."""
        labels: List[PrePostLabel] = []
        open_stack: List[int] = []  # indexes into `labels`
        pre = post = 0
        pres: List[int] = []
        posts: Dict[int, int] = {}
        for token in tokens:
            if token.kind == TokenKind.BEGIN_ELEMENT:
                open_stack.append(len(pres))
                pres.append(pre)
                pre += 1
            elif token.kind == TokenKind.END_ELEMENT:
                if not open_stack:
                    raise IdSchemeError("unbalanced token stream")
                posts[open_stack.pop()] = post
                post += 1
        if open_stack:
            raise IdSchemeError("unbalanced token stream")
        for index, pre_value in enumerate(pres):
            labels.append(PrePostLabel(pre_value, posts[index]))
        return labels

    @staticmethod
    def document_order(a: PrePostLabel, b: PrePostLabel) -> int:
        return -1 if a.pre < b.pre else (1 if a.pre > b.pre else 0)

    @staticmethod
    def is_ancestor(ancestor: PrePostLabel, descendant: PrePostLabel) -> bool:
        return ancestor.contains(descendant)

    @staticmethod
    def relabel_cost(
        existing: Sequence[PrePostLabel], insert_pre: int, insert_post: int
    ) -> int:
        """Labels that change when a leaf is inserted at ``(insert_pre,
        insert_post)``: everything with ``pre >= insert_pre`` shifts its
        pre, everything with ``post >= insert_post`` shifts its post."""
        return sum(
            1
            for label in existing
            if label.pre >= insert_pre or label.post >= insert_post
        )

    @staticmethod
    def insert_leaf(
        existing: Sequence[PrePostLabel], insert_pre: int, insert_post: int
    ) -> Tuple[PrePostLabel, List[PrePostLabel]]:
        """Insert a leaf node; returns its label and the full relabeled
        sequence (gap-free schemes rewrite in place)."""
        relabeled: List[PrePostLabel] = []
        for label in existing:
            pre = label.pre + 1 if label.pre >= insert_pre else label.pre
            post = label.post + 1 if label.post >= insert_post else label.post
            relabeled.append(PrePostLabel(pre, post))
        return PrePostLabel(insert_pre, insert_post), relabeled

    @staticmethod
    def encode(label: PrePostLabel) -> bytes:
        import struct

        return struct.pack(">II", label.pre, label.post)
