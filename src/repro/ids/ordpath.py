"""ORDPATH labels [17]: insert-friendly hierarchical identifiers.

ORDPATH is the scheme the paper points to for identifiers that are both
stable and fully comparable in document order (§6.2).  Labels are integer
tuples; ordinary children get odd ordinals (1, 3, 5, ...), and inserting
*between* two adjacent siblings "carets in" an even component followed by
a new odd component — e.g. between ``(1, 3)`` and ``(1, 5)`` comes
``(1, 4, 1)``.  Even components do not add depth, so careted nodes remain
siblings, and **no existing label ever changes** on insertion: the
relabeling cost is zero, at the price of slowly growing labels.

Rules used here (a faithful, slightly simplified careting discipline):

* valid node labels end in an odd component;
* document order is plain tuple comparison;
* ancestry is proper-prefix testing;
* depth counts only odd components.
"""

from __future__ import annotations

import struct
from typing import Sequence, Tuple

from repro.errors import IdExhaustedError, IdOrderError
from repro.ids.base import LabelingScheme

OrdpathLabel = Tuple[int, ...]

_COMPONENT_BIAS = 2**31  # order-preserving fixed-width component encoding


class OrdpathScheme(LabelingScheme[OrdpathLabel]):
    """Careting ORDPATH labels: zero-relabeling sibling insertion."""

    name = "ordpath"

    def label_root(self) -> OrdpathLabel:
        return (1,)

    def first_child(self, parent: OrdpathLabel) -> OrdpathLabel:
        self._check_label(parent)
        return parent + (1,)

    def next_sibling(self, last_sibling: OrdpathLabel) -> OrdpathLabel:
        self._check_label(last_sibling)
        return last_sibling[:-1] + (last_sibling[-1] + 2,)

    def previous_sibling_slot(self, first_sibling: OrdpathLabel) -> OrdpathLabel:
        """A label ordered before ``first_sibling`` at the same depth."""
        self._check_label(first_sibling)
        head = first_sibling[-1]
        component = head - 1 if (head - 1) % 2 else head - 2
        return first_sibling[:-1] + (component,)

    def between(self, left: OrdpathLabel, right: OrdpathLabel) -> OrdpathLabel:
        """A fresh label strictly between two labels, never relabeling.

        ``left`` and ``right`` must be distinct, ordered, and neither an
        ancestor of the other (i.e. adjacent siblings, possibly careted).
        """
        self._check_label(left)
        self._check_label(right)
        if not left < right:
            raise IdOrderError(f"{left} is not before {right}")
        if self.is_ancestor(left, right):
            raise IdOrderError(f"{left} is an ancestor of {right}")
        index = self._first_difference(left, right)
        a, b = left[index], right[index]
        if b - a > 1:
            candidate = a + 1 if (a + 1) % 2 else a + 2
            if candidate < b:
                return left[: index + 1][:-1] + (candidate,)
            # only the even value a+1 fits: caret in
            return left[:index] + (a + 1, 1)
        # adjacent components (b == a + 1): no room at this position
        if len(left) > index + 1:
            # left's tail continues: go right after it inside left's branch
            tail_head = left[index + 1]
            component = tail_head + 1 if (tail_head + 1) % 2 else tail_head + 2
            return left[: index + 1] + (component,)
        # left ends here (a is odd, b = a+1 is even and right continues):
        # descend on the right side, before right's tail
        tail_head = right[index + 1]
        component = tail_head - 1 if (tail_head - 1) % 2 else tail_head - 2
        return right[: index + 1] + (component,)

    def document_order(self, a: OrdpathLabel, b: OrdpathLabel) -> int:
        return -1 if a < b else (1 if b < a else 0)

    def is_ancestor(self, ancestor: OrdpathLabel, descendant: OrdpathLabel) -> bool:
        return (
            len(ancestor) < len(descendant)
            and descendant[: len(ancestor)] == ancestor
        )

    def depth(self, label: OrdpathLabel) -> int:
        """Tree depth: carets (even components) add no level."""
        return sum(1 for component in label if component % 2)

    def encode(self, label: OrdpathLabel) -> bytes:
        """Byte-comparable encoding: fixed-width biased components, so
        ``encode(a) < encode(b)`` iff ``a < b``."""
        return b"".join(
            struct.pack(">I", component + _COMPONENT_BIAS) for component in label
        )

    def decode(self, data: bytes) -> OrdpathLabel:
        if len(data) % 4:
            raise IdExhaustedError(f"bad ORDPATH encoding length {len(data)}")
        return tuple(
            struct.unpack_from(">I", data, offset)[0] - _COMPONENT_BIAS
            for offset in range(0, len(data), 4)
        )

    def relabel_cost(
        self, existing: Sequence[OrdpathLabel], insert_after: OrdpathLabel
    ) -> int:
        """Careting never moves existing labels."""
        return 0

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _first_difference(left: OrdpathLabel, right: OrdpathLabel) -> int:
        for index, (a, b) in enumerate(zip(left, right)):
            if a != b:
                return index
        raise IdOrderError(f"{left} and {right} are nested, not adjacent")

    @staticmethod
    def _check_label(label: OrdpathLabel) -> None:
        if not label:
            raise IdExhaustedError("empty ORDPATH label")
        if label[-1] % 2 == 0:
            raise IdExhaustedError(
                f"label {label} ends in an even (caret) component"
            )
