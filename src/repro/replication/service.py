"""Catch-up orchestration: retries, lag trace, divergence, resync.

:func:`catch_up` drives one replica to the primary's stream head through
a (possibly hostile) channel.  Each round fetches one batch from the
replica's cursor, heals what it can locally (duplicates are skipped by
the idempotent apply, a shuffled batch is re-sequenced, a truncated one
applies its intact prefix) and counts everything else as a retry against
the bounded policy — backoff accumulates on the *simulated* clock, so
the whole driver is wall-clock free and the lag trace is byte-identical
across runs of the same seed.

When the replica reaches the head and a primary store is available the
state digests are compared; a mismatch is a *divergence* — healed
automatically by re-seeding from the primary's committed WAL image (and
verified again), or raised as :class:`repro.errors.ReplicaDivergenceError`
when auto-resync is off.

The primary side keeps a small registry (``store.replicas.json``) of
configured replicas; :class:`ReplicationMonitor` projects registry +
per-replica checkpoints into the metrics the alert rules and the health
component read.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    ReplicaDivergenceError,
    ReplicationChannelError,
    ReplicationGapError,
    ReplicationTimeoutError,
)
from repro.obs.schema import check_schema_version, stamp
from repro.replication.changestream import ChangeStream, decode_frames
from repro.replication.channel import ReplicationChannel, RetryPolicy
from repro.replication.digest import state_digest
from repro.replication.replica import Replica, read_checkpoint

#: Primary-side registry of configured replicas.
REPLICAS_FILE = "store.replicas.json"


# ---------------------------------------------------------------------------
# The replica registry (primary side)
# ---------------------------------------------------------------------------

def list_replicas(primary_dir: str) -> List[Dict[str, str]]:
    """Replicas registered on the primary in ``primary_dir``."""
    path = os.path.join(primary_dir, REPLICAS_FILE)
    if not os.path.exists(path):
        return []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return []
    check_schema_version(payload, f"replica registry {path}", required=False)
    return list(payload.get("replicas", []))


def register_replica(primary_dir: str, name: str, replica_dir: str) -> None:
    """Add (or update) one replica in the primary's registry, atomically."""
    replicas = [r for r in list_replicas(primary_dir) if r.get("name") != name]
    replicas.append({"name": name, "path": replica_dir})
    replicas.sort(key=lambda r: r["name"])
    payload = stamp({"replicas": replicas})
    path = os.path.join(primary_dir, REPLICAS_FILE)
    temporary = path + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


def stream_head_of(primary_dir: str) -> Optional[int]:
    """The primary's stream head, read from its WAL file without opening
    the store (the discipline diagnose/health follow: files only)."""
    from repro.core.filestore import WAL_FILE
    from repro.storage.wal import WriteAheadLog

    wal_path = os.path.join(primary_dir, WAL_FILE)
    if not os.path.exists(wal_path):
        return None
    with open(wal_path, "rb") as handle:
        image = handle.read()
    return ChangeStream(WriteAheadLog.from_bytes(image)).length()


# ---------------------------------------------------------------------------
# Catch-up
# ---------------------------------------------------------------------------

@dataclass
class CatchUpReport:
    """What one catch-up run did — stamped, byte-deterministic."""

    replica: str = "replica"
    started_cursor: int = 0
    final_cursor: int = 0
    head: int = 0
    applied: int = 0
    duplicates_skipped: int = 0
    gaps_detected: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    fetches: int = 0
    faults_injected: int = 0
    faults_by_class: Dict[str, int] = field(default_factory=dict)
    resyncs: int = 0
    converged: bool = False
    digest_checked: bool = False
    digest_match: Optional[bool] = None
    lag_trace: List[Dict[str, float]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return stamp(
            {
                "replica": self.replica,
                "started_cursor": self.started_cursor,
                "final_cursor": self.final_cursor,
                "head": self.head,
                "applied": self.applied,
                "duplicates_skipped": self.duplicates_skipped,
                "gaps_detected": self.gaps_detected,
                "retries": self.retries,
                "backoff_seconds": round(self.backoff_seconds, 9),
                "fetches": self.fetches,
                "faults_injected": self.faults_injected,
                "faults_by_class": dict(sorted(self.faults_by_class.items())),
                "resyncs": self.resyncs,
                "converged": self.converged,
                "digest_checked": self.digest_checked,
                "digest_match": self.digest_match,
                "lag_trace": self.lag_trace,
            }
        )


def catch_up(
    channel: ReplicationChannel,
    replica: Replica,
    primary_store=None,
    *,
    batch_size: int = 64,
    retry: Optional[RetryPolicy] = None,
    auto_resync: bool = True,
    source: str = "",
) -> CatchUpReport:
    """Drive ``replica`` to the channel's stream head; returns the report.

    Raises :class:`repro.errors.ReplicationTimeoutError` when one batch
    exhausts the retry budget without progress (the replica's checkpoint
    is already committed — a later run resumes from it), and
    :class:`repro.errors.ReplicaDivergenceError` when the digests differ
    and auto-resync is off or failed.  Raised errors carry the partial
    report on their ``report`` attribute.
    """
    retry = retry or RetryPolicy()
    report = CatchUpReport(
        replica=replica.name,
        started_cursor=replica.cursor,
        final_cursor=replica.cursor,
    )
    applied_before = replica.applied
    duplicates_before = replica.duplicates_skipped
    attempt = 0
    round_no = 0
    while True:
        head = channel.head()
        report.head = head
        if replica.cursor >= head:
            break
        round_no += 1
        progressed = False
        try:
            records, _clean = decode_frames(channel.fetch(replica.cursor, batch_size))
        except ReplicationChannelError:
            records = []
        # re-sequence: a shuffled or duplicated batch is healed locally;
        # only records genuinely missing below the highest delivered seq
        # remain as a gap
        records = sorted(
            {record.seq: record for record in records}.values(),
            key=lambda record: record.seq,
        )
        for record in records:
            try:
                if replica.apply(record):
                    progressed = True
            except ReplicationGapError:
                report.gaps_detected += 1
                break
        report.applied = replica.applied - applied_before
        report.duplicates_skipped = replica.duplicates_skipped - duplicates_before
        report.final_cursor = replica.cursor
        report.lag_trace.append(
            {
                "round": round_no,
                "cursor": replica.cursor,
                "head": head,
                "lag": head - replica.cursor,
                "retries": report.retries,
                "backoff_seconds": round(report.backoff_seconds, 9),
            }
        )
        if progressed:
            attempt = 0
            replica.write_checkpoint(source=source)
            continue
        attempt += 1
        report.retries += 1
        if attempt >= retry.max_attempts:
            _finish_counters(report, channel)
            error = ReplicationTimeoutError(
                f"replica {replica.name!r} made no progress in "
                f"{retry.max_attempts} attempts at cursor {replica.cursor} "
                f"(head {head}) — checkpoint committed, rerun to resume"
            )
            error.report = report
            raise error
        report.backoff_seconds += retry.delay(attempt)

    _finish_counters(report, channel)
    report.converged = True
    if primary_store is not None:
        report.digest_checked = True
        report.digest_match = state_digest(primary_store) == state_digest(
            replica.store
        )
        if not report.digest_match:
            if not auto_resync:
                error = ReplicaDivergenceError(
                    f"replica {replica.name!r} diverged from the primary at "
                    f"cursor {replica.cursor} and auto-resync is disabled"
                )
                error.report = report
                raise error
            report.resyncs += 1
            replica.reseed(primary_store.wal.to_bytes(), source=source)
            report.final_cursor = replica.cursor
            report.digest_match = state_digest(primary_store) == state_digest(
                replica.store
            )
            if not report.digest_match:
                error = ReplicaDivergenceError(
                    f"replica {replica.name!r} still diverges after resync — "
                    f"the primary's WAL no longer reproduces its state"
                )
                error.report = report
                raise error
    replica.write_checkpoint(source=source)
    return report


def _finish_counters(report: CatchUpReport, channel: ReplicationChannel) -> None:
    report.fetches = channel.fetches
    report.faults_injected = channel.faults_injected
    report.faults_by_class = {
        name: count
        for name, count in channel.injected_by_class.items()
        if count
    }


# ---------------------------------------------------------------------------
# Observability projection (primary side)
# ---------------------------------------------------------------------------

@dataclass
class ReplicaLag:
    name: str
    path: str
    cursor: int
    lag: int
    stale: bool
    has_checkpoint: bool


class ReplicationMonitor:
    """Projects registry + checkpoints into metric-shaped numbers.

    Attached to a primary store as ``store.replication`` (by
    :func:`repro.core.filestore.open_directory` when the store has a
    replica registry), mirroring how the serving layer hangs off
    ``store.server``.  Everything is recomputed per call from the
    in-process WAL and the replicas' persisted checkpoints — no caches
    to go stale.
    """

    def __init__(self, store, primary_dir: str) -> None:
        self.store = store
        self.primary_dir = primary_dir

    def head(self) -> int:
        return ChangeStream(self.store.wal).length()

    def replica_lags(self) -> List[ReplicaLag]:
        head = self.head()
        stale_after = self.store.config.replication_stale_after_ops
        lags: List[ReplicaLag] = []
        for entry in list_replicas(self.primary_dir):
            checkpoint = read_checkpoint(entry.get("path", ""))
            cursor = int(checkpoint["cursor"]) if checkpoint else 0
            lag = max(0, head - cursor)
            lags.append(
                ReplicaLag(
                    name=entry.get("name", "?"),
                    path=entry.get("path", ""),
                    cursor=cursor,
                    lag=lag,
                    stale=lag > stale_after,
                    has_checkpoint=checkpoint is not None,
                )
            )
        return lags

    def snapshot(self) -> dict:
        """The numbers the bridge exports.

        ``apply_progress`` encodes three states for the absence rule:
        no replicas configured → the gauge is absent (reads 0, above the
        rule's -1.0 bound); configured but some replica stale → -1.0
        (fires); all replicas progressing → 1 + total applied (clears).
        """
        lags = self.replica_lags()
        applied_total = sum(lag.cursor for lag in lags)
        max_lag = max((lag.lag for lag in lags), default=0)
        stalled = any(lag.stale for lag in lags)
        return {
            "replicas": len(lags),
            "lag_ops": max_lag,
            "applied_total": applied_total,
            "apply_progress": -1.0 if stalled else 1.0 + applied_total,
            "stalled": stalled,
        }
