"""Change-data-capture and read replicas.

The WAL already records every mutating operation with its arguments
(repair's full-log rebuild proved the log replays deterministically);
this package exposes it as a logical change stream and keeps read
replicas caught up over a hostile channel:

``changestream``
    Tails the primary's WAL — committed, durable frames only — into
    CRC-framed, schema-stamped change records with a dense cursor.
``channel``
    Transport between stream and replica with seeded fault injection
    (drop/duplicate/reorder/truncate/delay/disconnect) and a bounded,
    deterministic retry/backoff policy.
``replica``
    Applies the stream onto its own store directory, write-ahead and
    idempotent, with an atomically committed checkpoint sidecar so
    apply is resumable after a crash at any point.
``digest``
    Merkle-style state digests for divergence detection.
``service``
    The catch-up driver: retry loop, lag trace, divergence check and
    automatic resync; plus the primary-side replica registry and the
    observability monitor.

Determinism contract: same primary WAL + same channel seed ⇒ same
stream bytes, same replica state, same lag trace.
"""

from repro.replication.changestream import ChangeRecord, ChangeStream
from repro.replication.channel import (
    CHANNEL_FAULT_CLASSES,
    ChannelFaultConfig,
    ReplicationChannel,
    RetryPolicy,
)
from repro.replication.digest import state_digest
from repro.replication.replica import Replica
from repro.replication.service import (
    CatchUpReport,
    ReplicationMonitor,
    catch_up,
    list_replicas,
    register_replica,
)

__all__ = [
    "CHANNEL_FAULT_CLASSES",
    "CatchUpReport",
    "ChangeRecord",
    "ChangeStream",
    "ChannelFaultConfig",
    "Replica",
    "ReplicationChannel",
    "ReplicationMonitor",
    "RetryPolicy",
    "catch_up",
    "list_replicas",
    "register_replica",
    "state_digest",
]
