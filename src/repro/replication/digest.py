"""Merkle-style state digests for divergence detection.

A replica that applied every committed change must hold byte-identical
logical state: the serialized document and the id allocator's high-water
mark (ids are part of the contract — a replica must answer node-id reads
with the primary's ids).  The digest hashes the serialized document in
fixed-size chunks and folds the chunk hashes into a root, merkle-style,
so two stores disagree on the root iff they disagree on some chunk —
and ``digest_chunks`` pinpoints *which* chunk, which turns "the replica
diverged" into an actionable offset instead of a shrug.

The digest is computed from committed state only: it serializes via the
store's read path, which never sees uncommitted transaction buffers, and
the caller compares it at catch-up boundaries where no transaction is in
flight.
"""

from __future__ import annotations

import hashlib
from typing import List

DIGEST_CHUNK_BYTES = 4096


def digest_chunks(store, chunk_bytes: int = DIGEST_CHUNK_BYTES) -> List[str]:
    """Per-chunk sha256 hex digests of the store's serialized document."""
    data = store.read().encode("utf-8")
    return [
        hashlib.sha256(data[offset : offset + chunk_bytes]).hexdigest()
        for offset in range(0, max(len(data), 1), chunk_bytes)
    ]


def state_digest(store, chunk_bytes: int = DIGEST_CHUNK_BYTES) -> str:
    """The merkle root over document chunks plus the id high-water mark."""
    root = hashlib.sha256()
    for chunk in digest_chunks(store, chunk_bytes):
        root.update(chunk.encode("ascii"))
    root.update(str(store.id_scheme.high_water_mark).encode("ascii"))
    return root.hexdigest()


def first_divergent_chunk(primary, replica, chunk_bytes: int = DIGEST_CHUNK_BYTES):
    """Index of the first differing chunk, or ``None`` when identical."""
    ours = digest_chunks(primary, chunk_bytes)
    theirs = digest_chunks(replica, chunk_bytes)
    for index in range(max(len(ours), len(theirs))):
        left = ours[index] if index < len(ours) else None
        right = theirs[index] if index < len(theirs) else None
        if left != right:
            return index
    return None
