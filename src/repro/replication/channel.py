"""The replication transport, and the hostility it must survive.

:class:`ReplicationChannel` is the only path between a primary's change
stream and a replica.  A real network loses, duplicates, reorders,
truncates, delays and disconnects; the channel injects exactly those six
fault classes from a seeded generator, with a *bounded* budget — once
``max_faults`` injections have fired the channel turns honest, so every
seeded run provably converges (or the retry policy's bound fires first
with a typed error).

Retry backoff is deterministic and *simulated*: attempts accumulate
``base * 2**(attempt-1)`` (capped) into the report's ``backoff_seconds``
instead of sleeping, keeping the whole replication core wall-clock free
and byte-reproducible — the same discipline as the disk cost model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReplicationChannelError, ReplicationError
from repro.replication.changestream import ChangeStream, encode_batch

#: Registry of channel fault classes — the CLI ``replicate
#: --channel-faults`` parser, its help text, and the CI matrix values
#: all derive from this tuple (same single-source rule as
#: :data:`repro.storage.faults.FAULT_CLASSES`).
CHANNEL_FAULT_CLASSES = (
    ("drop", "silently drop records from a fetched batch (a gap the replica must detect)"),
    ("duplicate", "re-deliver records the replica already applied"),
    ("reorder", "shuffle the records inside a batch"),
    ("truncate", "cut the batch's byte stream mid-frame (fails the frame CRC)"),
    ("delay", "return an empty batch although records are available"),
    ("disconnect", "drop the connection mid-fetch (a typed transport error)"),
)

CHANNEL_FAULT_NAMES = tuple(name for name, _ in CHANNEL_FAULT_CLASSES)


def channel_fault_classes_help() -> str:
    """One-line help text for ``--channel-faults``, registry-derived."""
    return (
        "comma list of channel fault classes — "
        + ", ".join(CHANNEL_FAULT_NAMES)
        + "; or all / none"
    )


@dataclass
class ChannelFaultConfig:
    """Which faults the channel may inject, from a seeded stream."""

    seed: int = 0
    drop: bool = False
    duplicate: bool = False
    reorder: bool = False
    truncate: bool = False
    delay: bool = False
    disconnect: bool = False
    #: Per-fetch probability of injecting one enabled fault.
    fault_rate: float = 0.5
    #: Total injections allowed before the channel turns honest; the
    #: bound is what makes seeded convergence provable.
    max_faults: int = 16

    @property
    def any_enabled(self) -> bool:
        return any(
            (self.drop, self.duplicate, self.reorder,
             self.truncate, self.delay, self.disconnect)
        )

    @classmethod
    def from_classes(
        cls,
        classes: str,
        seed: int = 0,
        fault_rate: Optional[float] = None,
        max_faults: Optional[int] = None,
    ) -> "ChannelFaultConfig":
        """Build a config from a comma-separated class list.

        ``all`` enables every class, ``none`` (or an empty string) none.
        """
        overrides = {}
        if fault_rate is not None:
            overrides["fault_rate"] = fault_rate
        if max_faults is not None:
            overrides["max_faults"] = max_faults
        if classes in ("", "none"):
            return cls(seed=seed, **overrides)
        if classes == "all":
            return cls(
                seed=seed,
                **{name.replace("-", "_"): True for name in CHANNEL_FAULT_NAMES},
                **overrides,
            )
        wanted = {token.strip() for token in classes.split(",") if token.strip()}
        wanted.discard("none")
        unknown = wanted - set(CHANNEL_FAULT_NAMES)
        if unknown:
            raise ReplicationError(
                f"unknown channel fault class(es) {sorted(unknown)}; "
                f"known: {sorted(CHANNEL_FAULT_NAMES)}"
            )
        return cls(seed=seed, **{name: True for name in wanted}, **overrides)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic exponential backoff."""

    max_attempts: int = 8
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0

    def delay(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)


class ReplicationChannel:
    """Fetches wire batches from a change stream, faults included.

    ``fetch(cursor, limit)`` returns the encoded batch starting at the
    stream cursor — possibly mangled by one injected fault.  Counters
    record every injection by class so torture reports and tests can
    assert the hostility actually happened.
    """

    def __init__(
        self,
        stream: ChangeStream,
        faults: Optional[ChannelFaultConfig] = None,
    ) -> None:
        self.stream = stream
        self.faults = faults or ChannelFaultConfig()
        self._rng = random.Random(self.faults.seed)
        self.fetches = 0
        self.faults_injected = 0
        self.injected_by_class = {name: 0 for name in CHANNEL_FAULT_NAMES}

    # -- transport ------------------------------------------------------------

    def fetch(self, cursor: int, limit: int) -> bytes:
        """The wire bytes for ``limit`` records starting at ``cursor``.

        May raise :class:`repro.errors.ReplicationChannelError` (the
        ``disconnect`` fault); every other fault shows up in the bytes.
        """
        self.fetches += 1
        records = self.stream.batch(cursor, limit)
        fault = self._pick_fault()
        if fault is None:
            return encode_batch(records)
        self.faults_injected += 1
        self.injected_by_class[fault] += 1
        if fault == "disconnect":
            raise ReplicationChannelError(
                f"channel disconnected during fetch at cursor {cursor}"
            )
        if fault == "delay":
            return b""
        if fault == "drop" and records:
            victim = self._rng.randrange(len(records))
            records = records[:victim] + records[victim + 1 :]
            return encode_batch(records)
        if fault == "duplicate" and records:
            victim = self._rng.randrange(len(records))
            records = records[: victim + 1] + records[victim:]
            return encode_batch(records)
        if fault == "reorder" and len(records) > 1:
            shuffled = list(records)
            self._rng.shuffle(shuffled)
            return encode_batch(shuffled)
        if fault == "truncate" and records:
            data = encode_batch(records)
            cut = self._rng.randrange(1, len(data))
            return data[:cut]
        # the drawn fault had nothing to chew on (empty batch): honest
        return encode_batch(records)

    def head(self) -> int:
        """The primary's stream head (committed record count)."""
        return self.stream.length()

    # -- fault drawing ----------------------------------------------------------

    def _enabled_classes(self) -> List[str]:
        config = self.faults
        return [
            name
            for name, flag in (
                ("drop", config.drop),
                ("duplicate", config.duplicate),
                ("reorder", config.reorder),
                ("truncate", config.truncate),
                ("delay", config.delay),
                ("disconnect", config.disconnect),
            )
            if flag
        ]

    def _pick_fault(self) -> Optional[str]:
        enabled = self._enabled_classes()
        if not enabled or self.faults_injected >= self.faults.max_faults:
            return None
        if self._rng.random() >= self.faults.fault_rate:
            return None
        return enabled[self._rng.randrange(len(enabled))]
