"""Logical decoding: the WAL as a stream of committed change records.

The stream tails :meth:`repro.storage.wal.WriteAheadLog.records`, which
by construction yields only the *durable prefix* of the log: deferred
group-commit frames sit in a volatile buffer until their shared sync
barrier, and a torn tail fails its CRC — so a transaction whose
``TXN_COMMIT`` frame has not reached its barrier can never be emitted
(the durable-prefix-only guarantee the replication torture pins).

One change record corresponds to one non-checkpoint WAL frame.  A
``TXN_COMMIT`` frame stays whole — its payload already encodes every
operation of the transaction with pinned id cursors (see
:mod:`repro.storage.txnlog`), so shipping it intact preserves both
transaction atomicity and deterministic id reallocation on the replica.
Checkpoint markers are primary-local bookkeeping and are skipped, which
makes the stream cursor (``seq``) dense: record *n* is always the *n*-th
committed change since the store was created, independent of how many
checkpoints the primary took.

Wire format (little endian)::

    u32 crc32 | u32 length | u16 schema_version | u64 seq | u64 lsn |
    u16 record_type | i64 txn_id | payload

The CRC covers everything after itself, so a truncated or bit-flipped
frame is detected at the replica and treated as a *transport* fault
(re-fetch), not corruption of the replica.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ChangeStreamError
from repro.obs.schema import SCHEMA_VERSION
from repro.storage.txnlog import decode_commit
from repro.storage.wal import LogRecord, RecordType, WriteAheadLog

_WIRE = struct.Struct("<IIHQQHq")

#: ``txn_id`` for change records outside any transaction (direct ops).
NO_TXN = -1


@dataclass(frozen=True)
class ChangeRecord:
    """One committed change, positioned in the stream.

    ``seq`` is the dense stream cursor (0-based count of committed
    non-checkpoint frames before this one); ``lsn`` is the frame's
    position in the primary's WAL (sparse — checkpoints consume LSNs).
    """

    seq: int
    lsn: int
    record_type: int
    payload: bytes
    txn_id: int = NO_TXN

    @property
    def type_name(self) -> str:
        return RecordType.NAMES.get(self.record_type, f"type#{self.record_type}")

    @property
    def op_count(self) -> int:
        """Logical operations carried: >1 only for transaction commits."""
        if self.record_type == RecordType.TXN_COMMIT:
            return len(decode_commit(self.payload).ops)
        return 1

    def encode(self) -> bytes:
        header = _WIRE.pack(
            0,
            len(self.payload),
            SCHEMA_VERSION,
            self.seq,
            self.lsn,
            self.record_type,
            self.txn_id,
        )
        body = header[4:] + self.payload
        return struct.pack("<I", zlib.crc32(body)) + body


def _record_txn_id(record: LogRecord) -> int:
    if record.record_type == RecordType.TXN_COMMIT:
        return decode_commit(record.payload).txn_id
    return NO_TXN


class ChangeStream:
    """Read-only logical view over a primary's WAL."""

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal

    def records(self, start_seq: int = 0) -> Iterator[ChangeRecord]:
        """Committed change records from ``start_seq`` onward.

        Re-scans the log from the start on every call; the WAL has no
        random access by design, and the stream must observe exactly the
        durable prefix at call time.
        """
        if start_seq < 0:
            raise ChangeStreamError(f"stream cursor must be >= 0, got {start_seq}")
        seq = 0
        for record in self.wal.records():
            if record.record_type == RecordType.CHECKPOINT:
                continue
            if seq >= start_seq:
                yield ChangeRecord(
                    seq=seq,
                    lsn=record.lsn,
                    record_type=record.record_type,
                    payload=record.payload,
                    txn_id=_record_txn_id(record),
                )
            seq += 1

    def length(self) -> int:
        """Committed change records available (the stream head cursor)."""
        return sum(
            1
            for record in self.wal.records()
            if record.record_type != RecordType.CHECKPOINT
        )

    def batch(self, start_seq: int, limit: int) -> List[ChangeRecord]:
        """At most ``limit`` records starting at ``start_seq``."""
        out: List[ChangeRecord] = []
        for record in self.records(start_seq):
            out.append(record)
            if len(out) >= limit:
                break
        return out


def encode_batch(records: Sequence[ChangeRecord]) -> bytes:
    """Concatenated wire frames — what the channel ships."""
    return b"".join(record.encode() for record in records)


def decode_frames(data: bytes) -> Tuple[List[ChangeRecord], bool]:
    """Decode a wire batch, tolerating a damaged tail.

    Returns ``(records, clean)``.  ``clean`` is False when the batch
    ended in a truncated or checksum-failing frame — a *transport*
    condition (the channel's truncate fault, a torn read): the intact
    prefix is still usable and the caller re-fetches the rest.  A frame
    that is intact but semantically impossible (wrong schema version)
    raises :class:`repro.errors.ChangeStreamError` instead — retrying
    cannot fix a speaker of the wrong protocol.
    """
    records: List[ChangeRecord] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < _WIRE.size:
            return records, False
        crc, length, version, seq, lsn, record_type, txn_id = _WIRE.unpack_from(
            data, offset
        )
        end = offset + _WIRE.size + length
        if len(data) < end:
            return records, False
        body = data[offset + 4 : end]
        if zlib.crc32(body) != crc:
            return records, False
        if version != SCHEMA_VERSION:
            raise ChangeStreamError(
                f"change record seq={seq} has schema_version={version}, "
                f"this build speaks {SCHEMA_VERSION}"
            )
        records.append(
            ChangeRecord(
                seq=seq,
                lsn=lsn,
                record_type=record_type,
                payload=data[end - length : end],
                txn_id=txn_id,
            )
        )
        offset = end
    return records, True
