"""A read replica: a normal store that replays the change stream.

The replica *is* a standard store — same WAL discipline, same directory
layout — so every existing surface (``repro read``, ``repro xpath``,
``repro serve``, ``repro health``) works on it unchanged.  Apply follows
the write-ahead rule: each change record's original frame is appended to
the replica's own WAL (synced) *before* the operation re-executes, so a
crash at any apply point leaves a WAL whose full-log replay reconstructs
exactly the applied prefix — the same soundness argument as repair's
full rebuild.

The apply cursor is therefore *derived from the WAL itself* (the count
of non-checkpoint frames), never from a side file that could disagree
with it.  The ``store.replication.json`` sidecar — written with the
tmp + fsync + rename pattern, so it is atomically either the old or the
new checkpoint — is advisory: a fast-resume hint and, crucially, the
persisted progress record the staleness alert and health component read
without opening the replica.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.errors import ReplicationGapError
from repro.obs.schema import check_schema_version, stamp
from repro.replication.changestream import ChangeRecord
from repro.replication.digest import state_digest
from repro.storage.recovery import replay_all, replay_record
from repro.storage.wal import LogRecord, RecordType, WriteAheadLog

#: The replication checkpoint sidecar inside a replica's directory.
CHECKPOINT_FILE = "store.replication.json"


def wal_change_count(wal: WriteAheadLog) -> int:
    """Committed non-checkpoint frames in a WAL — the authoritative
    apply cursor of the store owning it."""
    return sum(
        1 for record in wal.records() if record.record_type != RecordType.CHECKPOINT
    )


class Replica:
    """Applies change records onto its own store, idempotently."""

    def __init__(
        self,
        store,
        directory: Optional[str] = None,
        name: str = "replica",
    ) -> None:
        self.store = store
        self.directory = directory
        self.name = name
        #: Next stream seq this replica needs (count of changes applied).
        self.cursor = wal_change_count(store.wal)
        #: Apply-side counters for the lag trace and torture report.
        self.applied = 0
        self.duplicates_skipped = 0

    # -- applying ------------------------------------------------------------

    def apply(self, record: ChangeRecord) -> bool:
        """Apply one change record; returns True when state advanced.

        A record below the cursor is a duplicate delivery and is skipped
        (idempotence); a record above it is a gap — raised as a typed,
        retriable error so the caller re-fetches from the cursor.
        """
        if record.seq < self.cursor:
            self.duplicates_skipped += 1
            return False
        if record.seq > self.cursor:
            raise ReplicationGapError(
                f"replica {self.name!r} at cursor {self.cursor} received "
                f"record seq={record.seq} — {record.seq - self.cursor} "
                f"record(s) missing"
            )
        # write-ahead: the frame reaches the replica's durable log before
        # the operation mutates state, so a crash between the two replays
        # the frame on recovery instead of losing it
        lsn = self.store.wal.append(record.record_type, record.payload, sync=True)
        replay_record(
            self.store,
            LogRecord(lsn=lsn, record_type=record.record_type, payload=record.payload),
        )
        self.cursor += 1
        self.applied += 1
        return True

    # -- the durable checkpoint ---------------------------------------------------

    @property
    def checkpoint_path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, CHECKPOINT_FILE)

    def write_checkpoint(self, source: str = "") -> dict:
        """Atomically commit the replication checkpoint sidecar."""
        payload = stamp(
            {
                "name": self.name,
                "cursor": self.cursor,
                "digest": state_digest(self.store),
                "source": source,
            }
        )
        path = self.checkpoint_path
        if path is not None:
            temporary = path + ".tmp"
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, path)
        return payload

    # -- re-seeding -----------------------------------------------------------

    def reseed(self, primary_wal_image: bytes, source: str = "") -> None:
        """Rebuild this replica from the primary's full WAL image.

        The auto-resync path after detected divergence: the replica's
        WAL is replaced wholesale by the primary's committed log and the
        store is reconstructed by full-log replay — the one recovery
        mode that is always sound.  For a directory-backed replica the
        divergent catalog and device pages are dropped before the new
        WAL lands, so a crash mid-resync cannot resurrect them, and a
        fresh catalog is committed once replay finishes so the
        directory is immediately reopenable.
        """
        from repro.core.store import XMLStore

        wal_path = getattr(self.store.wal, "path", None)
        if self.directory is not None and wal_path is not None:
            from repro.core.filestore import (
                CATALOG_FILE,
                DEVICE_FILE,
                _write_catalog,
            )
            from repro.storage.disk import FileBlockDevice, InstrumentedDevice

            temporary = wal_path + ".tmp"
            with open(temporary, "wb") as handle:
                handle.write(primary_wal_image)
                handle.flush()
                os.fsync(handle.fileno())
            self.store.wal.close()
            self.store.device.close()
            for stale in (CATALOG_FILE, DEVICE_FILE):
                stale_path = os.path.join(self.directory, stale)
                if os.path.exists(stale_path):
                    os.remove(stale_path)
            os.replace(temporary, wal_path)
            device = InstrumentedDevice(
                FileBlockDevice(
                    os.path.join(self.directory, DEVICE_FILE),
                    block_size=self.store.config.page_size,
                ),
                cost_model=self.store.config.cost_model,
            )
            wal = WriteAheadLog(wal_path)
            store = XMLStore.open(config=self.store.config, device=device, wal=wal)
        else:
            self.store.wal.close()
            wal = WriteAheadLog.from_bytes(primary_wal_image)
            store = XMLStore.open(config=self.store.config, wal=wal)
        # replay_all skips checkpoint markers, so any checkpoints the
        # primary took are inert history in the replica's copy
        replay_all(store, wal)
        self.store = store
        self.cursor = wal_change_count(wal)
        if self.directory is not None and wal_path is not None:
            _write_catalog(
                os.path.join(self.directory, CATALOG_FILE), store.checkpoint()
            )
        self.write_checkpoint(source=source)

    @classmethod
    def recover_from_image(
        cls,
        wal_image: bytes,
        config=None,
        name: str = "replica",
    ) -> "Replica":
        """Rebuild a replica from its own (possibly torn) WAL image.

        The crash-recovery path the torture matrix enumerates: the CRC
        scan discards a torn tail, full-log replay reconstructs exactly
        the durable apply prefix, and the cursor falls out of the WAL.
        """
        from repro.core.store import XMLStore

        wal = WriteAheadLog.from_bytes(wal_image)
        store = XMLStore.open(config=config, wal=wal)
        replay_all(store, wal)
        return cls(store, name=name)


def read_checkpoint(directory: str) -> Optional[dict]:
    """The replication checkpoint persisted in ``directory``, or None."""
    path = os.path.join(directory, CHECKPOINT_FILE)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    check_schema_version(payload, f"replication checkpoint {path}", required=False)
    return payload
