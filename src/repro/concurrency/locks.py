"""Hierarchical lock manager (paper §9).

"The flat model proposed in this paper allows the definition of these
concepts on a three-layer architecture: blocks, ranges and tokens."  This
module implements multi-granularity locking over that hierarchy with the
classic mode lattice (IS, IX, S, SIX, X): locking a range for update takes
an intention lock on the store first; locking a token takes intentions on
store and range.

The manager is deterministic and thread-free, matching the rest of the
reproduction: conflicts either fail fast (``wait=False``), or enqueue the
request and raise :class:`DeadlockError` when the wait-for graph acquires
a cycle.  Tests drive interleavings explicitly; release grants queued
compatible requests in FIFO order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConcurrencyError, DeadlockError


class LockMode(Enum):
    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    X = "X"


_COMPATIBLE: Dict[Tuple[LockMode, LockMode], bool] = {}


def _fill_compatibility() -> None:
    table = {
        LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
        LockMode.IX: {LockMode.IS, LockMode.IX},
        LockMode.S: {LockMode.IS, LockMode.S},
        LockMode.SIX: {LockMode.IS},
        LockMode.X: set(),
    }
    for held, allowed in table.items():
        for requested in LockMode:
            _COMPATIBLE[(held, requested)] = requested in allowed


_fill_compatibility()

#: Upgrade lattice: the least mode covering both.
_SUPREMUM: Dict[Tuple[LockMode, LockMode], LockMode] = {}


def _fill_supremum() -> None:
    order = {
        LockMode.IS: {LockMode.IS},
        LockMode.IX: {LockMode.IS, LockMode.IX},
        LockMode.S: {LockMode.IS, LockMode.S},
        LockMode.SIX: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
        LockMode.X: set(LockMode),
    }

    def covers(a: LockMode, b: LockMode) -> bool:
        return b in order[a]

    for a in LockMode:
        for b in LockMode:
            candidates = [m for m in LockMode if covers(m, a) and covers(m, b)]
            # pick the least candidate (fewest covered modes)
            best = min(candidates, key=lambda m: len(order[m]))
            _SUPREMUM[(a, b)] = best


_fill_supremum()


def compatible(held: LockMode, requested: LockMode) -> bool:
    """Whether ``requested`` can be granted alongside ``held``."""
    return _COMPATIBLE[(held, requested)]


def supremum(a: LockMode, b: LockMode) -> LockMode:
    """The least mode at least as strong as both (lock upgrade target)."""
    return _SUPREMUM[(a, b)]


#: A resource is a hierarchy path, e.g. ("store",), ("store", "range", 3),
#: ("store", "range", 3, "token", 17).
Resource = Tuple


def parent_resource(resource: Resource) -> Optional[Resource]:
    """The enclosing resource (…/range/N -> store; store -> None)."""
    if len(resource) <= 1:
        return None
    return resource[:-2]


@dataclass
class _Request:
    txn_id: int
    mode: LockMode


class LockManager:
    """Multi-granularity lock manager with FIFO queues and deadlock
    detection on the wait-for graph."""

    def __init__(self) -> None:
        # resource -> {txn_id: granted mode}
        self._granted: Dict[Resource, "OrderedDict[int, LockMode]"] = {}
        # resource -> FIFO of waiting requests
        self._waiting: Dict[Resource, List[_Request]] = {}

    # -- public API ----------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        wait: bool = True,
    ) -> bool:
        """Acquire (or upgrade to) ``mode`` on ``resource``.

        Returns True when granted.  On conflict: with ``wait=False``
        raises :class:`ConcurrencyError`; otherwise the request is queued
        and False is returned — unless queuing would close a cycle in the
        wait-for graph, which raises :class:`DeadlockError` (the caller
        should abort).
        """
        held = self._granted.setdefault(resource, OrderedDict())
        current = held.get(txn_id)
        target = mode if current is None else supremum(current, mode)
        if current == target:
            return True
        others = [(t, m) for t, m in held.items() if t != txn_id]
        if all(compatible(m, target) for _, m in others) and not self._blocks_queue(
            resource, txn_id
        ):
            held[txn_id] = target
            return True
        if not wait:
            raise ConcurrencyError(
                f"txn {txn_id} cannot lock {resource} in {target.value} without waiting"
            )
        queue = self._waiting.setdefault(resource, [])
        # re-requesting while already queued (a suspended session retrying
        # its operation) must not enqueue a duplicate: keep the original
        # FIFO position, widening the queued mode if the retry asks for more
        for request in queue:
            if request.txn_id == txn_id:
                widened = supremum(request.mode, target)
                if widened == request.mode:
                    return False
                previous = request.mode
                request.mode = widened
                if self._has_deadlock(txn_id):
                    request.mode = previous
                    raise DeadlockError(
                        f"widening {resource} wait to {widened.value} for "
                        f"txn {txn_id} would deadlock"
                    )
                return False
        queue.append(_Request(txn_id, target))
        if self._has_deadlock(txn_id):
            queue.pop()
            raise DeadlockError(
                f"granting {target.value} on {resource} to txn {txn_id} "
                f"would deadlock"
            )
        return False

    def lock_hierarchy(
        self, txn_id: int, resource: Resource, mode: LockMode, wait: bool = True
    ) -> bool:
        """Acquire ``mode`` on ``resource`` after the appropriate intention
        locks on every ancestor (IS for S/IS, IX otherwise)."""
        intention = LockMode.IS if mode in (LockMode.S, LockMode.IS) else LockMode.IX
        ancestors: List[Resource] = []
        cursor: Optional[Resource] = parent_resource(resource)
        while cursor is not None:
            ancestors.append(cursor)
            cursor = parent_resource(cursor)
        for ancestor in reversed(ancestors):
            if not self.acquire(txn_id, ancestor, intention, wait=wait):
                return False
        return self.acquire(txn_id, resource, mode, wait=wait)

    def release(self, txn_id: int, resource: Resource) -> None:
        """Release one lock and grant whatever now can run."""
        held = self._granted.get(resource)
        if held is None or txn_id not in held:
            raise ConcurrencyError(f"txn {txn_id} holds no lock on {resource}")
        del held[txn_id]
        self._grant_waiters(resource)

    def release_all(self, txn_id: int) -> None:
        """Release every lock and queued request of ``txn_id`` (commit or
        abort)."""
        dequeued: List[Resource] = []
        for resource, queue in self._waiting.items():
            filtered = [r for r in queue if r.txn_id != txn_id]
            if len(filtered) != len(queue):
                self._waiting[resource] = filtered
                dequeued.append(resource)
        for resource in list(self._granted):
            held = self._granted[resource]
            if txn_id in held:
                del held[txn_id]
                self._grant_waiters(resource)
        # removing a queued request can expose a grantable head on a
        # resource this txn never held — those queues must progress too,
        # or the sessions behind them stall forever
        for resource in dequeued:
            self._grant_waiters(resource)

    def held_mode(self, txn_id: int, resource: Resource) -> Optional[LockMode]:
        return self._granted.get(resource, {}).get(txn_id)

    def is_waiting(self, txn_id: int, resource: Resource) -> bool:
        return any(r.txn_id == txn_id for r in self._waiting.get(resource, []))

    def waiting_resources(self, txn_id: int) -> List[Resource]:
        """Every resource ``txn_id`` has a queued request on (the
        scheduler resumes a suspended session once this is empty)."""
        return [
            resource
            for resource, queue in self._waiting.items()
            if any(r.txn_id == txn_id for r in queue)
        ]

    def holders(self, resource: Resource) -> Dict[int, LockMode]:
        return dict(self._granted.get(resource, {}))

    # -- internals -------------------------------------------------------------

    def _blocks_queue(self, resource: Resource, txn_id: int) -> bool:
        """Fairness: a new request must not overtake already-queued
        strangers (it may join its own earlier upgrade)."""
        return any(r.txn_id != txn_id for r in self._waiting.get(resource, []))

    def _grant_waiters(self, resource: Resource) -> None:
        queue = self._waiting.get(resource, [])
        held = self._granted.setdefault(resource, OrderedDict())
        progressed = True
        while progressed and queue:
            progressed = False
            head = queue[0]
            others = [(t, m) for t, m in held.items() if t != head.txn_id]
            if all(compatible(m, head.mode) for _, m in others):
                current = held.get(head.txn_id)
                held[head.txn_id] = (
                    head.mode if current is None else supremum(current, head.mode)
                )
                queue.pop(0)
                progressed = True

    def _has_deadlock(self, start_txn: int) -> bool:
        """DFS over the wait-for graph.

        A queued request waits on (a) every holder whose mode is
        incompatible with it, and (b) every *earlier* queued stranger on
        the same resource — the FIFO discipline only ever grants the
        head, so queue position is a real wait dependency, and omitting
        those edges lets fairness-induced cycles stall the scheduler
        undetected."""
        edges: Dict[int, Set[int]] = {}
        for resource, queue in self._waiting.items():
            held = self._granted.get(resource, {})
            earlier: List[int] = []
            for request in queue:
                blockers = {
                    t
                    for t, m in held.items()
                    if t != request.txn_id and not compatible(m, request.mode)
                }
                blockers.update(t for t in earlier if t != request.txn_id)
                if blockers:
                    edges.setdefault(request.txn_id, set()).update(blockers)
                earlier.append(request.txn_id)
        seen: Set[int] = set()
        stack = [start_txn]
        while stack:
            txn = stack.pop()
            for blocker in edges.get(txn, ()):
                if blocker == start_txn:
                    return True
                if blocker not in seen:
                    seen.add(blocker)
                    stack.append(blocker)
        return False


# -- resource constructors (the three-layer hierarchy) -----------------------

STORE_RESOURCE: Resource = ("store",)


def range_resource(range_id: int) -> Resource:
    return ("store", "range", range_id)


def token_resource(range_id: int, offset: int) -> Resource:
    return ("store", "range", range_id, "token", offset)
