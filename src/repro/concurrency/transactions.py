"""Transactions over the store: strict 2PL + logical undo (paper §9).

A :class:`TransactionManager` wraps one :class:`~repro.core.store.XMLStore`
with the hierarchical lock manager.  Each :class:`Transaction` offers the
store's Table-1 operations; reads take S locks on the ranges they touch,
updates take X locks, and every operation records its logical inverse so
``abort()`` restores the store's *content* (note: aborting restores
content, not node identifiers — replacements re-allocate ids, which the
paper's stable-id contract permits since ids are never reused).

Locks are held until commit/abort (strict two-phase locking).  Two
conflict disciplines exist:

* ``wait_on_conflict=False`` (the default) fails fast with
  :class:`ConcurrencyError`, matching the deterministic single-threaded
  test harness;
* ``wait_on_conflict=True`` queues the request in the lock manager's
  FIFO (with deadlock detection) and raises :class:`LockWaitError` —
  the caller suspends and retries the operation once the grant arrives.
  The serving layer's cooperative scheduler drives exactly this loop.

Logging disciplines also come in two flavors.  By default every store
operation appends (and syncs) its own WAL record as it executes.  Under
``redo_buffering=True`` — what the server's group commit needs — active
transactions log nothing; at commit the whole operation list becomes one
``TXN_COMMIT`` frame (see :mod:`repro.storage.txnlog`), so a crashed
group commit can only lose whole transactions.  Aborted transactions
append their do+undo pair, which is a content no-op but reproduces the
id allocation exactly, keeping recovery's replay byte-compatible with
the live store.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.errors import LockWaitError, TransactionStateError
from repro.concurrency.locks import (
    LockManager,
    LockMode,
    STORE_RESOURCE,
    range_resource,
)
from repro.concurrency.tokendoc import TokenDocument, capture_subtree
from repro.core.store import XMLStore
from repro.storage.recovery import encode_op_payload
from repro.storage.txnlog import CommitOp, encode_commit
from repro.storage.wal import RecordType


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class UndoEntry:
    """One logical inverse, as data.

    ``kind`` + ``args`` describe the inverse operation abstractly so
    consumers other than :meth:`Transaction.abort` — the snapshot-read
    materializer in :mod:`repro.server.snapshot` — can apply it to their
    own document model:

    * ``("uninsert", (top_ids,))`` — delete each inserted top-level node;
    * ``("reinsert", (xml, anchor_kind, anchor_id, ids))`` — put a deleted
      subtree back (before a sibling / as last child / at top level);
    * ``("unreplace", (new_id, old_xml, ids))`` — swap a replacement back;
    * ``("restore_content", (node_id, old_content, ids))`` — restore an
      element's children.

    Entries that re-create content also record the original node ids of
    that content (document order).  The live store ignores them — ids
    are never reused, so an abort re-allocates — but consumers replaying
    the inverse over a :class:`~repro.concurrency.tokendoc.TokenDocument`
    (the snapshot materializer, and the transaction's own undo
    composition) restore the content under its exact original ids, which
    is what lets *later* entries keep addressing nodes by id.
    """

    kind: str
    args: tuple
    description: str

    def apply(self, store, log: bool = True) -> None:
        """Run the inverse against a live store or a TokenDocument."""
        with_ids = getattr(store, "accepts_ids", False)
        if self.kind == "uninsert":
            (top_ids,) = self.args
            for top_id in top_ids:
                store.delete_node(top_id, log=log)
        elif self.kind == "reinsert":
            xml_text, anchor_kind, anchor_id, ids = self.args
            kwargs = {"ids": ids} if with_ids else {}
            if anchor_kind == "before" and anchor_id is not None:
                store.insert_before(anchor_id, xml_text, log=log, **kwargs)
            elif anchor_kind == "into_last" and anchor_id is not None:
                store.insert_into_last(anchor_id, xml_text, log=log, **kwargs)
            else:
                store.load_document(xml_text, log=log, **kwargs)
        elif self.kind == "unreplace":
            new_id, old_xml, ids = self.args
            kwargs = {"ids": ids} if with_ids else {}
            store.replace_node(new_id, old_xml, log=log, **kwargs)
        elif self.kind == "restore_content":
            node_id, old_content, ids = self.args
            kwargs = {"ids": ids} if with_ids else {}
            store.replace_content(node_id, old_content, log=log, **kwargs)
        else:  # pragma: no cover - defensive
            raise TransactionStateError(f"unknown undo kind {self.kind!r}")

    def as_ops(self) -> List[Tuple[int, int, str]]:
        """The inverse as (record_type, node_id, xml) store calls — what
        redo buffering appends for aborted transactions."""
        if self.kind == "uninsert":
            (top_ids,) = self.args
            return [(RecordType.DELETE_NODE, top_id, "") for top_id in top_ids]
        if self.kind == "reinsert":
            xml_text, anchor_kind, anchor_id = self.args[:3]
            if anchor_kind == "before" and anchor_id is not None:
                return [(RecordType.INSERT_BEFORE, anchor_id, xml_text)]
            if anchor_kind == "into_last" and anchor_id is not None:
                return [(RecordType.INSERT_INTO_LAST, anchor_id, xml_text)]
            return [(RecordType.LOAD_DOCUMENT, 0, xml_text)]
        if self.kind == "unreplace":
            new_id, old_xml = self.args[:2]
            return [(RecordType.REPLACE_NODE, new_id, old_xml)]
        if self.kind == "restore_content":
            node_id, old_content = self.args[:2]
            return [(RecordType.REPLACE_CONTENT, node_id, old_content)]
        raise TransactionStateError(f"unknown undo kind {self.kind!r}")


class Transaction:
    """One transaction; create via :meth:`TransactionManager.begin`."""

    def __init__(self, manager: "TransactionManager", txn_id: int) -> None:
        self._manager = manager
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self._undo: List[UndoEntry] = []
        #: Redo buffer (redo_buffering only): the ops this transaction
        #: will publish as one TXN_COMMIT frame.
        self._redo: List[CommitOp] = []

    # -- reads ---------------------------------------------------------------

    def read(self, node_id: Optional[int] = None) -> str:
        self._check_active()
        if node_id is None:
            self._lock(STORE_RESOURCE, LockMode.S)
            return self._store.read()
        self._lock_node(node_id, LockMode.S)
        return self._store.read(node_id)

    def xpath(self, expression: str):
        self._check_active()
        self._lock(STORE_RESOURCE, LockMode.S)
        return self._store.xpath(expression)

    # -- updates ---------------------------------------------------------------

    def load_document(self, xml_text: str) -> Optional[int]:
        self._check_active()
        self._lock(STORE_RESOURCE, LockMode.X)
        first_id = self._apply(RecordType.LOAD_DOCUMENT, "load_document", None, xml_text)
        if first_id is not None:
            self._push_undo_delete_inserted(xml_text, first_id)
        return first_id

    def insert_before(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert(RecordType.INSERT_BEFORE, "insert_before", node_id, xml_text)

    def insert_after(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert(RecordType.INSERT_AFTER, "insert_after", node_id, xml_text)

    def insert_into_first(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert(
            RecordType.INSERT_INTO_FIRST, "insert_into_first", node_id, xml_text
        )

    def insert_into_last(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert(
            RecordType.INSERT_INTO_LAST, "insert_into_last", node_id, xml_text
        )

    def delete_node(self, node_id: int) -> None:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        model = self._subtree_at_start(node_id)
        anchor = self._deletion_anchor(node_id) if model.ids else None
        self._apply(RecordType.DELETE_NODE, "delete_node", node_id, "")
        if model.ids:
            self._undo.append(
                UndoEntry(
                    "reinsert",
                    (model.read(), anchor[0], anchor[1], tuple(model.node_ids())),
                    f"reinsert at {anchor[0]} {anchor[1]}",
                )
            )
        # empty model: this transaction inserted the node itself, so
        # insert + delete is a net no-op — nothing to undo

    def replace_node(self, node_id: int, xml_text: str) -> Optional[int]:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        model = self._subtree_at_start(node_id)
        new_id = self._apply(RecordType.REPLACE_NODE, "replace_node", node_id, xml_text)
        assert new_id is not None
        if model.ids:
            self._undo.append(
                UndoEntry(
                    "unreplace",
                    (new_id, model.read(), tuple(model.node_ids())),
                    f"unreplace node {node_id}",
                )
            )
        else:
            # replacing a node this transaction inserted: the start state
            # has no node here, so undo is plain removal
            self._undo.append(
                UndoEntry("uninsert", ((new_id,),), f"uninsert node {new_id}")
            )
        return new_id

    def replace_content(self, node_id: int, xml_text: str) -> Optional[int]:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        model = self._subtree_at_start(node_id)
        result = self._apply(
            RecordType.REPLACE_CONTENT, "replace_content", node_id, xml_text
        )
        if not model.ids:
            # the node is this transaction's own insertion: at start it
            # did not exist, so undo removes it outright
            self._undo.append(
                UndoEntry("uninsert", ((node_id,),), f"uninsert node {node_id}")
            )
        elif model.ids[0] != node_id:
            # composition changed the subtree root's identity (an earlier
            # replace_node of this transaction was folded in): restoring
            # content alone would keep the replacement's tag, so undo by
            # swapping the whole node for its transaction-start form
            self._undo.append(
                UndoEntry(
                    "unreplace",
                    (node_id, model.read(), tuple(model.node_ids())),
                    f"unreplace node {node_id}",
                )
            )
        else:
            old_content, content_ids = model.content_of(node_id)
            self._undo.append(
                UndoEntry(
                    "restore_content",
                    (node_id, old_content, tuple(content_ids)),
                    f"restore content of {node_id}",
                )
            )
        return result

    # -- lifecycle ---------------------------------------------------------------

    def commit(self) -> None:
        self._check_active()
        self._manager._publish_commit(self)
        self.state = TxnState.COMMITTED
        self._undo.clear()
        self._redo.clear()
        self._manager._finish(self)

    def abort(self) -> None:
        self._check_active()
        buffering = self._manager.redo_buffering
        for entry in reversed(self._undo):
            if buffering:
                for record_type, node_id, xml_text in entry.as_ops():
                    self._record_and_run(record_type, node_id, xml_text)
            else:
                entry.apply(self._store)
        self._undo.clear()
        self._manager._publish_abort(self)
        self._redo.clear()
        self.state = TxnState.ABORTED
        self._manager._finish(self)

    @property
    def undo_entries(self) -> Tuple[UndoEntry, ...]:
        """The logical inverses pending on this transaction, oldest first
        (the snapshot materializer reads these — never mutates them)."""
        return tuple(self._undo)

    @property
    def has_changes(self) -> bool:
        return bool(self._undo)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    # -- internals ------------------------------------------------------------------

    @property
    def _store(self) -> XMLStore:
        return self._manager.store

    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def _lock(self, resource, mode: LockMode) -> None:
        with self._manager.store.telemetry.span(
            "lock.wait", resource=str(resource), mode=mode.name, txn=self.txn_id
        ):
            granted = self._manager.locks.lock_hierarchy(
                self.txn_id, resource, mode, wait=self._manager.wait_on_conflict
            )
        if not granted:
            raise LockWaitError(
                f"transaction {self.txn_id} must wait for {resource}",
                resource=resource,
            )

    def _lock_node(self, node_id: int, mode: LockMode) -> None:
        """Lock every range the subtree of ``node_id`` spans at ``mode``.

        Subtree operations (delete/replace/replace_content, subtree
        reads) touch tokens from the node's begin to its end token,
        which may cross range boundaries — locking only the range
        hosting the begin token would let a writer mutate tokens another
        transaction holds locked (the interleaving harness caught
        exactly this).  A suspended retry re-resolves the span, so the
        range list is always current when the last lock is granted."""
        store = self._store
        location = store.locator.locate_span(node_id)
        ranges = store.ranges
        begin_order = ranges.order_index(location.begin.meta.range_id)
        end_order = ranges.order_index(location.end.meta.range_id)
        for order in range(begin_order, end_order + 1):
            self._lock(range_resource(ranges.at_order(order).range_id), mode)

    def _subtree_at_start(self, node_id: int) -> TokenDocument:
        """Capture ``node_id``'s subtree and rewind it to this
        transaction's start state.

        Subtree operations (delete/replace/replace_content) record their
        inverse as an image of the subtree — but if this transaction has
        *already* mutated inside that subtree, the current image bakes
        those uncommitted effects in, and undoing the earlier entries
        after restoring the image would address ids the restore
        re-allocated (the interleaving harness caught an abort crashing
        exactly this way).  So: consume every earlier undo entry whose
        effect lies inside the subtree by replaying it (newest first,
        the abort order) over a private model — possible because entries
        record the original ids of content they re-create — and let the
        one entry pushed for this operation carry the combined,
        transaction-start image."""
        model = capture_subtree(self._store, node_id)
        kept: List[UndoEntry] = []
        for entry in reversed(self._undo):
            if self._entry_inside(entry, model):
                entry.apply(model, log=False)
            else:
                kept.append(entry)
        self._undo = list(reversed(kept))
        return model

    @staticmethod
    def _entry_inside(entry: UndoEntry, model: TokenDocument) -> bool:
        """Whether ``entry``'s effect lies inside the modeled subtree.

        Membership is evaluated against the model *as already rewound*
        (entries are visited newest first), so an entry addressing a
        node that only a newer, already-consumed entry re-created still
        classifies correctly.  An insert's top-level nodes share one
        anchor position, so checking the first id decides for all."""
        if entry.kind == "uninsert":
            (top_ids,) = entry.args
            return bool(top_ids) and model.exists(top_ids[0])
        if entry.kind == "reinsert":
            anchor_kind, anchor_id = entry.args[1], entry.args[2]
            if anchor_id is None or not model.exists(anchor_id):
                return False
            # "before the subtree root" lands *outside* the subtree;
            # every other in-model anchor position is inside it
            return not (anchor_kind == "before" and model.ids and model.ids[0] == anchor_id)
        if entry.kind in ("unreplace", "restore_content"):
            return model.exists(entry.args[0])
        raise TransactionStateError(f"unknown undo kind {entry.kind!r}")

    def _apply(
        self,
        record_type: int,
        op_name: str,
        node_id: Optional[int],
        xml_text: str,
    ):
        """Run one store operation under the manager's logging discipline."""
        if not self._manager.redo_buffering:
            if node_id is None:
                return getattr(self._store, op_name)(xml_text)
            if op_name == "delete_node":
                return self._store.delete_node(node_id)
            return getattr(self._store, op_name)(node_id, xml_text)
        return self._record_and_run(record_type, node_id, xml_text)

    def _record_and_run(
        self, record_type: int, node_id: Optional[int], xml_text: str
    ):
        """Redo buffering: execute unlogged, capture the op + id cursors."""
        store = self._store
        op_name = RecordType.NAMES[record_type]
        before = store.id_scheme.high_water_mark
        if record_type == RecordType.LOAD_DOCUMENT:
            result = store.load_document(xml_text, log=False)
            payload = encode_op_payload(b"", xml_text)
        elif record_type == RecordType.DELETE_NODE:
            result = store.delete_node(node_id, log=False)
            payload = encode_op_payload(store.id_scheme.encode(node_id), "")
        else:
            result = getattr(store, op_name)(node_id, xml_text, log=False)
            payload = encode_op_payload(store.id_scheme.encode(node_id), xml_text)
        after = store.id_scheme.high_water_mark
        self._redo.append(CommitOp(record_type, payload, before, after))
        return result

    def _insert(
        self, record_type: int, op_name: str, node_id: int, xml_text: str
    ) -> Optional[int]:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        first_id = self._apply(record_type, op_name, node_id, xml_text)
        if first_id is not None:
            self._push_undo_delete_inserted(xml_text, first_id)
        return first_id

    def _push_undo_delete_inserted(self, xml_text: str, first_id: int) -> None:
        """Undo an insert: delete each inserted top-level node by id."""
        from repro.xmltoken.datamodel import strip_document_tokens, top_level_nodes
        from repro.xmltoken.parser import tokenize_fragment
        from repro.xmltoken.tokens import count_nodes

        tokens = strip_document_tokens(tokenize_fragment(xml_text))
        top_ids: List[int] = []
        consumed = 0
        for start, end in top_level_nodes(tokens):
            if tokens[start].starts_node:
                top_ids.append(first_id + consumed)
            consumed += count_nodes(tokens[start:end])
        self._undo.append(
            UndoEntry("uninsert", (tuple(top_ids),), f"uninsert nodes {top_ids}")
        )

    def _deletion_anchor(self, node_id: int) -> Tuple[str, Optional[int]]:
        """How to re-insert ``node_id``'s subtree on abort: before its next
        sibling, as last child of its parent, or at top level."""
        view_root = self._build_view()
        node, parent = self._find_with_parent(view_root, node_id)
        if node is None:
            return ("top", None)
        siblings = parent.children if parent is not None else view_root.children
        index = siblings.index(node)
        for following in siblings[index + 1 :]:
            if following.node_id is not None:
                return ("before", following.node_id)
        if parent is not None and parent.node_id is not None:
            return ("into_last", parent.node_id)
        return ("top", None)

    def _build_view(self):
        from repro.xpath.evaluator import build_view

        return build_view(self._store)

    def _find_with_parent(self, root, node_id: int):
        stack = [(child, root) for child in root.children]
        while stack:
            node, parent = stack.pop()
            if node.node_id == node_id:
                return node, (None if parent is root else parent)
            stack.extend((grandchild, node) for grandchild in node.children)
        return None, None


class TransactionManager:
    """Issues transactions over one store and owns the lock manager."""

    def __init__(
        self,
        store: XMLStore,
        wait_on_conflict: bool = False,
        redo_buffering: bool = False,
    ) -> None:
        self.store = store
        self.locks = LockManager()
        #: False = fail fast on conflicts (ConcurrencyError); True = queue
        #: with deadlock detection (LockWaitError; retry after the grant).
        self.wait_on_conflict = wait_on_conflict
        #: True = transactions log one TXN_COMMIT frame at commit instead
        #: of per-operation records (the group-commit discipline).
        self.redo_buffering = redo_buffering
        #: Whether the commit frame pays its own sync barrier.  The
        #: server's group-commit queue sets False and issues one shared
        #: ``wal.sync()`` per batch.
        self.commit_sync = True
        self._next_txn_id = 1
        self.active: Dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        txn = Transaction(self, self._next_txn_id)
        self._next_txn_id += 1
        self.active[txn.txn_id] = txn
        return txn

    # -- internals ------------------------------------------------------------

    def _publish_commit(self, txn: Transaction) -> None:
        if not self.redo_buffering or not txn._redo:
            return
        payload = encode_commit(txn.txn_id, txn._redo)
        self.store.wal.append(RecordType.TXN_COMMIT, payload, sync=self.commit_sync)

    def _publish_abort(self, txn: Transaction) -> None:
        """Aborted transactions under redo buffering still log their
        do+undo pair: content-wise a no-op, but replay then allocates the
        same ids the live store did, keeping recovery byte-compatible."""
        if not self.redo_buffering or not txn._redo:
            return
        payload = encode_commit(txn.txn_id, txn._redo)
        self.store.wal.append(RecordType.TXN_COMMIT, payload, sync=self.commit_sync)

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)
