"""Transactions over the store: strict 2PL + logical undo (paper §9).

A :class:`TransactionManager` wraps one :class:`~repro.core.store.XMLStore`
with the hierarchical lock manager.  Each :class:`Transaction` offers the
store's Table-1 operations; reads take S locks on the ranges they touch,
updates take X locks, and every operation records its logical inverse so
``abort()`` restores the store's *content* (note: aborting restores
content, not node identifiers — replacements re-allocate ids, which the
paper's stable-id contract permits since ids are never reused).

Locks are held until commit/abort (strict two-phase locking).  Conflicts
raise immediately (``wait=False`` discipline) or queue with deadlock
detection, matching the deterministic, single-threaded test harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConcurrencyError, TransactionStateError
from repro.concurrency.locks import (
    LockManager,
    LockMode,
    STORE_RESOURCE,
    range_resource,
)
from repro.core.store import XMLStore
from repro.xmltoken.tokens import TokenKind


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _UndoEntry:
    description: str
    apply: Callable[[], None]


class Transaction:
    """One transaction; create via :meth:`TransactionManager.begin`."""

    def __init__(self, manager: "TransactionManager", txn_id: int) -> None:
        self._manager = manager
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self._undo: List[_UndoEntry] = []

    # -- reads ---------------------------------------------------------------

    def read(self, node_id: Optional[int] = None) -> str:
        self._check_active()
        if node_id is None:
            self._lock(STORE_RESOURCE, LockMode.S)
            return self._store.read()
        self._lock_node(node_id, LockMode.S)
        return self._store.read(node_id)

    def xpath(self, expression: str):
        self._check_active()
        self._lock(STORE_RESOURCE, LockMode.S)
        return self._store.xpath(expression)

    # -- updates ---------------------------------------------------------------

    def load_document(self, xml_text: str) -> Optional[int]:
        self._check_active()
        self._lock(STORE_RESOURCE, LockMode.X)
        first_id = self._store.load_document(xml_text)
        if first_id is not None:
            self._push_undo_delete_inserted(xml_text, first_id)
        return first_id

    def insert_before(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert("insert_before", node_id, xml_text)

    def insert_after(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert("insert_after", node_id, xml_text)

    def insert_into_first(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert("insert_into_first", node_id, xml_text)

    def insert_into_last(self, node_id: int, xml_text: str) -> Optional[int]:
        return self._insert("insert_into_last", node_id, xml_text)

    def delete_node(self, node_id: int) -> None:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        xml_text = self._store.read(node_id)
        anchor = self._deletion_anchor(node_id)
        self._store.delete_node(node_id)
        self._push_undo_reinsert(xml_text, anchor)

    def replace_node(self, node_id: int, xml_text: str) -> Optional[int]:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        old_xml = self._store.read(node_id)
        new_id = self._store.replace_node(node_id, xml_text)
        assert new_id is not None

        def undo() -> None:
            self._store.replace_node(new_id, old_xml)

        self._undo.append(_UndoEntry(f"unreplace node {node_id}", undo))
        return new_id

    def replace_content(self, node_id: int, xml_text: str) -> Optional[int]:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        tokens = self._store.node_tokens(node_id)
        from repro.xmltoken.serializer import serialize
        from repro.xmltoken.datamodel import node_end_offset

        # old content = everything between begin (plus attributes) and end
        inner = tokens[1:-1]
        index = 0
        while index < len(inner) and inner[index].kind in (
            TokenKind.BEGIN_ATTRIBUTE,
            TokenKind.ATTRIBUTE_VALUE,
            TokenKind.END_ATTRIBUTE,
            TokenKind.NAMESPACE,
        ):
            index += 1
        old_content = serialize(inner[index:])
        result = self._store.replace_content(node_id, xml_text)

        def undo() -> None:
            self._store.replace_content(node_id, old_content)

        self._undo.append(_UndoEntry(f"restore content of {node_id}", undo))
        return result

    # -- lifecycle ---------------------------------------------------------------

    def commit(self) -> None:
        self._check_active()
        self.state = TxnState.COMMITTED
        self._undo.clear()
        self._manager._finish(self)

    def abort(self) -> None:
        self._check_active()
        for entry in reversed(self._undo):
            entry.apply()
        self._undo.clear()
        self.state = TxnState.ABORTED
        self._manager._finish(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    # -- internals ------------------------------------------------------------------

    @property
    def _store(self) -> XMLStore:
        return self._manager.store

    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def _lock(self, resource, mode: LockMode) -> None:
        with self._manager.store.telemetry.span(
            "lock.wait", resource=str(resource), mode=mode.name, txn=self.txn_id
        ):
            granted = self._manager.locks.lock_hierarchy(
                self.txn_id, resource, mode, wait=self._manager.wait_on_conflict
            )
        if not granted:
            raise ConcurrencyError(
                f"transaction {self.txn_id} must wait for {resource}"
            )

    def _lock_node(self, node_id: int, mode: LockMode) -> None:
        """Lock the range(s) hosting ``node_id`` at ``mode``."""
        location = self._store.locator.locate(node_id)
        self._lock(range_resource(location.begin.meta.range_id), mode)

    def _insert(self, op_name: str, node_id: int, xml_text: str) -> Optional[int]:
        self._check_active()
        self._lock_node(node_id, LockMode.X)
        first_id = getattr(self._store, op_name)(node_id, xml_text)
        if first_id is not None:
            self._push_undo_delete_inserted(xml_text, first_id)
        return first_id

    def _push_undo_delete_inserted(self, xml_text: str, first_id: int) -> None:
        """Undo an insert: delete each inserted top-level node by id."""
        from repro.xmltoken.datamodel import strip_document_tokens, top_level_nodes
        from repro.xmltoken.parser import tokenize_fragment
        from repro.xmltoken.tokens import count_nodes

        tokens = strip_document_tokens(tokenize_fragment(xml_text))
        top_ids: List[int] = []
        consumed = 0
        for start, end in top_level_nodes(tokens):
            if tokens[start].starts_node:
                top_ids.append(first_id + consumed)
            consumed += count_nodes(tokens[start:end])

        def undo() -> None:
            for top_id in top_ids:
                self._store.delete_node(top_id)

        self._undo.append(_UndoEntry(f"uninsert nodes {top_ids}", undo))

    def _deletion_anchor(self, node_id: int) -> Tuple[str, Optional[int]]:
        """How to re-insert ``node_id``'s subtree on abort: before its next
        sibling, as last child of its parent, or at top level."""
        view_root = self._build_view()
        node, parent = self._find_with_parent(view_root, node_id)
        if node is None:
            return ("top", None)
        siblings = parent.children if parent is not None else view_root.children
        index = siblings.index(node)
        for following in siblings[index + 1 :]:
            if following.node_id is not None:
                return ("before", following.node_id)
        if parent is not None and parent.node_id is not None:
            return ("into_last", parent.node_id)
        return ("top", None)

    def _build_view(self):
        from repro.xpath.evaluator import build_view

        return build_view(self._store)

    def _find_with_parent(self, root, node_id: int):
        stack = [(child, root) for child in root.children]
        while stack:
            node, parent = stack.pop()
            if node.node_id == node_id:
                return node, (None if parent is root else parent)
            stack.extend((grandchild, node) for grandchild in node.children)
        return None, None

    def _push_undo_reinsert(
        self, xml_text: str, anchor: Tuple[str, Optional[int]]
    ) -> None:
        kind, anchor_id = anchor

        def undo() -> None:
            if kind == "before" and anchor_id is not None:
                self._store.insert_before(anchor_id, xml_text)
            elif kind == "into_last" and anchor_id is not None:
                self._store.insert_into_last(anchor_id, xml_text)
            else:
                self._store.load_document(xml_text)

        self._undo.append(_UndoEntry(f"reinsert at {kind} {anchor_id}", undo))


class TransactionManager:
    """Issues transactions over one store and owns the lock manager."""

    def __init__(self, store: XMLStore, wait_on_conflict: bool = False) -> None:
        self.store = store
        self.locks = LockManager()
        #: False = fail fast on conflicts (ConcurrencyError); True = queue
        #: with deadlock detection.
        self.wait_on_conflict = wait_on_conflict
        self._next_txn_id = 1
        self.active: Dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        txn = Transaction(self, self._next_txn_id)
        self._next_txn_id += 1
        self.active[txn.txn_id] = txn
        return txn

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)
