"""Concurrency control: hierarchical locks and 2PL transactions (§9)."""

from repro.concurrency.locks import (
    LockManager,
    LockMode,
    STORE_RESOURCE,
    compatible,
    parent_resource,
    range_resource,
    supremum,
    token_resource,
)
from repro.concurrency.transactions import Transaction, TransactionManager, TxnState

__all__ = [
    "LockManager",
    "LockMode",
    "STORE_RESOURCE",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "compatible",
    "parent_resource",
    "range_resource",
    "supremum",
    "token_resource",
]
