"""A token-list document model with explicit node ids.

Shared substrate for two consumers that must replay logical undo
entries *outside* the live store:

* the transaction layer (:mod:`repro.concurrency.transactions`) uses it
  to compose undo entries — when a subtree operation subsumes earlier
  undo entries of the same transaction, their combined effect is
  evaluated on a model of the subtree to produce one transaction-start
  image;
* the snapshot-read materializer (:mod:`repro.server.snapshot`) uses it
  to turn the live document plus active transactions' undo entries into
  the committed view.

Unlike :class:`repro.testing.reference.ReferenceStore`, ids are not
assigned here — they are *captured* from the live store, and splices can
carry explicit ids (the original ids an undo entry recorded), so a
re-inserted subtree reappears under exactly the ids it had.  Content
spliced without ids (legacy callers) falls back to synthetic negative
ids that can never collide with real ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import NodeNotFoundError, TransactionStateError
from repro.xmltoken.datamodel import node_end_offset
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.serializer import serialize
from repro.xmltoken.tokens import Token, TokenKind

_ATTRIBUTE_KINDS = (
    TokenKind.BEGIN_ATTRIBUTE,
    TokenKind.ATTRIBUTE_VALUE,
    TokenKind.END_ATTRIBUTE,
    TokenKind.NAMESPACE,
)


class TokenDocument:
    """Token list + explicit id assignment undo entries replay over."""

    #: Feature flag UndoEntry.apply checks: this target takes explicit
    #: ``ids`` on its operations (the live store does not).
    accepts_ids = True

    def __init__(self, tokens: List[Token], ids: List[Optional[int]]) -> None:
        self.tokens = list(tokens)
        self.ids = list(ids)
        self._next_synthetic = -1

    # -- helpers ---------------------------------------------------------------

    def _assign(
        self, tokens: List[Token], ids: Optional[Sequence[int]] = None
    ) -> List[Optional[int]]:
        if ids is not None:
            supplied = list(ids)
            starts = sum(1 for token in tokens if token.starts_node)
            if len(supplied) != starts:
                raise TransactionStateError(
                    f"id list of {len(supplied)} does not cover "
                    f"{starts} node-start token(s)"
                )
        out: List[Optional[int]] = []
        cursor = 0
        for token in tokens:
            if not token.starts_node:
                out.append(None)
            elif ids is not None:
                out.append(supplied[cursor])
                cursor += 1
            else:
                out.append(self._next_synthetic)
                self._next_synthetic -= 1
        return out

    def _find(self, node_id: int) -> int:
        for index, assigned in enumerate(self.ids):
            if assigned == node_id:
                return index
        raise NodeNotFoundError(str(node_id))

    def _subtree_span(self, index: int) -> Tuple[int, int]:
        return index, node_end_offset(self.tokens, index)

    def _splice(
        self, at: int, tokens: List[Token], ids: Optional[Sequence[int]] = None
    ) -> None:
        assigned = self._assign(tokens, ids)
        self.tokens[at:at] = tokens
        self.ids[at:at] = assigned

    # -- the operation surface undo entries need --------------------------------

    def load_document(
        self, xml: str, log: bool = False, ids: Optional[Sequence[int]] = None
    ) -> None:
        self._splice(len(self.tokens), tokenize_fragment(xml), ids)

    def insert_before(
        self,
        node_id: int,
        xml: str,
        log: bool = False,
        ids: Optional[Sequence[int]] = None,
    ) -> None:
        index = self._find(node_id)
        self._splice(index, tokenize_fragment(xml), ids)

    def insert_into_last(
        self,
        node_id: int,
        xml: str,
        log: bool = False,
        ids: Optional[Sequence[int]] = None,
    ) -> None:
        start, end = self._subtree_span(self._find(node_id))
        self._splice(end - 1, tokenize_fragment(xml), ids)

    def delete_node(self, node_id: int, log: bool = False) -> None:
        start, end = self._subtree_span(self._find(node_id))
        del self.tokens[start:end]
        del self.ids[start:end]

    def replace_node(
        self,
        node_id: int,
        xml: str,
        log: bool = False,
        ids: Optional[Sequence[int]] = None,
    ) -> None:
        start, end = self._subtree_span(self._find(node_id))
        del self.tokens[start:end]
        del self.ids[start:end]
        self._splice(start, tokenize_fragment(xml), ids)

    def replace_content(
        self,
        node_id: int,
        xml: str,
        log: bool = False,
        ids: Optional[Sequence[int]] = None,
    ) -> None:
        content_start, content_end = self._content_span(node_id)
        del self.tokens[content_start:content_end]
        del self.ids[content_start:content_end]
        if xml:
            self._splice(content_start, tokenize_fragment(xml), ids)

    # -- reads -------------------------------------------------------------------

    def read(self, node_id: Optional[int] = None) -> str:
        if node_id is None:
            return serialize(self.tokens)
        start, end = self._subtree_span(self._find(node_id))
        return serialize(self.tokens[start:end])

    def exists(self, node_id: int) -> bool:
        return node_id in self.ids

    def node_ids(self) -> List[int]:
        """Every node id present, in document order."""
        return [assigned for assigned in self.ids if assigned is not None]

    def _content_span(self, node_id: int) -> Tuple[int, int]:
        """The [start, end) token interval of ``node_id``'s content —
        everything between the begin token (plus attributes) and the end
        token."""
        start, end = self._subtree_span(self._find(node_id))
        content_start = start + 1
        while (
            content_start < end - 1
            and self.tokens[content_start].kind in _ATTRIBUTE_KINDS
        ):
            content_start += 1
        return content_start, end - 1

    def content_of(self, node_id: int) -> Tuple[str, List[int]]:
        """Serialized content of ``node_id`` plus the ids of the nodes
        inside it (document order)."""
        content_start, content_end = self._content_span(node_id)
        xml = serialize(self.tokens[content_start:content_end])
        ids = [
            assigned
            for assigned in self.ids[content_start:content_end]
            if assigned is not None
        ]
        return xml, ids


def capture_document(store) -> TokenDocument:
    """Walk the live store in document order, collecting every token with
    its real node id (regenerated per range, exactly like the locator).
    Pays the same simulated scan cost a full read would — captured views
    are consistent, not free."""
    tokens: List[Token] = []
    ids: List[Optional[int]] = []
    for item in store.locator.scan(0):
        tokens.append(item.token)
        ids.append(item.last_id if item.token.starts_node else None)
    return TokenDocument(tokens, ids)


def capture_subtree(store, node_id: int) -> TokenDocument:
    """A :class:`TokenDocument` of just ``node_id``'s subtree."""
    document = capture_document(store)
    start, end = document._subtree_span(document._find(node_id))
    return TokenDocument(document.tokens[start:end], document.ids[start:end])
