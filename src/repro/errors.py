"""Exception hierarchy for the repro XML store.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the
layering of the system: storage-level errors, token/parse errors, and
store-level (logical) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library.

    ``exit_code`` is what the CLI returns when the error escapes to
    :func:`repro.cli.main`; subclasses that signal a specific condition
    (corruption, degraded state) override it, mirroring the 0/1/2
    convention of ``tools/bench_compare.py``.
    """

    exit_code = 1


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for errors in the page/block/buffer layer."""


class BlockNotFoundError(StorageError):
    """A block number does not exist on the device."""


class PageFullError(StorageError):
    """A record does not fit into the target page, even after compaction."""


class RecordTooLargeError(StorageError):
    """A record can never fit into a page of the configured size."""


class SlotNotFoundError(StorageError):
    """A slot index is out of range or refers to a deleted record."""


class BufferPoolExhaustedError(StorageError):
    """Every frame in the buffer pool is pinned; nothing can be evicted."""


class WALError(StorageError):
    """The write-ahead log is corrupt or was used incorrectly."""


class ChecksumError(StorageError):
    """A block's stored checksum does not match its payload.

    Raised by the page codec on fetch when a framed page fails
    verification: bit rot, a misdirected write (the CRC covers the block
    number, so a page persisted to the wrong block fails too), or a torn
    write that survived to stable storage.

    Attributes
    ----------
    block_no:
        The block whose image failed verification.
    expected_crc, actual_crc:
        CRC32 stored in the page header vs. CRC32 recomputed over the
        payload (``None`` when the header itself is unreadable).
    """

    exit_code = 2

    def __init__(
        self,
        message: str,
        block_no: int = -1,
        expected_crc: "int | None" = None,
        actual_crc: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.block_no = block_no
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc


class DiskFaultError(StorageError):
    """An injected fault fired (used by failure-injection tests)."""


class SimulatedCrashError(DiskFaultError):
    """A simulated crash point fired (see :mod:`repro.storage.faults`).

    Raised by the deterministic fault layer when the process "dies": the
    operation in flight is abandoned and only the durable state (synced
    blocks, flushed WAL prefix) survives for recovery.
    """


# ---------------------------------------------------------------------------
# Token / parse layer
# ---------------------------------------------------------------------------

class TokenError(ReproError):
    """Base class for token-model errors."""


class XMLSyntaxError(TokenError):
    """The XML input is not well formed.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the input.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class TokenStreamError(TokenError):
    """A token sequence violates the XQuery Data Model nesting rules."""


class CodecError(TokenError):
    """A serialized token record cannot be decoded."""


# ---------------------------------------------------------------------------
# Identifier schemes
# ---------------------------------------------------------------------------

class IdSchemeError(ReproError):
    """Base class for identifier-scheme errors."""


class IdExhaustedError(IdSchemeError):
    """The scheme cannot allocate identifiers at the requested position."""


class IdOrderError(IdSchemeError):
    """Identifiers were compared across incompatible schemes."""


# ---------------------------------------------------------------------------
# Core store
# ---------------------------------------------------------------------------

class StoreError(ReproError):
    """Base class for logical store errors."""


class NodeNotFoundError(StoreError):
    """No node with the requested identifier exists in the store."""


class InvalidOperationError(StoreError):
    """The requested update is not legal at the target position."""


class DocumentOrderError(StoreError):
    """An internal document-order invariant was violated (a bug)."""


class StoreCorruptError(StoreError):
    """The store failed integrity verification (unrepaired damage)."""

    exit_code = 2


class StoreDegradedError(StoreError):
    """The store is consistent but data was lost to a repair.

    Verification passes structurally, yet a prior ``repair`` dropped
    token data it could not reconstruct; reads over the lost ID
    intervals return degraded (salvaged) answers, never wrong ones.
    """

    exit_code = 1


# ---------------------------------------------------------------------------
# Query layer
# ---------------------------------------------------------------------------

class QueryError(ReproError):
    """Base class for XPath errors."""


class XPathSyntaxError(QueryError):
    """The XPath expression could not be parsed."""


class XPathUnsupportedError(QueryError):
    """The expression uses a feature outside the supported subset."""


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------

class ConcurrencyError(ReproError):
    """Base class for lock/transaction errors."""


class DeadlockError(ConcurrencyError):
    """A lock request would create a wait-for cycle."""


class LockWaitError(ConcurrencyError):
    """A lock request was queued; the transaction must suspend.

    Raised by the queued-wait discipline (``wait_on_conflict=True``)
    instead of failing fast: the request stays in the lock manager's
    FIFO queue, and the caller — typically a server session driven by
    the cooperative scheduler — retries the operation once the grant
    arrives.  ``resource`` names what the transaction is waiting for.
    """

    def __init__(self, message: str, resource: tuple = ()) -> None:
        super().__init__(message)
        self.resource = resource


class SessionLimitError(ConcurrencyError):
    """Admission control rejected a new session or queued request.

    The server sheds load deterministically: opening a session beyond
    ``server_max_sessions`` or queueing an operation beyond
    ``server_max_queue_depth`` raises this instead of degrading every
    other session.  Counted in ``repro_server_sessions_shed_total``.
    """


class LockTimeoutError(ConcurrencyError):
    """A lock could not be granted within the configured bound."""


class TransactionStateError(ConcurrencyError):
    """A transaction was used after commit/abort, or nested illegally."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class ObservabilityError(ReproError):
    """A metric or tracer was registered or used inconsistently."""


# ---------------------------------------------------------------------------
# Replication
# ---------------------------------------------------------------------------

class ReplicationError(ReproError):
    """Base class for change-data-capture and replica errors."""


class ChangeStreamError(ReplicationError):
    """A change-stream frame is malformed beyond transport recovery
    (bad schema version, impossible record type, decoder misuse)."""


class ReplicationChannelError(ReplicationError):
    """The replication channel failed and its retry budget is spent.

    Raised by :class:`repro.replication.channel.ReplicationChannel` when
    the bounded retry/backoff policy gives up — the replica's checkpoint
    is intact, so a later ``repro replicate`` resumes cleanly.
    """


class ReplicationGapError(ReplicationChannelError):
    """The channel delivered a batch that does not start at the replica's
    cursor (dropped or reordered frames).  Retriable: re-fetch from the
    cursor; escalates to :class:`ReplicationChannelError` only when the
    retry budget runs out."""


class ReplicationTimeoutError(ReplicationChannelError):
    """Catch-up exceeded the configured attempt budget without the
    replica reaching the primary's stream head."""


class ReplicaDivergenceError(ReplicationError):
    """The replica's state digest does not match the primary's committed
    state and auto-resync was disabled or failed — the replica must not
    serve reads until re-seeded."""

    exit_code = 2


class ServerUnavailableError(ReproError):
    """The server could not be reached within the client's retry budget.

    Raised by :func:`repro.server.netadapter.client_request` after the
    capped reconnect/backoff loop is exhausted; carries ``attempts`` so
    operators can tell one refused connection from a flapping server.
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts
