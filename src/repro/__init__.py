"""repro: an adaptive, lazy XML store.

Reproduction of *"Adaptive XML Storage or The Importance of Being Lazy"*
(Cristian Duda and Donald Kossmann, ETH Zurich, SIGMOD 2005).

Quickstart::

    from repro import XMLStore, StoreConfig, IndexingPolicy

    store = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE_PLUS_PARTIAL))
    root = store.load_document("<orders/>")
    store.insert_into_last(root, "<order><sku>x-1</sku></order>")
    print(store.read())
"""

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.errors import (
    InvalidOperationError,
    NodeNotFoundError,
    ReproError,
    StoreError,
    XMLSyntaxError,
)

__version__ = "1.0.0"

__all__ = [
    "IndexingPolicy",
    "InvalidOperationError",
    "NodeNotFoundError",
    "ReproError",
    "StoreConfig",
    "StoreError",
    "XMLStore",
    "XMLSyntaxError",
    "__version__",
]
