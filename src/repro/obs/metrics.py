"""Metrics registry: named counters, gauges and histograms with labels.

The registry is the store's machine-readable surface.  Every metric is
registered once by name (get-or-create, so instrumentation points never
race over "who creates it") and may declare *label names*; calling
``metric.labels(path="partial")`` returns a child time series for that
label combination.  All updates are thread-safe.

Two bucket presets are provided: :data:`LATENCY_BUCKETS` for wall-clock
span durations and :data:`SIMULATED_COST_BUCKETS` for the store's
simulated disk seconds, whose magnitudes are very different (a single
random block access already costs ~8.5 simulated milliseconds).

Robustness counters ride the same registry: the buffer pool registers
``repro_storage_checksum_errors_total`` (blocks that failed on-fetch
checksum verification and were quarantined — see
:meth:`repro.storage.buffer.BufferStats.register_metrics`), so corruption
detection is visible on the ordinary metrics surface, not a side channel.

The no-op twins (:data:`NOOP_METRIC`, :data:`NOOP_REGISTRY`) are shared
singletons with the same call surface; selecting them disables telemetry
without a single conditional at the instrumentation points.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import (
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ObservabilityError

#: Wall-clock latency buckets (seconds): 50µs .. 10s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Simulated-disk-cost buckets (seconds): one seek .. minutes of I/O.
SIMULATED_COST_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Token-count buckets for scan-length histograms.
TOKEN_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
)


class Sample(NamedTuple):
    """One exported time series value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


class MetricFamily(NamedTuple):
    """One metric with all its label children, ready for an exporter."""

    name: str
    kind: str
    help: str
    samples: Tuple[Sample, ...]


def _label_key(labelnames: Sequence[str], labels: Dict[str, object]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ObservabilityError(
            f"labels {sorted(labels)} do not match declared {list(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared parent/child machinery for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: "Dict[Tuple[str, ...], _Metric]" = {}

    def labels(self, **labels: object) -> "_Metric":
        """The child time series for one label combination."""
        if not self.labelnames:
            raise ObservabilityError(f"metric {self.name} declares no labels")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help)
                child._lock = self._lock  # children share the family lock
                self._children[key] = child
            return child

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name} is labeled; call .labels(...) first"
            )

    def _own_samples(self, labels: Tuple[Tuple[str, str], ...]) -> List[Sample]:
        raise NotImplementedError

    def collect(self) -> MetricFamily:
        samples: List[Sample] = []
        if self.labelnames:
            with self._lock:
                children = list(self._children.items())
            for key, child in children:
                samples.extend(child._own_samples(tuple(zip(self.labelnames, key))))
        else:
            samples.extend(self._own_samples(()))
        return MetricFamily(self.name, self.kind, self.help, tuple(samples))


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        if amount < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _own_samples(self, labels: Tuple[Tuple[str, str], ...]) -> List[Sample]:
        return [Sample(self.name, labels, self._value)]


class Gauge(_Metric):
    """A value that can go up and down, or track a callback."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._require_leaf()
        with self._lock:
            self._function = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function`` at collection time instead of storing."""
        self._require_leaf()
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        function = self._function
        return float(function()) if function is not None else self._value

    def _own_samples(self, labels: Tuple[Tuple[str, str], ...]) -> List[Sample]:
        return [Sample(self.name, labels, self.value)]


class Histogram(_Metric):
    """Bucketed distribution with sum and count.

    Bucket bounds are *upper* bounds with ``value <= bound`` semantics
    (Prometheus ``le``); a ``+Inf`` bucket is implicit.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ObservabilityError(f"histogram {self.name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ObservabilityError(f"histogram {self.name} has duplicate buckets")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0

    def labels(self, **labels: object) -> "Histogram":
        if not self.labelnames:
            raise ObservabilityError(f"metric {self.name} declares no labels")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(self.name, self.help, buckets=self.buckets)
                child._lock = self._lock
                self._children[key] = child
            return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        self._require_leaf()
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        cumulative = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + self._counts[-1]))
        return out

    def _own_samples(self, labels: Tuple[Tuple[str, str], ...]) -> List[Sample]:
        samples: List[Sample] = []
        for bound, cumulative in self.bucket_counts():
            le = ("le", format_value(bound))
            samples.append(Sample(self.name + "_bucket", labels + (le,), cumulative))
        samples.append(Sample(self.name + "_sum", labels, self._sum))
        samples.append(Sample(self.name + "_count", labels, float(self.count)))
        return samples


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format does."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def sample_key(sample: Sample) -> str:
    """Flat ``name{label="value",...}`` key for one sample."""
    if not sample.labels:
        return sample.name
    rendered = ",".join(f'{name}="{value}"' for name, value in sample.labels)
    return f"{sample.name}{{{rendered}}}"


class MetricsRegistry:
    """Thread-safe, insertion-ordered collection of metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ObservabilityError(
                        f"metric {name} already registered as {metric.kind}"
                    )
                if metric.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name} already registered with labels "
                        f"{list(metric.labelnames)}"
                    )
                return metric
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)  # type: ignore

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[MetricFamily]:
        with self._lock:
            metrics = list(self._metrics.values())
        return [metric.collect() for metric in metrics]

    def snapshot(self) -> "Dict[str, float]":
        """Flat ``{key: value}`` view over every sample."""
        out: Dict[str, float] = {}
        for family in self.collect():
            for sample in family.samples:
                out[sample_key(sample)] = sample.value
        return out


# ---------------------------------------------------------------- no-op twins --

class _NoopMetric:
    """Counter/gauge/histogram impostor that ignores everything."""

    __slots__ = ()
    kind = "noop"
    name = "noop"
    value = 0.0
    buckets: Tuple[float, ...] = ()

    def labels(self, **labels: object) -> "_NoopMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, function: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def collect(self) -> MetricFamily:
        return MetricFamily("noop", "noop", "", ())


NOOP_METRIC = _NoopMetric()


class NoopRegistry:
    """Registry impostor handing out the shared no-op metric."""

    __slots__ = ()

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _NoopMetric:
        return NOOP_METRIC

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _NoopMetric:
        return NOOP_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = (),
    ) -> _NoopMetric:
        return NOOP_METRIC

    def get(self, name: str) -> None:
        return None

    def collect(self) -> List[MetricFamily]:
        return []

    def snapshot(self) -> Dict[str, float]:
        return {}


NOOP_REGISTRY = NoopRegistry()
