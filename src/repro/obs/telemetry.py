"""Telemetry facade: one object bundling a registry and a tracer.

The store holds exactly one ``telemetry`` attribute and every
instrumentation point goes through it.  Two implementations share the
surface:

* :class:`Telemetry` — live registry + tracer (``enabled`` is True);
* :class:`NoopTelemetry` — the zero-cost twin selected when
  ``StoreConfig.telemetry_enabled`` is False.  Its ``span()`` returns a
  single shared no-op context manager and its registry swallows every
  update, so a disabled store performs no event allocation and no
  locking on the hot path.

Use :func:`create_telemetry` to pick the right one from configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import (
    MetricFamily,
    MetricsRegistry,
    NOOP_REGISTRY,
    NoopRegistry,
)
from repro.obs.tracing import (
    DEFAULT_RING_CAPACITY,
    NOOP_TRACER,
    NoopTracer,
    SpanEvent,
    Tracer,
)


class Telemetry:
    """Live telemetry: spans feed the ring buffer and the registry."""

    enabled = True

    def __init__(
        self,
        simulated_clock: Optional[Callable[[], float]] = None,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            simulated_clock=simulated_clock,
            capacity=ring_capacity,
            registry=self.registry,
        )

    def span(self, name: str, **fields: object):
        return self.tracer.span(name, **fields)

    def preregister_spans(self, names: Sequence[str]) -> None:
        """Make the span metric series for ``names`` visible at zero."""
        for name in names:
            self.tracer.touch(name)

    # registry passthrough, so call sites need only the facade
    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self.registry.counter(name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self.registry.gauge(name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (), **kwargs):
        return self.registry.histogram(name, help, labelnames, **kwargs)

    def events(self) -> List[SpanEvent]:
        return self.tracer.events()

    def collect(self) -> List[MetricFamily]:
        return self.registry.collect()

    def snapshot(self) -> Dict[str, float]:
        return self.registry.snapshot()


class NoopTelemetry:
    """Disabled telemetry; every method is a no-op with the same shape."""

    __slots__ = ()
    enabled = False
    registry: NoopRegistry = NOOP_REGISTRY
    tracer: NoopTracer = NOOP_TRACER

    def span(self, name: str, **fields: object):
        return NOOP_TRACER.span(name)

    def preregister_spans(self, names: Sequence[str]) -> None:
        pass

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NOOP_REGISTRY.counter(name)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NOOP_REGISTRY.gauge(name)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (), **kwargs):
        return NOOP_REGISTRY.histogram(name)

    def events(self) -> List[SpanEvent]:
        return []

    def collect(self) -> List[MetricFamily]:
        return []

    def snapshot(self) -> Dict[str, float]:
        return {}


NOOP_TELEMETRY = NoopTelemetry()


def create_telemetry(
    enabled: bool,
    simulated_clock: Optional[Callable[[], float]] = None,
    ring_capacity: int = DEFAULT_RING_CAPACITY,
):
    """The configured telemetry object: live when enabled, shared no-op
    singleton otherwise."""
    if not enabled:
        return NOOP_TELEMETRY
    return Telemetry(simulated_clock=simulated_clock, ring_capacity=ring_capacity)
