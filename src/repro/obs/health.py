"""Composite health verdict: one poll, one word, one exit code.

A supervisor watching a store daemon should not have to interpret a
metrics dump.  :func:`health_report` folds every liveness signal the
repo already produces — structural integrity, block quarantine,
checksum errors, the degraded-repair sidecar, scrub recency, WAL
growth, workload drift, and the simulated-axis SLO statuses — into one
report whose components each carry a ``healthy`` / ``degraded`` /
``unhealthy`` status, collapsed to the worst as the verdict.

The verdict maps onto the same exit-code scheme ``verify`` uses (and
:mod:`repro.errors` encodes): 0 healthy, 1 degraded
(:class:`~repro.errors.StoreDegradedError`), 2 unhealthy
(:class:`~repro.errors.StoreCorruptError`).

Determinism: every component reads deterministic counters or on-disk
state only — no wall clock, and the SLO section is restricted to the
simulated axis — so ``health --json`` from two identical runs is
byte-identical (CI diffs it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_ORDER = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}

#: A store that has run this many Table-1 operations without a completed
#: scrub pass is considered overdue (small test stores stay healthy).
DEFAULT_SCRUB_OVERDUE_OPERATIONS = 65536

#: WAL records pending past the last checkpoint before the WAL
#: component degrades (checkpointing is overdue).
DEFAULT_WAL_PENDING_BOUND = 10000

#: Workload-drift score above which the drift component degrades.
DEFAULT_DRIFT_BOUND = 0.75


@dataclass
class HealthComponent:
    """One signal folded into the verdict."""

    name: str
    status: str
    summary: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "summary": self.summary,
            "detail": dict(self.detail),
        }


@dataclass
class HealthReport:
    """All components plus the collapsed verdict."""

    components: List[HealthComponent]

    @property
    def verdict(self) -> str:
        worst = HEALTHY
        for component in self.components:
            if _ORDER[component.status] > _ORDER[worst]:
                worst = component.status
        return worst

    @property
    def exit_code(self) -> int:
        return _ORDER[self.verdict]

    def failed(self) -> List[HealthComponent]:
        return [
            component
            for component in self.components
            if component.status != HEALTHY
        ]

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {
                "verdict": self.verdict,
                "exit_code": self.exit_code,
                "components": [
                    component.to_dict() for component in self.components
                ],
            }
        )

    def render(self) -> str:
        lines = [f"health: {self.verdict} (exit {self.exit_code})"]
        for component in self.components:
            marker = {HEALTHY: "ok", DEGRADED: "WARN", UNHEALTHY: "FAIL"}[
                component.status
            ]
            lines.append(f"  [{marker:>4}] {component.name}: {component.summary}")
        return "\n".join(lines) + "\n"


def _integrity_component(store) -> HealthComponent:
    from repro.core.integrity import integrity_report

    report = integrity_report(store)
    failed = report.failed()
    if not failed:
        return HealthComponent(
            "integrity",
            HEALTHY,
            f"all {len(report.checks)} checks passed",
            {"checks": len(report.checks), "failed": []},
        )
    return HealthComponent(
        "integrity",
        UNHEALTHY,
        f"{len(failed)} of {len(report.checks)} checks failed: "
        + ", ".join(check.name for check in failed),
        {
            "checks": len(report.checks),
            "failed": [check.name for check in failed],
        },
    )


def _quarantine_component(store) -> HealthComponent:
    blocks = store.pool.quarantined_blocks()
    if not blocks:
        return HealthComponent(
            "quarantine", HEALTHY, "no quarantined blocks", {"blocks": []}
        )
    return HealthComponent(
        "quarantine",
        UNHEALTHY,
        f"{len(blocks)} block(s) quarantined pending repair",
        {"blocks": list(blocks)},
    )


def _checksum_component(store) -> HealthComponent:
    errors = store.stats.buffer.checksum_errors
    accesses = store.stats.buffer.accesses
    detail = {"errors": errors, "accesses": accesses}
    if errors == 0:
        return HealthComponent(
            "checksum-errors", HEALTHY, "no checksum errors", detail
        )
    return HealthComponent(
        "checksum-errors",
        DEGRADED,
        f"{errors} checksum error(s) over {accesses} buffer accesses",
        detail,
    )


def _repair_component(store_path: Optional[str]) -> HealthComponent:
    if store_path is None:
        return HealthComponent(
            "repair",
            HEALTHY,
            "in-memory store (no repair sidecar possible)",
            {"sidecar": None},
        )
    from repro.core.repair import read_sidecar

    sidecar = read_sidecar(store_path)
    if sidecar is None:
        return HealthComponent(
            "repair", HEALTHY, "no degraded-repair sidecar", {"sidecar": None}
        )
    lost = sidecar.get("lost_operations", sidecar.get("dropped", None))
    return HealthComponent(
        "repair",
        DEGRADED,
        "degraded-repair sidecar present: reads may omit salvaged-over data",
        {"sidecar": sidecar, "lost": lost},
    )


def _scrub_component(store, overdue_operations: int) -> HealthComponent:
    operations = store.operations.read_ops + store.operations.updates
    completions = store.scrub_completions
    last = store.operations_at_last_scrub
    age = operations - last if last is not None else None
    detail = {
        "completions": completions,
        "operations": operations,
        "age_operations": age,
        "overdue_after": overdue_operations,
    }
    if not store.config.checksums_enabled:
        return HealthComponent(
            "scrub",
            HEALTHY,
            "checksums disabled; scrubbing not applicable",
            detail,
        )
    if last is None:
        if operations < overdue_operations:
            return HealthComponent(
                "scrub", HEALTHY, "no completed scrub yet (store is young)",
                detail,
            )
        return HealthComponent(
            "scrub",
            DEGRADED,
            f"no scrub has completed in {operations} operations",
            detail,
        )
    if age >= overdue_operations:
        return HealthComponent(
            "scrub",
            DEGRADED,
            f"last scrub was {age} operations ago",
            detail,
        )
    return HealthComponent(
        "scrub", HEALTHY, f"last scrub {age} operation(s) ago", detail
    )


def _wal_component(store, pending_bound: int) -> HealthComponent:
    from repro.errors import ReproError

    size = store.wal.size_bytes
    try:
        pending = len(store.wal.records_after_last_checkpoint())
    except ReproError:
        pending = -1
    detail = {"size_bytes": size, "pending_records": pending}
    if pending > pending_bound:
        return HealthComponent(
            "wal",
            DEGRADED,
            f"{pending} records pending past the last checkpoint",
            detail,
        )
    return HealthComponent(
        "wal",
        HEALTHY,
        f"{size} bytes, {pending} record(s) past the last checkpoint",
        detail,
    )


def _drift_component(store, drift_bound: float) -> HealthComponent:
    from repro.obs.alerts import _latest_drift

    if not store.history.enabled:
        return HealthComponent(
            "drift", HEALTHY, "workload history disabled", {"drift": None}
        )
    drift = _latest_drift(store.history.snapshots())
    detail = {"drift": drift, "bound": drift_bound}
    if drift > drift_bound:
        return HealthComponent(
            "drift",
            DEGRADED,
            f"workload drifted (score {drift:.2f} > {drift_bound:.2f})",
            detail,
        )
    return HealthComponent(
        "drift", HEALTHY, f"drift score {drift:.2f}", detail
    )


def _slo_component(store) -> HealthComponent:
    from repro.obs.slo import DETERMINISTIC_AXES, SLOTracker

    tracker = store.slo if store.slo.enabled else SLOTracker()
    report = tracker.evaluate(store, axes=DETERMINISTIC_AXES)
    breached = [status for status in report.statuses if not status.met]
    detail = {
        "statuses": [status.to_dict() for status in report.statuses],
        "budget_floor": report.budget_floor(),
    }
    if breached:
        return HealthComponent(
            "slo",
            DEGRADED,
            "simulated-latency objectives breached: "
            + ", ".join(status.target.operation for status in breached),
            detail,
        )
    return HealthComponent(
        "slo",
        HEALTHY,
        f"all {len(report.statuses)} simulated objectives met",
        detail,
    )


def _replication_component(store, store_path: Optional[str]) -> HealthComponent:
    from repro.replication.service import ReplicationMonitor, list_replicas

    if store_path is None or not list_replicas(store_path):
        return HealthComponent(
            "replication",
            HEALTHY,
            "no replicas configured",
            {"replicas": []},
        )
    monitor = getattr(store, "replication", None)
    if monitor is None:
        monitor = ReplicationMonitor(store, store_path)
    lags = monitor.replica_lags()
    detail = {
        "head": monitor.head(),
        "stale_after_ops": store.config.replication_stale_after_ops,
        "replicas": [
            {
                "name": lag.name,
                "cursor": lag.cursor,
                "lag": lag.lag,
                "stale": lag.stale,
                "has_checkpoint": lag.has_checkpoint,
            }
            for lag in lags
        ],
    }
    stale = [lag for lag in lags if lag.stale]
    if stale:
        return HealthComponent(
            "replication",
            DEGRADED,
            f"{len(stale)} of {len(lags)} replica(s) stale: "
            + ", ".join(f"{lag.name} (lag {lag.lag})" for lag in stale),
            detail,
        )
    max_lag = max((lag.lag for lag in lags), default=0)
    return HealthComponent(
        "replication",
        HEALTHY,
        f"{len(lags)} replica(s), max lag {max_lag} op(s)",
        detail,
    )


def health_report(
    store,
    store_path: Optional[str] = None,
    scrub_overdue_operations: int = DEFAULT_SCRUB_OVERDUE_OPERATIONS,
    wal_pending_bound: int = DEFAULT_WAL_PENDING_BOUND,
    drift_bound: float = DEFAULT_DRIFT_BOUND,
) -> HealthReport:
    """Evaluate every component against a live store.  ``store_path``
    (the directory, when there is one) enables the repair-sidecar check."""
    # scrub recency is read BEFORE the integrity walk: integrity's
    # block-checksum invariant runs a full scrub pass itself, which
    # would reset the very recency marks this component judges
    scrub = _scrub_component(store, scrub_overdue_operations)
    return HealthReport(
        components=[
            _integrity_component(store),
            _quarantine_component(store),
            _checksum_component(store),
            _repair_component(store_path),
            scrub,
            _wal_component(store, wal_pending_bound),
            _drift_component(store, drift_bound),
            _slo_component(store),
            _replication_component(store, store_path),
        ]
    )
