"""Incident triggers and schema-stamped bundle dumps.

The flight recorder (:mod:`repro.obs.recorder`) holds the last moments
of context in memory; this module decides *when that context is worth
persisting* and writes it out as an **incident bundle** — a
self-contained directory an operator (or ``repro diagnose``) can read
long after the process is gone.

Trigger kinds (:data:`TRIGGER_KINDS`):

``critical-alert``
    a critical alert rule transitioned to ``fired``
    (:meth:`~repro.obs.alerts.AlertEngine._emit`);
``checksum-quarantine``
    the buffer pool quarantined a block after failed verification —
    whether detected on fetch or by the scrubber;
``crash-recovery``
    WAL replay found records past the last checkpoint (the store did
    not shut down cleanly);
``repair``
    :func:`repro.core.repair.repair_directory` ran (store-less path,
    see :func:`record_directory_incident`);
``slo-budget-exhausted``
    the simulated-latency error budget went negative.

Each ``(kind, key)`` pair fires **once per store instance** (a rotted
chain does not dump a hundred identical bundles), bounded overall by
``recorder_incident_limit``.  Bundles land in
``store.incidents/incident-<seq>/`` as a set of individually
schema-stamped JSON files: the recorder ring dump, the health verdict,
the integrity report, the effective configuration, a WAL tail summary
and the quarantine state.

Crash safety: a bundle is written into ``incident-<seq>.tmp/`` first
and renamed into place only when complete, and every byte goes through
plain files *outside* the store's pages and WAL — a crash mid-dump can
leave an ignorable ``.tmp`` directory, never a corrupt store.  Dump
failures are logged and swallowed: diagnostics must never take the
store down.

Determinism: bundle contents are pure functions of deterministic
counters and on-disk state (the recorder strips wall readings; health
restricts itself to the simulated axis), so two identical seeded runs
dump byte-identical bundles — CI diffs them.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ObservabilityError
from repro.log import get_logger

#: Directory (inside a store directory) incident bundles land in.
INCIDENTS_DIR = "store.incidents"

DEFAULT_LIMIT = 16

TRIGGER_KINDS = (
    "critical-alert",
    "checksum-quarantine",
    "crash-recovery",
    "repair",
    "slo-budget-exhausted",
)

_BUNDLE_NAME = re.compile(r"^incident-(\d+)$")

_log = get_logger("obs.incident")


@dataclass
class IncidentRecord:
    """One recorded incident (bundle on disk when ``bundle`` is set)."""

    seq: int
    kind: str
    key: str
    operations: Optional[int]
    simulated_seconds: Optional[float]
    detail: Dict[str, object] = field(default_factory=dict)
    #: bundle directory name under ``store.incidents`` (None = in-memory
    #: store, or the dump failed and was swallowed)
    bundle: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {
                "seq": self.seq,
                "kind": self.kind,
                "key": self.key,
                "operations": self.operations,
                "simulated_seconds": self.simulated_seconds,
                "detail": dict(self.detail),
                "bundle": self.bundle,
            }
        )


def _config_payload(config) -> Dict[str, object]:
    """The effective :class:`~repro.core.config.StoreConfig`, stamped,
    with enums and nested dataclasses flattened to JSON-safe values."""
    import dataclasses
    from enum import Enum

    from repro.obs.schema import stamp

    out: Dict[str, object] = {}
    for spec in dataclasses.fields(config):
        value = getattr(config, spec.name)
        if isinstance(value, Enum):
            value = value.value
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = dataclasses.asdict(value)
        elif not isinstance(value, (bool, int, float, str, type(None))):
            value = str(value)
        out[spec.name] = value
    return stamp(out)


def _wal_summary(store) -> Dict[str, object]:
    """WAL tail summary: totals plus the records past the last
    checkpoint, bucketed by record type."""
    from repro.errors import ReproError
    from repro.obs.schema import stamp

    wal = store.wal
    out: Dict[str, object] = {
        "appends": wal.appends,
        "fsyncs": wal.fsyncs,
        "size_bytes": wal.size_bytes,
    }
    try:
        pending = wal.records_after_last_checkpoint()
    except ReproError as error:
        out["pending_records"] = None
        out["pending_error"] = str(error)
        return stamp(out)
    by_type: Dict[str, int] = {}
    for record in pending:
        by_type[record.type_name] = by_type.get(record.type_name, 0) + 1
    out["pending_records"] = len(pending)
    out["pending_first_lsn"] = pending[0].lsn if pending else None
    out["pending_last_lsn"] = pending[-1].lsn if pending else None
    out["pending_by_type"] = by_type
    return stamp(out)


def _quarantine_payload(store) -> Dict[str, object]:
    from repro.obs.schema import stamp

    return stamp(
        {
            "blocks": store.pool.quarantined_blocks(),
            "checksum_errors": store.stats.buffer.checksum_errors,
        }
    )


def _next_bundle_seq(directory: str) -> int:
    """One past the highest ``incident-<n>`` already on disk (``.tmp``
    leftovers from a crashed dump are ignored, like everywhere else)."""
    if not os.path.isdir(directory):
        return 0
    highest = -1
    for name in os.listdir(directory):
        match = _BUNDLE_NAME.match(name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def _write_bundle_file(directory: str, name: str, payload) -> None:
    with open(os.path.join(directory, name), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


class IncidentManager:
    """Live trigger framework: dedup, bound, dump."""

    enabled = True

    def __init__(
        self, directory: Optional[str] = None, limit: int = DEFAULT_LIMIT
    ) -> None:
        self.directory = directory
        self.limit = limit
        #: incidents recorded, by trigger kind (``repro_incidents_total``)
        self.counts: Dict[str, int] = {}
        #: triggers dropped because the per-instance limit was reached
        self.suppressed = 0
        self._records: List[IncidentRecord] = []
        self._seen: set = set()
        self._next_seq = _next_bundle_seq(directory) if directory else 0
        self._store = None
        self._store_path = (
            os.path.dirname(os.path.abspath(directory)) if directory else None
        )
        self._dumping = False

    def attach(self, store) -> None:
        """Bind the owning store (``XMLStore._setup_telemetry``)."""
        self._store = store

    # ------------------------------------------------------------- triggering --

    def trigger(
        self, kind: str, key: str = "", **detail: object
    ) -> Optional[IncidentRecord]:
        """Record one incident (and dump its bundle on directory stores).

        Returns None when the trigger was deduplicated, suppressed by
        the limit, or re-entrant (a trigger firing *during* a dump —
        e.g. the bundle's own integrity walk tripping over a second
        rotten block — is dropped rather than recursing)."""
        if kind not in TRIGGER_KINDS:
            raise ObservabilityError(
                f"unknown incident trigger {kind!r}; use one of {TRIGGER_KINDS}"
            )
        if self._dumping:
            return None
        dedup = (kind, str(key))
        if dedup in self._seen:
            return None
        if len(self._records) >= self.limit:
            self.suppressed += 1
            return None
        self._seen.add(dedup)
        store = self._store
        record = IncidentRecord(
            seq=self._next_seq,
            kind=kind,
            key=str(key),
            operations=(
                store.operations.read_ops + store.operations.updates
                if store is not None
                else None
            ),
            simulated_seconds=(
                store.simulated_seconds if store is not None else None
            ),
            detail={name: detail[name] for name in sorted(detail)},
        )
        self._next_seq += 1
        if self.directory is not None and store is not None:
            self._dumping = True
            try:
                record.bundle = self._dump(record, store)
            except Exception as error:  # noqa: BLE001 - never break the store
                _log.warning(
                    "incident bundle dump failed (%s); incident %d recorded "
                    "in memory only",
                    error,
                    record.seq,
                )
            finally:
                self._dumping = False
        self._records.append(record)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        _log.error(
            "incident %d (%s%s) recorded%s",
            record.seq,
            kind,
            f": {record.key}" if record.key else "",
            f" -> {record.bundle}" if record.bundle else "",
        )
        return record

    # ---------------------------------------------------------------- dumping --

    def _dump(self, record: IncidentRecord, store) -> str:
        """Write the bundle crash-safely: everything into ``.tmp``, one
        rename into place.  Every file is individually stamped."""
        os.makedirs(self.directory, exist_ok=True)
        name = f"incident-{record.seq}"
        final = os.path.join(self.directory, name)
        temporary = final + ".tmp"
        if os.path.isdir(temporary):
            import shutil

            shutil.rmtree(temporary)
        os.makedirs(temporary)
        _write_bundle_file(temporary, "incident.json", record.to_dict())
        _write_bundle_file(temporary, "recorder.json", store.recorder.to_dict())
        _write_bundle_file(temporary, "config.json", _config_payload(store.config))
        _write_bundle_file(temporary, "wal.json", _wal_summary(store))
        _write_bundle_file(
            temporary, "quarantine.json", _quarantine_payload(store)
        )
        _write_bundle_file(
            temporary, "health.json", self._health_payload(store)
        )
        _write_bundle_file(
            temporary, "integrity.json", self._integrity_payload(store)
        )
        os.rename(temporary, final)
        return name

    def _health_payload(self, store) -> Dict[str, object]:
        """Best-effort health verdict: a store too broken to diagnose
        still gets a bundle (with the failure recorded instead)."""
        from repro.obs.schema import stamp

        try:
            from repro.obs.health import health_report

            return health_report(store, store_path=self._store_path).to_dict()
        except Exception as error:  # noqa: BLE001 - best effort by design
            return stamp({"error": str(error), "verdict": None})

    def _integrity_payload(self, store) -> Dict[str, object]:
        from repro.obs.schema import stamp

        try:
            from repro.core.integrity import integrity_report

            return integrity_report(store).to_dict()
        except Exception as error:  # noqa: BLE001 - best effort by design
            return stamp({"error": str(error), "ok": None})

    # ---------------------------------------------------------------- reading --

    def incidents(self) -> List[IncidentRecord]:
        """Incidents recorded through this instance, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class NoopIncidents:
    """Disabled manager: triggers are dropped, reads are empty."""

    __slots__ = ()
    enabled = False
    directory = None
    limit = DEFAULT_LIMIT
    suppressed = 0
    counts: Dict[str, int] = {}

    def attach(self, store) -> None:
        pass

    def trigger(
        self, kind: str, key: str = "", **detail: object
    ) -> Optional[IncidentRecord]:
        return None

    def incidents(self) -> List[IncidentRecord]:
        return []

    def __len__(self) -> int:
        return 0


NOOP_INCIDENTS = NoopIncidents()


def create_incidents(
    enabled: bool,
    directory: Optional[str] = None,
    limit: int = DEFAULT_LIMIT,
):
    """The configured manager: live when enabled, shared no-op twin
    otherwise."""
    if not enabled:
        return NOOP_INCIDENTS
    return IncidentManager(directory=directory, limit=limit)


def record_directory_incident(
    path: str, kind: str, detail: Dict[str, object], config=None
) -> Optional[str]:
    """Store-less bundle dump for code paths that operate on a *closed*
    directory store (``repair_directory``): no live recorder or health
    walk exists there, so the bundle carries the trigger detail and the
    effective config only.  Best-effort: returns the bundle name, or
    None when anything failed (diagnostics never break repair)."""
    try:
        directory = os.path.join(path, INCIDENTS_DIR)
        seq = _next_bundle_seq(directory)
        record = IncidentRecord(
            seq=seq,
            kind=kind,
            key="",
            operations=None,
            simulated_seconds=None,
            detail={name: detail[name] for name in sorted(detail)},
        )
        os.makedirs(directory, exist_ok=True)
        name = f"incident-{seq}"
        final = os.path.join(directory, name)
        temporary = final + ".tmp"
        if os.path.isdir(temporary):
            import shutil

            shutil.rmtree(temporary)
        os.makedirs(temporary)
        record.bundle = name
        _write_bundle_file(temporary, "incident.json", record.to_dict())
        if config is not None:
            _write_bundle_file(
                temporary, "config.json", _config_payload(config)
            )
        os.rename(temporary, final)
        return name
    except Exception as error:  # noqa: BLE001 - best effort by design
        _log.warning("store-less incident dump for %s failed: %s", path, error)
        return None
