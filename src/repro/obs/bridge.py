"""Bridge between the always-on dataclass stats and the metrics registry.

The store keeps its cheap dataclass counters (:mod:`repro.core.stats`)
unconditionally — they cost a few integer adds and the benchmarks depend
on them.  This module *projects* those counters into a fresh
:class:`~repro.obs.metrics.MetricsRegistry` on demand, so exporters see
one uniform metric surface whether telemetry is enabled or not:

* :func:`store_registry` — a registry holding the projection of every
  layer's counters plus store-level gauges (simulated seconds, tokens
  emitted, WAL appends, partial-index size, ...);
* :func:`store_families` — the projection *merged with* the live span
  metrics when telemetry is enabled;
* :func:`metrics_snapshot` / :class:`MetricsSnapshot` — flat
  ``{key: value}`` captures with a ``delta()`` for the bench harness,
  so every ``BENCH_*.json`` row can carry an exact per-phase breakdown.

Keeping the projection separate from the live registry means span
metrics are never double-counted against the dataclass counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.obs.metrics import MetricFamily, MetricsRegistry, sample_key


def stats_registry(stats) -> MetricsRegistry:
    """Project a :class:`~repro.core.stats.StoreStatistics` bundle into
    a fresh registry (no store-level gauges; see :func:`store_registry`)."""
    registry = MetricsRegistry()
    stats.register_metrics(registry)
    return registry


def store_registry(store) -> MetricsRegistry:
    """Project a live store — layer counters plus store-level series."""
    registry = stats_registry(store.stats)

    wal_appends = registry.counter(
        "repro_wal_appends_total", "Records appended to the write-ahead log."
    )
    wal_appends.inc(store.wal.appends)
    wal_fsyncs = registry.counter(
        "repro_wal_fsyncs_total", "fsync calls issued by the write-ahead log."
    )
    wal_fsyncs.inc(store.wal.fsyncs)
    registry.counter(
        "repro_wal_sync_barriers_total",
        "Durability barriers (flushes) issued by the write-ahead log.",
    ).inc(store.wal.sync_barriers)
    registry.counter(
        "repro_wal_group_commits_total",
        "Group-commit batches drained (many commits, one sync barrier).",
    ).inc(store.wal.group_commits)
    if store.wal.group_commit_batches:
        batch_sizes = registry.histogram(
            "repro_wal_group_commit_batch_size",
            "Frames drained per group-commit barrier.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        )
        for batch in store.wal.group_commit_batches:
            batch_sizes.observe(float(batch))

    registry.gauge(
        "repro_store_simulated_seconds",
        "Total simulated cost (disk + CPU model) accumulated by the store.",
    ).set(store.simulated_seconds)
    registry.counter(
        "repro_store_tokens_emitted_total", "Tokens written into the store."
    ).inc(store.tokens_emitted)
    registry.counter(
        "repro_store_index_entries_loaded_total",
        "Full-index entries created by loads and updates.",
    ).inc(store.index_entries_loaded)
    registry.gauge(
        "repro_buffer_cached_pages", "Pages currently resident in the buffer pool."
    ).set(store.pool.cached_pages)
    registry.gauge(
        "repro_wal_size_bytes", "Bytes currently in the write-ahead log stream."
    ).set(float(store.wal.size_bytes))
    registry.gauge(
        "repro_storage_quarantined_blocks",
        "Blocks currently quarantined after failed checksum verification.",
    ).set(float(len(store.pool.quarantined_blocks())))
    registry.counter(
        "repro_storage_scrub_completions_total",
        "Scrub passes completed over this store instance.",
    ).inc(store.scrub_completions)
    last_scrub = store.operations_at_last_scrub
    operations = store.operations.read_ops + store.operations.updates
    registry.gauge(
        "repro_storage_scrub_age_operations",
        "Table-1 operations since the last completed scrub pass "
        "(-1 = never scrubbed).",
    ).set(
        float(operations - last_scrub) if last_scrub is not None else -1.0
    )
    if store.partial_index is not None:
        registry.gauge(
            "repro_partial_index_size", "Entries currently memoized."
        ).set(len(store.partial_index))
    if store.history.enabled:
        registry.counter(
            "repro_history_captures_total",
            "Workload-history snapshots captured.",
        ).inc(store.history.captures)
        registry.counter(
            "repro_history_compactions_total",
            "Workload-history retention merges (two oldest rows into one).",
        ).inc(store.history.compactions)
        registry.gauge(
            "repro_history_snapshots",
            "Workload-history snapshots currently retained.",
        ).set(len(store.history))
    if store.recorder.enabled:
        registry.counter(
            "repro_recorder_dropped_total",
            "Flight-recorder entries evicted from the bounded ring.",
        ).inc(store.recorder.dropped)
    server = getattr(store, "server", None)
    if server is not None:
        # the serving layer's deterministic counters (admission,
        # shedding, conflict handling, snapshot reads)
        for name, value in sorted(server.stats.to_dict().items()):
            registry.counter(
                f"repro_server_{name}_total",
                f"Serving layer: {name.replace('_', ' ')}.",
            ).inc(value)
        registry.gauge(
            "repro_server_backlog_sessions",
            "Sessions waiting in the admission backlog.",
        ).set(float(len(server.backlog)))
        registry.counter(
            "repro_server_snapshot_materializations_total",
            "Snapshot views materialized (lazy promotions + eager opens).",
        ).inc(server.snapshots.materializations)
    replication = getattr(store, "replication", None)
    if replication is not None:
        # primary-side replication projection (registry + replica
        # checkpoints); the gauges exist only on stores with replicas
        # configured, so the absence rule reads 0 everywhere else
        view = replication.snapshot()
        registry.gauge(
            "repro_replication_replicas",
            "Replicas registered on this primary.",
        ).set(float(view["replicas"]))
        registry.gauge(
            "repro_replication_lag_ops",
            "Largest replica lag behind the primary's change stream, "
            "in committed operations.",
        ).set(float(view["lag_ops"]))
        registry.counter(
            "repro_replication_applied_total",
            "Change records applied across every registered replica "
            "(sum of checkpoint cursors).",
        ).inc(view["applied_total"])
        registry.gauge(
            "repro_replication_apply_progress",
            "Replication liveness: -1 when a configured replica's "
            "checkpoint is stale, 1 + applied records otherwise.",
        ).set(float(view["apply_progress"]))
    if store.incidents.enabled:
        incidents_total = registry.counter(
            "repro_incidents_total",
            "Incidents recorded (bundles dumped on directory stores), "
            "by trigger kind.",
            labelnames=("kind",),
        )
        for kind, count in sorted(store.incidents.counts.items()):
            incidents_total.labels(kind=kind).inc(count)
    return registry


def store_families(store) -> List[MetricFamily]:
    """Projection families plus, when telemetry is enabled, the live span
    metrics.  Names never collide: the live registry only holds span
    series and the scan-length histogram."""
    families = store_registry(store).collect()
    if store.telemetry.enabled:
        families.extend(store.telemetry.collect())
    return families


@dataclass
class MetricsSnapshot:
    """Flat capture of every sample at one instant."""

    values: Dict[str, float] = field(default_factory=dict)
    kinds: Dict[str, str] = field(default_factory=dict)

    def delta(self, earlier: "MetricsSnapshot") -> Dict[str, float]:
        """Per-phase view: counters and histogram samples subtract the
        earlier capture; gauges report their current value."""
        out: Dict[str, float] = {}
        for key, value in self.values.items():
            if self.kinds.get(key) == "gauge":
                out[key] = value
            else:
                out[key] = value - earlier.values.get(key, 0.0)
        return out


def snapshot_families(families: List[MetricFamily]) -> MetricsSnapshot:
    snapshot = MetricsSnapshot()
    for family in families:
        for sample in family.samples:
            key = sample_key(sample)
            snapshot.values[key] = sample.value
            snapshot.kinds[key] = family.kind
    return snapshot


def metrics_snapshot(store) -> MetricsSnapshot:
    """Snapshot :func:`store_families` for before/after bench deltas."""
    return snapshot_families(store_families(store))
