"""Unified post-mortem timeline over persisted observability artifacts.

Every earlier observability layer persists its own trail next to the
store: alert transitions (``store.alerts.jsonl``), workload-history
snapshots (``store.history.jsonl``), the degraded-repair sidecar
(``store.repair.json``) and — since the flight recorder — incident
bundles (``store.incidents/incident-<n>/``).  After an unattended
failure an operator is left hand-correlating four formats.  This module
is the merge: it loads whatever artifacts exist **without opening the
store** (it must work on a store too corrupt to open), normalises each
row into a :class:`TimelineEntry`, and orders them causally — by the
Table-1 operation counter first, the simulated clock second, never wall
time — into one readable post-mortem narrative.

On top of the timeline, :func:`diagnose` builds a
:class:`DiagnosisReport`: the incident inventory, a root-cause summary
extracted from the earliest fault evidence (recorder fault entries
inside bundles beat alert transitions, which beat incident records),
and a verdict mapped onto the CLI's canonical exit-code scheme —

* ``clean`` / exit 0: no incidents, no fault evidence;
* ``degraded`` / exit 1: no incidents, but a configured replica's
  replication checkpoint is stale (no recent apply progress);
* ``resolved`` / exit 1: incidents occurred but a later repair left the
  store integrity-clean (degraded-but-diagnosed);
* ``unresolved`` / exit 2: incidents with no clean repair after them.

:func:`write_support_bundle` packs the same artifacts plus the
diagnosis into one portable tarball for hand-off.  The tar is written
deterministically (plain ``w`` mode — gzip embeds an mtime — zeroed
member metadata, sorted order), so two identical seeded runs produce
byte-identical support bundles; CI relies on this.

Everything here is read-only with respect to the store: pages, WAL and
catalog are never modified (the replication-staleness check reads the
primary's WAL bytes to find the stream head, but only ever reads).
"""

from __future__ import annotations

import io
import json
import os
import tarfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.log import get_logger

_log = get_logger("obs.timeline")

#: Artifact files a store directory may carry, relative to the store
#: directory (bundle members and timeline sources).
ALERTS_ARTIFACT = "store.alerts.jsonl"
HISTORY_ARTIFACT = "store.history.jsonl"
SIDECAR_ARTIFACT = "store.repair.json"


@dataclass
class TimelineEntry:
    """One causally-ordered row of the merged post-mortem timeline."""

    #: Artifact family: "alert" | "history" | "incident" | "recorder" |
    #: "repair-sidecar".
    source: str
    #: Row type within the family (alert state, snapshot label, trigger
    #: kind, recorder entry kind, sidecar mode).
    kind: str
    #: One-line human summary.
    summary: str
    #: Cumulative Table-1 operations at the row's moment (None when the
    #: artifact does not carry the counter — sorted after counted rows).
    operations: Optional[int] = None
    #: Simulated clock at the row's moment (never wall time).
    simulated: Optional[float] = None
    #: The raw artifact row (schema stamp stripped).
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "kind": self.kind,
            "summary": self.summary,
            "operations": self.operations,
            "simulated": self.simulated,
            "detail": dict(self.detail),
        }


def _sort_key(indexed: Tuple[int, TimelineEntry]) -> Tuple:
    index, entry = indexed
    # rows without an operation counter (repair sidecar, store-less
    # incidents) happen after the run they diagnose: sort them last,
    # stable among themselves
    if entry.operations is None:
        return (1, 0, index)
    # ties on the operation counter fall back to artifact append order,
    # not the simulated stamp: CLI invocations each reset the simulated
    # clock, so across invocations only file order is causal
    return (0, entry.operations, index)


def _strip_stamp(payload: Dict[str, object]) -> Dict[str, object]:
    out = dict(payload)
    out.pop("schema_version", None)
    return out


# ------------------------------------------------------------------ loaders --


def _read_jsonl(path: str) -> List[Dict[str, object]]:
    """Best-effort JSONL rows (truncated/garbled tails are skipped —
    the artifact may have been cut short by the very crash being
    diagnosed)."""
    rows: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return rows
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                rows.append(payload)
    return rows


def _read_json(path: str) -> Optional[Dict[str, object]]:
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, OSError):
        return None
    return payload if isinstance(payload, dict) else None


def load_bundles(store_path: str) -> List[Dict[str, object]]:
    """All complete incident bundles under ``store.incidents``, by
    bundle sequence.  ``incident-<n>.tmp`` leftovers from a crashed
    dump are deliberately ignored — a partial bundle is noise, not
    evidence."""
    from repro.obs.incident import INCIDENTS_DIR

    directory = os.path.join(store_path, INCIDENTS_DIR)
    bundles: List[Dict[str, object]] = []
    if not os.path.isdir(directory):
        return bundles
    names = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".tmp"):
            continue
        if not os.path.isdir(os.path.join(directory, name)):
            continue
        if not name.startswith("incident-"):
            continue
        try:
            seq = int(name.split("-", 1)[1])
        except ValueError:
            continue
        names.append((seq, name))
    for seq, name in sorted(names):
        base = os.path.join(directory, name)
        record = _read_json(os.path.join(base, "incident.json"))
        if record is None:
            continue
        bundles.append(
            {
                "name": name,
                "seq": seq,
                "incident": record,
                "recorder": _read_json(os.path.join(base, "recorder.json")),
                "health": _read_json(os.path.join(base, "health.json")),
                "integrity": _read_json(os.path.join(base, "integrity.json")),
                "wal": _read_json(os.path.join(base, "wal.json")),
                "quarantine": _read_json(os.path.join(base, "quarantine.json")),
            }
        )
    return bundles


# ----------------------------------------------------------------- building --


def _alert_entries(store_path: str) -> List[TimelineEntry]:
    entries = []
    for row in _read_jsonl(os.path.join(store_path, ALERTS_ARTIFACT)):
        entries.append(
            TimelineEntry(
                source="alert",
                kind=str(row.get("state", "?")),
                summary=(
                    f"alert {row.get('rule', '?')} -> {row.get('state', '?')}"
                    f" ({row.get('severity', '?')}): {row.get('summary', '')}"
                ),
                operations=row.get("operations"),
                simulated=row.get("simulated_seconds"),
                detail=_strip_stamp(row),
            )
        )
    return entries


def _history_entries(store_path: str) -> List[TimelineEntry]:
    entries = []
    for row in _read_jsonl(os.path.join(store_path, HISTORY_ARTIFACT)):
        deltas = row.get("deltas") or {}
        entries.append(
            TimelineEntry(
                source="history",
                kind=str(row.get("label", "?")),
                summary=(
                    f"history snapshot #{row.get('seq', '?')}"
                    f" ({row.get('label', '?')}, {len(deltas)} deltas)"
                ),
                operations=row.get("operations"),
                simulated=row.get("simulated_seconds"),
                detail=_strip_stamp(row),
            )
        )
    return entries


def _sidecar_entry(store_path: str) -> List[TimelineEntry]:
    row = _read_json(os.path.join(store_path, SIDECAR_ARTIFACT))
    if row is None:
        return []
    return [
        TimelineEntry(
            source="repair-sidecar",
            kind=str(row.get("mode", "?")),
            summary=(
                f"degraded repair sidecar: mode={row.get('mode', '?')}"
                f" lost_ids={row.get('lost_ids', 0)}"
                f" integrity_ok={row.get('integrity_ok')}"
            ),
            detail=_strip_stamp(row),
        )
    ]


def _incident_entries(bundles: List[Dict[str, object]]) -> List[TimelineEntry]:
    entries = []
    for bundle in bundles:
        record = bundle["incident"]
        entries.append(
            TimelineEntry(
                source="incident",
                kind=str(record.get("kind", "?")),
                summary=(
                    f"incident {bundle['name']}: {record.get('kind', '?')}"
                    + (
                        f" [{record.get('key')}]"
                        if record.get("key")
                        else ""
                    )
                ),
                operations=record.get("operations"),
                simulated=record.get("simulated_seconds"),
                detail=_strip_stamp(record),
            )
        )
        recorder = bundle.get("recorder") or {}
        for row in recorder.get("entries") or []:
            if not isinstance(row, dict):
                continue
            operations = _recorder_operations(row)
            if operations is None:
                # event/alert rows carry no counter of their own: they
                # happened at (or just before) the incident that dumped
                # them, so sort them with it
                operations = record.get("operations")
            entries.append(
                TimelineEntry(
                    source="recorder",
                    kind=str(row.get("kind", "?")),
                    summary=(
                        f"[{bundle['name']}] recorder"
                        f" {row.get('kind', '?')}:"
                        f" {row.get('source', '?')}/{row.get('label', '?')}"
                    ),
                    operations=operations,
                    simulated=row.get("simulated"),
                    detail=_strip_stamp(row),
                )
            )
    return entries


def _recorder_operations(row: Dict[str, object]) -> Optional[int]:
    payload = row.get("payload")
    if isinstance(payload, dict):
        operations = payload.get("operations")
        if isinstance(operations, int):
            return operations
    return None


def build_timeline(
    store_path: str, bundles: Optional[List[Dict[str, object]]] = None
) -> List[TimelineEntry]:
    """The merged, causally-ordered timeline of every artifact found
    under ``store_path``.  Purely file-based: never opens the store."""
    if bundles is None:
        bundles = load_bundles(store_path)
    entries = (
        _alert_entries(store_path)
        + _history_entries(store_path)
        + _incident_entries(bundles)
        + _sidecar_entry(store_path)
    )
    # seen-order index keeps the sort stable and deterministic across
    # runs (artifact files are read in a fixed order)
    ordered = sorted(enumerate(entries), key=_sort_key)
    return [entry for _, entry in ordered]


# ---------------------------------------------------------------- diagnosis --


def _root_cause(
    timeline: List[TimelineEntry], bundles: List[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """The earliest fault evidence, strongest source first: a recorder
    fault event (the black box caught the failure itself) beats a
    critical alert transition, which beats the bare incident record."""
    for entry in timeline:
        if entry.source == "recorder" and entry.kind == "event":
            if entry.detail.get("source") == "fault":
                return {
                    "origin": "recorder",
                    "kind": entry.detail.get("label"),
                    "operations": entry.operations,
                    "simulated": entry.simulated,
                    "summary": entry.summary,
                    "detail": entry.detail.get("payload"),
                }
    for entry in timeline:
        if entry.source == "alert" and entry.kind == "fired":
            if entry.detail.get("severity") == "critical":
                return {
                    "origin": "alert",
                    "kind": entry.detail.get("rule"),
                    "operations": entry.operations,
                    "simulated": entry.simulated,
                    "summary": entry.summary,
                    "detail": dict(entry.detail),
                }
    for bundle in bundles:
        record = bundle["incident"]
        if record.get("kind") != "repair":
            return {
                "origin": "incident",
                "kind": record.get("kind"),
                "operations": record.get("operations"),
                "simulated": record.get("simulated_seconds"),
                "summary": f"incident {bundle['name']}: {record.get('kind')}",
                "detail": dict(record.get("detail") or {}),
            }
    return None


def _resolution(
    bundles: List[Dict[str, object]], sidecar: Optional[Dict[str, object]]
) -> Tuple[str, Optional[Dict[str, object]]]:
    """(verdict, resolving-repair-detail).  Resolved means the *last*
    repair incident came back integrity-clean and not degraded, and no
    degraded sidecar outlives it."""
    faults = [b for b in bundles if b["incident"].get("kind") != "repair"]
    repairs = [b for b in bundles if b["incident"].get("kind") == "repair"]
    if not faults and not repairs:
        return ("clean", None)
    if not repairs:
        return ("unresolved", None)
    last = repairs[-1]["incident"]
    detail = dict(last.get("detail") or {})
    report = detail.get("report") if isinstance(detail.get("report"), dict) else detail
    integrity_ok = bool(report.get("integrity_ok"))
    degraded = bool(report.get("degraded"))
    if integrity_ok and not degraded and sidecar is None:
        return ("resolved", detail)
    return ("unresolved", detail)


def _replication_staleness(store_path: str) -> Optional[Dict[str, object]]:
    """Stale-replica evidence from files alone, or None when healthy.

    A store with a replica registry whose replicas' persisted
    checkpoints trail the primary's stream head beyond the configured
    staleness bound has silently stopped replicating — ``diagnose`` must
    not call that clean (the absence-rule alert fires on the live store;
    this is the post-mortem, file-only view of the same condition).
    """
    from repro.core.config import StoreConfig
    from repro.replication.replica import read_checkpoint
    from repro.replication.service import list_replicas, stream_head_of

    replicas = list_replicas(store_path)
    if not replicas:
        return None
    head = stream_head_of(store_path)
    if head is None:
        return None
    stale_after = StoreConfig().replication_stale_after_ops
    stale = []
    for entry in replicas:
        checkpoint = read_checkpoint(entry.get("path", ""))
        cursor = int(checkpoint["cursor"]) if checkpoint else 0
        lag = max(0, head - cursor)
        if lag > stale_after:
            stale.append(
                {
                    "name": entry.get("name", "?"),
                    "cursor": cursor,
                    "lag": lag,
                    "has_checkpoint": checkpoint is not None,
                }
            )
    if not stale:
        return None
    return {
        "head": head,
        "stale_after_ops": stale_after,
        "stale_replicas": stale,
        "configured_replicas": len(replicas),
    }


@dataclass
class DiagnosisReport:
    """What happened to this store, reconstructed from artifacts alone."""

    store_path: str
    verdict: str  # "clean" | "degraded" | "resolved" | "unresolved"
    timeline: List[TimelineEntry]
    incidents: List[Dict[str, object]]
    root_cause: Optional[Dict[str, object]] = None
    resolution: Optional[Dict[str, object]] = None
    #: bundle the diagnosis focused on (``--incident``), if any
    focus: Optional[str] = None
    #: stale-replication evidence (None when replicas are healthy or
    #: none are configured)
    replication: Optional[Dict[str, object]] = None

    @property
    def exit_code(self) -> int:
        """The canonical CLI scheme (see README): 0 clean, 1 incidents
        resolved by a clean repair or replication gone stale (degraded),
        2 unresolved."""
        return {"clean": 0, "degraded": 1, "resolved": 1}.get(self.verdict, 2)

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {
                "store_path": self.store_path,
                "verdict": self.verdict,
                "exit_code": self.exit_code,
                "incident_count": len(self.incidents),
                "incidents": [dict(record) for record in self.incidents],
                "root_cause": self.root_cause,
                "resolution": self.resolution,
                "focus": self.focus,
                "replication": self.replication,
                "timeline": [entry.to_dict() for entry in self.timeline],
            }
        )

    def render(self) -> str:
        lines = [
            f"post-mortem diagnosis: {self.store_path}",
            f"  verdict: {self.verdict} (exit {self.exit_code})",
            f"  incidents: {len(self.incidents)}",
        ]
        if self.root_cause is not None:
            cause = self.root_cause
            lines.append(
                f"  root cause [{cause.get('origin')}]: {cause.get('kind')}"
                + (
                    f" at op {cause.get('operations')}"
                    if cause.get("operations") is not None
                    else ""
                )
            )
        if self.resolution is not None:
            lines.append(f"  resolution: repair ({self.verdict})")
        if self.replication is not None:
            stale = self.replication.get("stale_replicas") or []
            names = ", ".join(
                f"{r.get('name')} (lag {r.get('lag')})" for r in stale
            )
            lines.append(
                f"  replication: {len(stale)} stale replica(s): {names}"
            )
        lines.append("")
        lines.append("timeline (causal order):")
        if not self.timeline:
            lines.append("  (no observability artifacts found)")
        for entry in self.timeline:
            moment = (
                f"op {entry.operations:>6}"
                if entry.operations is not None
                else "post-run "
            )
            lines.append(f"  {moment}  {entry.source:>14}  {entry.summary}")
        return "\n".join(lines) + "\n"


def diagnose(
    store_path: str, incident: Optional[str] = None
) -> DiagnosisReport:
    """Build the post-mortem report for ``store_path`` from persisted
    artifacts alone.  ``incident`` narrows the recorder timeline to one
    named bundle (``incident-3``) — the incident inventory and verdict
    still consider everything."""
    bundles = load_bundles(store_path)
    focus = None
    if incident is not None:
        matches = [b for b in bundles if b["name"] == incident]
        if not matches:
            from repro.errors import ObservabilityError

            known = ", ".join(b["name"] for b in bundles) or "none"
            raise ObservabilityError(
                f"no incident bundle {incident!r} under {store_path}"
                f" (found: {known})"
            )
        focus = incident
        timeline_bundles = matches
    else:
        timeline_bundles = bundles
    timeline = build_timeline(store_path, bundles=timeline_bundles)
    sidecar = _read_json(os.path.join(store_path, SIDECAR_ARTIFACT))
    verdict, resolution = _resolution(bundles, sidecar)
    replication = _replication_staleness(store_path)
    if verdict == "clean" and replication is not None:
        # replicas configured but none keeping up: not clean — an
        # operator pointed here must see the stalled replication
        verdict = "degraded"
    return DiagnosisReport(
        store_path=store_path,
        verdict=verdict,
        timeline=timeline,
        incidents=[dict(b["incident"]) for b in bundles],
        root_cause=_root_cause(timeline, timeline_bundles),
        resolution=resolution,
        focus=focus,
        replication=replication,
    )


# ------------------------------------------------------------ support bundle --


def _bundle_members(store_path: str) -> List[str]:
    """Relative paths of every artifact worth shipping, sorted."""
    from repro.obs.incident import INCIDENTS_DIR

    members = []
    for name in (ALERTS_ARTIFACT, HISTORY_ARTIFACT, SIDECAR_ARTIFACT):
        if os.path.exists(os.path.join(store_path, name)):
            members.append(name)
    incidents = os.path.join(store_path, INCIDENTS_DIR)
    if os.path.isdir(incidents):
        for root, dirs, files in os.walk(incidents):
            dirs[:] = sorted(d for d in dirs if not d.endswith(".tmp"))
            for file_name in sorted(files):
                full = os.path.join(root, file_name)
                members.append(os.path.relpath(full, store_path))
    return sorted(members)


def _tar_add_bytes(archive: tarfile.TarFile, name: str, data: bytes) -> None:
    info = tarfile.TarInfo(name=name)
    info.size = len(data)
    # zeroed metadata keeps the archive a pure function of its contents
    info.mtime = 0
    info.uid = info.gid = 0
    info.uname = info.gname = ""
    info.mode = 0o644
    archive.addfile(info, io.BytesIO(data))


def write_support_bundle(store_path: str, output: str) -> Dict[str, object]:
    """Pack every observability artifact plus a fresh diagnosis into a
    portable, deterministic tarball at ``output``.  Returns the stamped
    manifest (also embedded as ``MANIFEST.json``)."""
    from repro.obs.schema import stamp

    report = diagnose(store_path)
    members = _bundle_members(store_path)
    manifest = stamp(
        {
            "store_path": store_path,
            "verdict": report.verdict,
            "incident_count": len(report.incidents),
            "members": list(members),
        }
    )
    diagnosis_data = (
        json.dumps(report.to_dict(), indent=2, sort_keys=True, default=str)
        + "\n"
    ).encode("utf-8")
    manifest_data = (
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")
    parent = os.path.dirname(os.path.abspath(output))
    os.makedirs(parent, exist_ok=True)
    # plain (uncompressed) mode: gzip embeds a timestamp, which would
    # break the byte-identity CI diffs
    with tarfile.open(output, "w") as archive:
        _tar_add_bytes(archive, "MANIFEST.json", manifest_data)
        _tar_add_bytes(archive, "diagnosis.json", diagnosis_data)
        for member in members:
            with open(os.path.join(store_path, member), "rb") as handle:
                _tar_add_bytes(archive, member, handle.read())
    _log.info(
        "support bundle: %d artifact members -> %s", len(members), output
    )
    return manifest
