"""Deterministic alert engine over the store's metric surface.

Every observability layer so far is pull-style: run a workload, then
dump artifacts.  Operations needs push-style signals — "checksum errors
appeared", "the buffer pool is thrashing", "no scrub has completed in a
long time" — without a human staring at ``stats``.  This module is that
rule engine, built on the same contract as the rest of :mod:`repro.obs`:

* **deterministic** — rules only see deterministic samples (wall-clock
  series are filtered with the same predicate workload history uses),
  plus pseudo-metrics derived from them (workload drift, the simulated
  SLO budget floor).  Two identical runs write byte-identical alert
  logs, which CI diffs;
* **zero-cost when off** — the shared :data:`NOOP_ALERTS` twin keeps
  the hot path at one attribute check, and evaluation itself only
  *reads* counters (the simulated clock never moves);
* **append-only JSONL** — state *transitions* (fired / cleared), one
  stamped line each, in ``store.alerts.jsonl`` next to the device file.
  Steady state writes nothing; the active set and the sequence number
  are restored from the file on reopen.

Rule kinds:

``threshold``
    compare one sample (or a ``+``-joined sum of samples) to a bound;
``ratio``
    compare ``numerator / denominator`` (each a ``+``-joined sum),
    suppressed below ``min_denominator`` so cold stores stay quiet;
``delta``
    compare the sum of a sample's per-snapshot deltas over the last
    ``window`` history snapshots — rate-of-change without a wall clock;
``absence``
    fire when a sample is still ≤ ``bound`` after ``min_operations``
    Table-1 operations (e.g. "no scrub ever completed").

Dedup and hysteresis: a rule whose condition holds emits one ``fired``
event and then stays silently active; it emits ``cleared`` only after
``clear_after`` consecutive evaluations with the condition false.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.history import HistorySnapshot, _is_deterministic_key
from repro.obs.incident import NOOP_INCIDENTS
from repro.obs.recorder import NOOP_RECORDER

DEFAULT_INTERVAL = 64
DEFAULT_CLEAR_AFTER = 2

SEVERITIES = ("info", "warning", "critical")
KINDS = ("threshold", "ratio", "delta", "absence")
OPS = (">", ">=", "<", "<=")

#: Pseudo-metric keys the engine injects into every view (derived from
#: deterministic inputs, so they are themselves deterministic).
DRIFT_KEY = "repro_workload_drift"
SLO_BUDGET_KEY = "repro_slo_budget_floor"


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule (see the module docstring for kinds)."""

    name: str
    severity: str
    kind: str
    summary: str
    #: threshold/delta/absence: the sample key (``a+b`` sums samples).
    metric: str = ""
    op: str = ">"
    bound: float = 0.0
    #: ratio only.
    numerator: str = ""
    denominator: str = ""
    min_denominator: float = 1.0
    #: delta only: history snapshots summed.
    window: int = 4
    #: absence only: operations before the rule may fire.
    min_operations: int = 0
    #: consecutive false evaluations before an active alert clears.
    clear_after: int = DEFAULT_CLEAR_AFTER

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ObservabilityError(
                f"rule {self.name!r}: unknown severity {self.severity!r}"
            )
        if self.kind not in KINDS:
            raise ObservabilityError(
                f"rule {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.op not in OPS:
            raise ObservabilityError(
                f"rule {self.name!r}: unknown comparison {self.op!r}"
            )
        if self.kind == "ratio" and not (self.numerator and self.denominator):
            raise ObservabilityError(
                f"rule {self.name!r}: ratio rules need numerator/denominator"
            )
        if self.kind != "ratio" and not self.metric:
            raise ObservabilityError(
                f"rule {self.name!r}: {self.kind} rules need a metric"
            )
        if self.window < 1:
            raise ObservabilityError(
                f"rule {self.name!r}: window must be >= 1"
            )
        if self.clear_after < 1:
            raise ObservabilityError(
                f"rule {self.name!r}: clear_after must be >= 1"
            )


@dataclass
class AlertView:
    """What one evaluation sees: deterministic cumulative sample values,
    the history snapshots (for delta rules), and the operation totals."""

    values: Dict[str, float] = field(default_factory=dict)
    snapshots: List[HistorySnapshot] = field(default_factory=list)
    operations: int = 0
    simulated_seconds: float = 0.0

    def value(self, expression: str) -> float:
        """A sample value, or the sum of ``+``-joined samples; missing
        samples read as 0 so rules work on cold stores."""
        return sum(
            self.values.get(key.strip(), 0.0)
            for key in expression.split("+")
        )


def _compare(value: float, op: str, bound: float) -> bool:
    if op == ">":
        return value > bound
    if op == ">=":
        return value >= bound
    if op == "<":
        return value < bound
    return value <= bound


def evaluate_rule(rule: AlertRule, view: AlertView) -> Tuple[bool, float]:
    """One rule against one view → (condition holds, observed value)."""
    if rule.kind == "threshold":
        value = view.value(rule.metric)
        return _compare(value, rule.op, rule.bound), value
    if rule.kind == "ratio":
        denominator = view.value(rule.denominator)
        if denominator < rule.min_denominator:
            return False, 0.0
        value = view.value(rule.numerator) / denominator
        return _compare(value, rule.op, rule.bound), value
    if rule.kind == "delta":
        recent = view.snapshots[-rule.window:]
        value = sum(
            sum(
                snapshot.delta(key.strip())
                for key in rule.metric.split("+")
            )
            for snapshot in recent
        )
        return _compare(value, rule.op, rule.bound), value
    # absence
    value = view.value(rule.metric)
    if view.operations < rule.min_operations:
        return False, value
    return value <= rule.bound, value


def _latest_drift(snapshots: Sequence[HistorySnapshot]) -> float:
    from repro.obs.fingerprint import drift_series

    series = drift_series(list(snapshots))
    return series[-1]["drift"] if series else 0.0


def store_view(store) -> AlertView:
    """Build the evaluation view from a live store: deterministic samples
    plus the drift and SLO-budget pseudo-metrics."""
    from repro.obs.bridge import metrics_snapshot

    values = {
        key: value
        for key, value in metrics_snapshot(store).values.items()
        if _is_deterministic_key(key)
    }
    snapshots = store.history.snapshots()
    values[DRIFT_KEY] = _latest_drift(snapshots)
    values[SLO_BUDGET_KEY] = store.slo.budget_floor(store)
    return AlertView(
        values=values,
        snapshots=snapshots,
        operations=store.operations.read_ops + store.operations.updates,
        simulated_seconds=store.simulated_seconds,
    )


def cumulative_values(
    snapshots: Sequence[HistorySnapshot],
) -> Dict[str, float]:
    """Reconstruct cumulative sample values from history deltas (the
    offline path ``watch`` uses — no store open).  Counter-like samples
    (``*_total``/histogram ``_bucket``/``_sum``/``_count``) sum their
    deltas; everything else is a gauge and keeps its last value."""
    totals: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    for snapshot in snapshots:
        for key, value in snapshot.deltas.items():
            name = key.split("{", 1)[0]
            if name.endswith(("_total", "_bucket", "_sum", "_count")):
                totals[key] = totals.get(key, 0.0) + value
            else:
                gauges[key] = value
    totals.update(gauges)
    return totals


def history_view(snapshots: Sequence[HistorySnapshot]) -> AlertView:
    """Evaluation view rebuilt from persisted history alone."""
    values = cumulative_values(snapshots)
    values[DRIFT_KEY] = _latest_drift(snapshots)
    last = snapshots[-1] if snapshots else None
    return AlertView(
        values=values,
        snapshots=list(snapshots),
        operations=last.operations if last else 0,
        simulated_seconds=last.simulated_seconds if last else 0.0,
    )


@dataclass(frozen=True)
class AlertEvent:
    """One state transition, as persisted to ``store.alerts.jsonl``."""

    seq: int
    state: str  # "fired" | "cleared"
    rule: str
    severity: str
    summary: str
    value: float
    bound: float
    #: evaluation trigger: "interval", "checkpoint", "cli", "watch", ...
    label: str
    operations: int
    simulated_seconds: float

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {
                "seq": self.seq,
                "state": self.state,
                "rule": self.rule,
                "severity": self.severity,
                "summary": self.summary,
                "value": self.value,
                "bound": self.bound,
                "label": self.label,
                "operations": self.operations,
                "simulated_seconds": self.simulated_seconds,
            }
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AlertEvent":
        try:
            return cls(
                seq=int(payload["seq"]),  # type: ignore[arg-type]
                state=str(payload["state"]),
                rule=str(payload["rule"]),
                severity=str(payload["severity"]),
                summary=str(payload["summary"]),
                value=float(payload["value"]),  # type: ignore[arg-type]
                bound=float(payload["bound"]),  # type: ignore[arg-type]
                label=str(payload["label"]),
                operations=int(payload["operations"]),  # type: ignore[arg-type]
                simulated_seconds=float(
                    payload["simulated_seconds"]  # type: ignore[arg-type]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ObservabilityError(
                f"malformed alert event: {error}"
            ) from error

    def render(self) -> str:
        return (
            f"[{self.severity}] {self.state} {self.rule}: {self.summary} "
            f"(value {self.value:g}, bound {self.bound:g}, "
            f"at op {self.operations})"
        )


def default_rules() -> Tuple[AlertRule, ...]:
    """The built-in rule set the CLI evaluates."""
    return (
        AlertRule(
            "checksum-errors",
            "critical",
            "threshold",
            "block images failed checksum verification on fetch",
            metric="repro_storage_checksum_errors_total",
            op=">",
            bound=0,
        ),
        AlertRule(
            "quarantined-blocks",
            "critical",
            "threshold",
            "blocks are quarantined pending repair",
            metric="repro_storage_quarantined_blocks",
            op=">",
            bound=0,
        ),
        AlertRule(
            "slo-budget-exhausted",
            "warning",
            "threshold",
            "a simulated-latency objective has spent its error budget",
            metric=SLO_BUDGET_KEY,
            op="<",
            bound=0.0,
        ),
        AlertRule(
            "workload-drift",
            "info",
            "threshold",
            "the workload fingerprint drifted from the recent window",
            metric=DRIFT_KEY,
            op=">",
            bound=0.5,
        ),
        AlertRule(
            "buffer-thrash",
            "warning",
            "ratio",
            "buffer pool miss rate is high over a warm store",
            numerator='repro_buffer_accesses_total{result="miss"}',
            denominator=(
                'repro_buffer_accesses_total{result="hit"}'
                '+repro_buffer_accesses_total{result="miss"}'
            ),
            op=">",
            bound=0.9,
            min_denominator=256,
        ),
        AlertRule(
            "wal-surge",
            "info",
            "delta",
            "WAL append rate surged over the recent history window",
            metric="repro_wal_appends_total",
            op=">",
            bound=4096,
            window=4,
        ),
        AlertRule(
            "scrub-overdue",
            "info",
            "absence",
            "no scrub pass has completed on this store instance",
            metric="repro_storage_scrub_completions_total",
            min_operations=100_000,
        ),
        AlertRule(
            "session-shedding",
            "warning",
            "threshold",
            "the serving layer is shedding sessions (admission overload)",
            metric="repro_server_sessions_shed_total",
            op=">",
            bound=0,
        ),
        AlertRule(
            "replication-lag",
            "warning",
            "threshold",
            "a replica lags the primary's change stream",
            metric="repro_replication_lag_ops",
            op=">",
            bound=256,
        ),
        AlertRule(
            "replication-stale",
            "warning",
            "absence",
            "a configured replica's checkpoint shows no apply progress",
            # the liveness gauge is absent (reads 0) on stores without
            # replicas, -1 when a configured replica's checkpoint is
            # stale, and >= 1 while replicas make progress — so only the
            # stale state can reach the bound
            metric="repro_replication_apply_progress",
            bound=-1.0,
            min_operations=1,
        ),
    )


class AlertEngine:
    """Live engine: rule state machines plus the append-only log."""

    enabled = True

    def __init__(
        self,
        rules: Optional[Sequence[AlertRule]] = None,
        path: Optional[str] = None,
        interval: int = DEFAULT_INTERVAL,
    ) -> None:
        self.rules: Tuple[AlertRule, ...] = (
            tuple(rules) if rules is not None else default_rules()
        )
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ObservabilityError("alert rule names must be unique")
        self.path = path
        self.interval = interval
        self.evaluations = 0
        self._ops_since_eval = 0
        self._next_seq = 0
        self._active: Dict[str, AlertEvent] = {}
        self._ok_streak: Dict[str, int] = {}
        #: events emitted (or restored) through this engine instance
        self._events: List[AlertEvent] = []
        #: flight recorder transitions tee into / incident manager that
        #: critical firings trigger (the owning store attaches live ones)
        self.recorder = NOOP_RECORDER
        self.incidents = NOOP_INCIDENTS
        if path is not None and os.path.exists(path):
            for payload in read_alert_log(path):
                event = AlertEvent.from_dict(payload)
                self._next_seq = event.seq + 1
                self._events.append(event)
                if event.state == "fired":
                    self._active[event.rule] = event
                else:
                    self._active.pop(event.rule, None)

    # ------------------------------------------------------------- recording --

    def observe(self, store) -> None:
        """Per-operation hook (``XMLStore._observe``): evaluate every
        ``interval`` operations."""
        self._ops_since_eval += 1
        if self._ops_since_eval >= self.interval:
            self.evaluate_store(store, "interval")

    def evaluate_store(
        self, store, label: str = "manual", skip_if_idle: bool = False
    ) -> List[AlertEvent]:
        """Evaluate every rule against a live store.  ``skip_if_idle``
        suppresses the evaluation when no operation ran since the last
        one (the checkpoint hook uses it)."""
        if skip_if_idle and self._ops_since_eval == 0:
            return []
        return self.evaluate(store_view(store), label)

    def evaluate(
        self, view: AlertView, label: str = "manual"
    ) -> List[AlertEvent]:
        """Run every rule's state machine; returns the transitions."""
        self._ops_since_eval = 0
        self.evaluations += 1
        transitions: List[AlertEvent] = []
        for rule in self.rules:
            firing, value = evaluate_rule(rule, view)
            if firing:
                self._ok_streak[rule.name] = 0
                if rule.name not in self._active:
                    event = self._emit(rule, "fired", value, label, view)
                    self._active[rule.name] = event
                    transitions.append(event)
            elif rule.name in self._active:
                streak = self._ok_streak.get(rule.name, 0) + 1
                self._ok_streak[rule.name] = streak
                if streak >= rule.clear_after:
                    del self._active[rule.name]
                    self._ok_streak[rule.name] = 0
                    transitions.append(
                        self._emit(rule, "cleared", value, label, view)
                    )
        return transitions

    def _emit(
        self,
        rule: AlertRule,
        state: str,
        value: float,
        label: str,
        view: AlertView,
    ) -> AlertEvent:
        event = AlertEvent(
            seq=self._next_seq,
            state=state,
            rule=rule.name,
            severity=rule.severity,
            summary=rule.summary,
            value=value,
            bound=rule.bound,
            label=label,
            operations=view.operations,
            simulated_seconds=view.simulated_seconds,
        )
        self._next_seq += 1
        self._events.append(event)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(event.to_dict(), sort_keys=True) + "\n"
                )
        if self.recorder.enabled:
            self.recorder.record_alert(event)
        # incident triggers come AFTER the transition is persisted, so
        # the bundle's own artifacts already include this firing
        if state == "fired" and self.incidents.enabled:
            if rule.severity == "critical":
                self.incidents.trigger(
                    "critical-alert",
                    key=rule.name,
                    rule=rule.name,
                    value=value,
                    bound=rule.bound,
                    summary=rule.summary,
                )
            elif rule.name == "slo-budget-exhausted":
                self.incidents.trigger(
                    "slo-budget-exhausted",
                    key=rule.name,
                    value=value,
                    bound=rule.bound,
                    summary=rule.summary,
                )
        return event

    # ---------------------------------------------------------------- reading --

    def active(self) -> List[AlertEvent]:
        """Currently-firing alerts, oldest first."""
        return sorted(self._active.values(), key=lambda event: event.seq)

    def events(self) -> List[AlertEvent]:
        """Every transition this instance has seen (including restored)."""
        return list(self._events)

    def worst_active_severity(self) -> Optional[str]:
        worst = None
        for event in self._active.values():
            if worst is None or SEVERITIES.index(event.severity) > (
                SEVERITIES.index(worst)
            ):
                worst = event.severity
        return worst

    def __len__(self) -> int:
        return len(self._events)


class NoopAlerts:
    """Disabled engine: recording is a no-op, reads are empty."""

    __slots__ = ()
    enabled = False
    rules: Tuple[AlertRule, ...] = ()
    evaluations = 0
    path = None
    interval = DEFAULT_INTERVAL
    recorder = NOOP_RECORDER
    incidents = NOOP_INCIDENTS

    def observe(self, store) -> None:
        pass

    def evaluate_store(
        self, store, label: str = "manual", skip_if_idle: bool = False
    ) -> List[AlertEvent]:
        return []

    def evaluate(
        self, view: AlertView, label: str = "manual"
    ) -> List[AlertEvent]:
        return []

    def active(self) -> List[AlertEvent]:
        return []

    def events(self) -> List[AlertEvent]:
        return []

    def worst_active_severity(self) -> Optional[str]:
        return None

    def __len__(self) -> int:
        return 0


NOOP_ALERTS = NoopAlerts()


def create_alerts(
    enabled: bool,
    path: Optional[str] = None,
    interval: int = DEFAULT_INTERVAL,
    rules: Optional[Sequence[AlertRule]] = None,
):
    """The configured engine: live when enabled, shared no-op otherwise."""
    if not enabled:
        return NOOP_ALERTS
    return AlertEngine(rules=rules, path=path, interval=interval)


def read_alert_log(path: str) -> List[Dict[str, object]]:
    """Reader API: parse one alert JSONL file into event dicts, checking
    every line's ``schema_version`` stamp."""
    from repro.obs.schema import check_schema_version

    rows: List[Dict[str, object]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError as error:
                    raise ObservabilityError(
                        f"{path}:{number}: malformed alert line ({error})"
                    ) from error
                check_schema_version(payload, f"{path}:{number}")
                rows.append(payload)
    except OSError as error:
        raise ObservabilityError(f"cannot read {path}: {error}") from error
    return rows


def load_events(path: str) -> List[AlertEvent]:
    """:func:`read_alert_log`, decoded into :class:`AlertEvent` rows."""
    return [AlertEvent.from_dict(row) for row in read_alert_log(path)]
