"""Bench trajectory: run-over-run performance trend detection.

``bench_compare`` answers "does this run still have the paper's shape
against the committed baseline".  What it cannot answer is "has a phase
been getting slowly worse across the last N runs" — the classic boiled
frog.  This module keeps the long view: an append-only JSONL trajectory
(``bench_results/BENCH_trajectory.jsonl``) with one record per bench
run, each carrying the per-``approach/phase`` simulated cost and
throughput from ``BENCH_table5.json``, and a detector that compares the
newest record against the *rolling median* of the preceding window.

Medians, not means: a single outlier run in the history barely moves
the reference, so the detector flags genuine level shifts instead of
noise.  Simulated seconds, not wall seconds: the trajectory is
comparable across machines and CI runners, which is the whole point of
the repo's simulated cost model.

``tools/bench_trend.py`` is the CLI wrapper that appends the current
``BENCH_table5.json`` and exits non-zero on a flagged regression,
gating CI next to ``bench_compare``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Sequence

from repro.errors import ObservabilityError

TRAJECTORY_FILE = "BENCH_trajectory.jsonl"

#: Latest-vs-rolling-median ratio above which a phase is flagged.
DEFAULT_THRESHOLD = 1.5
#: Prior records required before the detector speaks at all.
DEFAULT_MIN_HISTORY = 3
#: Rolling window of prior records the median is taken over.
DEFAULT_WINDOW = 8

PHASES = ("insert", "seq_scan", "random_reads")


@dataclass(frozen=True)
class Regression:
    """One flagged ``approach/phase`` cell."""

    key: str
    simulated_seconds: float
    rolling_median: float
    ratio: float

    def render(self) -> str:
        return (
            f"{self.key}: {self.simulated_seconds:.4f} simulated seconds vs "
            f"rolling median {self.rolling_median:.4f} "
            f"(x{self.ratio:.2f})"
        )


def trajectory_record(
    rows: Sequence[Dict[str, object]], label: str
) -> Dict[str, object]:
    """One trajectory record from parsed ``BENCH_table5.json`` rows."""
    from repro.obs.schema import check_schema_version, stamp

    phases: Dict[str, Dict[str, float]] = {}
    for row in rows:
        check_schema_version(row, f"bench row {row.get('approach', '?')}")
        approach = str(row["approach"])
        for phase in PHASES:
            cell = row.get(phase)
            if not isinstance(cell, dict):
                raise ObservabilityError(
                    f"bench row {approach!r} is missing phase {phase!r}"
                )
            phases[f"{approach}/{phase}"] = {
                "simulated_seconds": float(cell["simulated_seconds"]),
                "kb_per_second": float(cell["kb_per_second"]),
            }
    return stamp({"label": label, "phases": phases})


def append_record(path: str, record: Dict[str, object]) -> None:
    """Append one stamped record as a JSONL line (sorted keys, so the
    file is a deterministic function of its records)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_trajectory(path: str) -> List[Dict[str, object]]:
    """All records of one trajectory file (missing file → empty list);
    every line's ``schema_version`` stamp is checked."""
    from repro.obs.schema import check_schema_version

    if not os.path.exists(path):
        return []
    records: List[Dict[str, object]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError as error:
                    raise ObservabilityError(
                        f"{path}:{number}: malformed trajectory line ({error})"
                    ) from error
                check_schema_version(payload, f"{path}:{number}")
                records.append(payload)
    except OSError as error:
        raise ObservabilityError(f"cannot read {path}: {error}") from error
    return records


def detect_regressions(
    records: Sequence[Dict[str, object]],
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
    window: int = DEFAULT_WINDOW,
) -> List[Regression]:
    """Compare the newest record's simulated cost per phase against the
    rolling median of the preceding ``window`` records.  Silent until
    ``min_history`` prior records exist (a young trajectory cannot
    distinguish a regression from a baseline)."""
    if len(records) < 2:
        return []
    latest = records[-1]
    prior = records[:-1][-window:]
    if len(prior) < min_history:
        return []
    flagged: List[Regression] = []
    latest_phases = latest.get("phases")
    if not isinstance(latest_phases, dict):
        raise ObservabilityError("trajectory record has no phases mapping")
    for key in sorted(latest_phases):
        history = [
            float(record["phases"][key]["simulated_seconds"])
            for record in prior
            if isinstance(record.get("phases"), dict)
            and key in record["phases"]
        ]
        if len(history) < min_history:
            continue
        reference = median(history)
        current = float(latest_phases[key]["simulated_seconds"])
        if reference > 0 and current > threshold * reference:
            flagged.append(
                Regression(
                    key=key,
                    simulated_seconds=current,
                    rolling_median=reference,
                    ratio=current / reference,
                )
            )
    return flagged


def next_label(records: Sequence[Dict[str, object]]) -> str:
    """Deterministic default label for the next appended record."""
    return f"run-{len(records) + 1}"


def trend_summary(
    records: Sequence[Dict[str, object]],
    regressions: Sequence[Regression],
) -> Dict[str, object]:
    """The stamped JSON payload ``tools/bench_trend.py --json`` emits."""
    from repro.obs.schema import stamp

    return stamp(
        {
            "records": len(records),
            "latest_label": records[-1].get("label") if records else None,
            "regressions": [
                {
                    "key": regression.key,
                    "simulated_seconds": regression.simulated_seconds,
                    "rolling_median": regression.rolling_median,
                    "ratio": regression.ratio,
                }
                for regression in regressions
            ],
            "ok": not regressions,
        }
    )
