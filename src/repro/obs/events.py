"""Structured event log: who did what on which access path, and when.

Spans (:mod:`repro.obs.tracing`) time *brackets* of work; events record
*facts inside* them — "partial index probe missed node 42", "range 3
scanned 211 tokens", "WAL appended insert_into_last".  Every component on
the lookup path (locator, partial index, range index, full index, buffer
pool, WAL, xpath evaluator) holds an ``event_log`` attribute — the shared
no-op singleton unless the store attaches a live log — and emits into it.

Each :class:`Event` carries:

* ``seq`` — monotone sequence number (the ring buffer's own order);
* ``op_id``/``op`` — the store operation the event belongs to, stamped
  while an :class:`~repro.obs.explain.ExplainRecorder` (or any caller of
  :meth:`EventLog.begin_op`) has an operation window open;
* ``span`` — the sequence number of the innermost open tracing span at
  emit time, correlating events with the span tree;
* ``severity`` — ``debug``/``info``/``warning``/``error``;
* ``source``/``kind`` — emitting component and what happened.  Sources
  include the lookup-path components above plus ``"fault"`` (the
  crash-consistency layer, :mod:`repro.storage.faults`: ``torn_write``,
  ``torn_wal_append``, ``sync``, ``crash``; the silent-corruption layer:
  ``bitrot``/``lost_write``/``misdirect`` on injection,
  ``checksum_error`` when the buffer pool quarantines a block,
  ``scrub_bad_block``/``scrub_complete`` from :mod:`repro.storage.scrub`)
  and ``"recovery"`` (WAL replay, plus ``repair_complete`` from
  :mod:`repro.core.repair`), so EXPLAIN can attribute post-crash and
  post-corruption work;
* ``wall``/``simulated`` — both store clocks at emit time;
* ``fields`` — free-form payload (node ids, ranges, token counts...).

Like the rest of :mod:`repro.obs`, the disabled path is a shared no-op
twin (:data:`NOOP_EVENT_LOG`): component emit sites guard on
``event_log.enabled``, so a store without events performs one attribute
check and nothing else.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.clock import perf_seconds
from repro.obs.recorder import NOOP_RECORDER

DEFAULT_EVENT_CAPACITY = 4096

SEVERITIES = ("debug", "info", "warning", "error")


@dataclass
class Event:
    """One structured log record, as stored in the ring buffer."""

    seq: int
    op_id: Optional[int]
    op: Optional[str]
    span: Optional[int]
    severity: str
    source: str
    kind: str
    wall: float
    simulated: float
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "severity": self.severity,
            "source": self.source,
            "kind": self.kind,
            "wall": self.wall,
            "simulated": self.simulated,
        }
        if self.op_id is not None:
            out["op_id"] = self.op_id
            out["op"] = self.op
        if self.span is not None:
            out["span"] = self.span
        if self.fields:
            out["fields"] = self.fields
        return out


def events_log_jsonl(events: List[Event]) -> str:
    """Render events as JSON lines (one object per line)."""
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True, default=str) + "\n"
        for event in events
    )


class EventLog:
    """Bounded, thread-safe ring buffer of :class:`Event` records."""

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_EVENT_CAPACITY,
        simulated_clock: Optional[Callable[[], float]] = None,
        tracer=None,
    ) -> None:
        if capacity < 1:
            capacity = 1
        self.capacity = capacity
        self.simulated_clock = simulated_clock
        #: tracer whose innermost open span stamps each event (optional)
        self.tracer = tracer
        self.dropped = 0
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        #: stack of open (op_id, op_name) windows; events are stamped with
        #: the innermost one, and ending an inner window re-exposes the
        #: enclosing one (nested ops: an xpath EXPLAIN wrapping node reads)
        self._op_stack: List[Tuple[int, str]] = []
        self._next_op_id = 0
        #: flight recorder every emitted event is teed into (the owning
        #: store attaches a live one; see :mod:`repro.obs.recorder`)
        self.recorder = NOOP_RECORDER

    # -- operation windows --------------------------------------------------

    def begin_op(self, name: str) -> int:
        """Open an operation window; events emitted until the matching
        :meth:`end_op` carry this operation's id and name.  Windows nest:
        ending an inner window restores the enclosing one."""
        with self._lock:
            op_id = self._next_op_id
            self._next_op_id += 1
            self._op_stack.append((op_id, name))
        return op_id

    def end_op(self) -> None:
        with self._lock:
            if self._op_stack:
                self._op_stack.pop()

    # -- emission -----------------------------------------------------------

    def emit(
        self, source: str, kind: str, severity: str = "debug", **fields: object
    ) -> Event:
        """Record one event; returns it (mainly for tests)."""
        if severity not in SEVERITIES:
            raise ObservabilityError(
                f"unknown severity {severity!r}; use one of {SEVERITIES}"
            )
        simulated = self.simulated_clock() if self.simulated_clock is not None else 0.0
        span_seq = self.tracer.current_span_seq() if self.tracer is not None else None
        with self._lock:
            op_id, op_name = self._op_stack[-1] if self._op_stack else (None, None)
            event = Event(
                seq=self._seq,
                op_id=op_id,
                op=op_name,
                span=span_seq,
                severity=severity,
                source=source,
                kind=kind,
                wall=perf_seconds(),
                simulated=simulated,
                fields=fields,
            )
            self._seq += 1
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
        # the tee runs outside the lock: the recorder has its own, and
        # ring order there is its own sequence, not this one's
        if self.recorder.enabled:
            self.recorder.record_event(event)
        return event

    # -- inspection ---------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next event will receive (window marker)."""
        with self._lock:
            return self._seq

    def events(
        self, since: int = 0, op_id: Optional[int] = None
    ) -> List[Event]:
        """Events still in the ring, oldest first, with ``seq >= since``
        (optionally restricted to one operation window)."""
        with self._lock:
            out = [e for e in self._events if e.seq >= since]
        if op_id is not None:
            out = [e for e in out if e.op_id == op_id]
        return out

    def to_jsonl(self) -> str:
        return events_log_jsonl(self.events())

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0


class NoopEventLog:
    """Disabled event log: every method is a no-op with the same shape."""

    __slots__ = ()
    enabled = False
    capacity = 0
    dropped = 0
    next_seq = 0
    simulated_clock = None
    tracer = None
    recorder = NOOP_RECORDER

    def begin_op(self, name: str) -> int:
        return 0

    def end_op(self) -> None:
        pass

    def emit(
        self, source: str, kind: str, severity: str = "debug", **fields: object
    ) -> None:
        pass

    def events(self, since: int = 0, op_id: Optional[int] = None) -> List[Event]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def clear(self) -> None:
        pass


NOOP_EVENT_LOG = NoopEventLog()


def create_event_log(
    enabled: bool,
    capacity: int = DEFAULT_EVENT_CAPACITY,
    simulated_clock: Optional[Callable[[], float]] = None,
    tracer=None,
):
    """The configured event log: live when enabled, shared no-op
    singleton otherwise."""
    if not enabled:
        return NOOP_EVENT_LOG
    return EventLog(capacity=capacity, simulated_clock=simulated_clock, tracer=tracer)
