"""Service-level objectives over the span histograms.

The tracing layer already records every operation twice — once on the
wall clock (``repro_span_seconds``) and once on the simulated disk/CPU
model (``repro_span_simulated_seconds``).  This module turns those
histograms into *objectives*: "95% of ``node_read`` operations finish
within 0.25 simulated seconds", with classic error-budget accounting
(how many violations the target fraction allows, how much of that
allowance is spent).

Everything is computed from cumulative bucket counts, so evaluation is
a pure read — no clock is touched, and on the simulated axis the
result is a deterministic function of the operation sequence.  That
split matters downstream:

* the **simulated** axis feeds alert rules, the health verdict, and
  byte-diffed CI artifacts (two identical runs → identical statuses);
* the **wall** axis is real latency and therefore nondeterministic —
  it appears in human-readable reports and the Prometheus exposition,
  never in history snapshots or determinism-gated JSON.

Percentiles are histogram estimates: the reported quantile is the
smallest bucket bound whose cumulative count covers the requested
fraction (the same upper-bound estimate Prometheus' ``histogram_quantile``
would give at bucket resolution).  Compliance is conservative: an
observation counts as within-objective only when it landed in a bucket
whose upper bound is ≤ the objective, so objectives should sit on
bucket bounds (the defaults do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricFamily, MetricsRegistry

#: Histogram family per axis.
AXIS_FAMILIES = {
    "simulated": "repro_span_simulated_seconds",
    "wall": "repro_span_seconds",
}

#: Axes whose statuses are deterministic functions of the operation
#: sequence (safe for byte-diffed artifacts).
DETERMINISTIC_AXES = ("simulated",)


@dataclass(frozen=True)
class SLOTarget:
    """One objective: ``target_fraction`` of ``operation`` spans must
    finish within ``objective_seconds`` on ``axis``."""

    operation: str
    objective_seconds: float
    target_fraction: float = 0.95
    axis: str = "simulated"

    def __post_init__(self) -> None:
        if self.axis not in AXIS_FAMILIES:
            raise ObservabilityError(
                f"unknown SLO axis {self.axis!r} (choose from "
                f"{sorted(AXIS_FAMILIES)})"
            )
        if not 0.0 < self.target_fraction <= 1.0:
            raise ObservabilityError(
                f"target_fraction must be in (0, 1], got {self.target_fraction}"
            )
        if self.objective_seconds <= 0:
            raise ObservabilityError("objective_seconds must be positive")


#: Objectives sit on SIMULATED_COST_BUCKETS / LATENCY_BUCKETS bounds so
#: the conservative bucket compliance is exact, not pessimistic.
DEFAULT_TARGETS: Tuple[SLOTarget, ...] = (
    SLOTarget("node_read", 0.25, 0.95, "simulated"),
    SLOTarget("xpath", 2.5, 0.95, "simulated"),
    SLOTarget("insert_into_last", 0.25, 0.95, "simulated"),
    SLOTarget("node_read", 0.025, 0.95, "wall"),
    SLOTarget("xpath", 0.25, 0.95, "wall"),
    SLOTarget("insert_into_last", 0.025, 0.95, "wall"),
)


@dataclass(frozen=True)
class SLOStatus:
    """One target evaluated against the current histograms."""

    target: SLOTarget
    #: Spans observed on this axis for this operation.
    count: int
    #: Observations NOT within the objective (conservative: bucket
    #: granularity rounds against compliance).
    violations: int
    #: Violations the target fraction tolerates at this count.
    allowed: float
    #: Histogram estimate of the latency at the target fraction
    #: (upper bucket bound; None when no data).
    percentile_estimate: Optional[float]
    #: 1.0 = untouched budget, 0.0 = exactly spent, negative = breached.
    budget_remaining: float

    @property
    def met(self) -> bool:
        return self.violations <= self.allowed

    def to_dict(self) -> Dict[str, object]:
        return {
            "operation": self.target.operation,
            "axis": self.target.axis,
            "objective_seconds": self.target.objective_seconds,
            "target_fraction": self.target.target_fraction,
            "count": self.count,
            "violations": self.violations,
            "allowed": self.allowed,
            "percentile_estimate": self.percentile_estimate,
            "budget_remaining": self.budget_remaining,
            "met": self.met,
        }


@dataclass
class SLOReport:
    """All statuses from one evaluation."""

    statuses: List[SLOStatus]

    @property
    def met(self) -> bool:
        return all(status.met for status in self.statuses)

    def worst(self) -> Optional[SLOStatus]:
        """The status with the least budget left (None when empty)."""
        if not self.statuses:
            return None
        return min(self.statuses, key=lambda status: status.budget_remaining)

    def budget_floor(self) -> float:
        """Minimum budget_remaining across statuses (1.0 when empty)."""
        worst = self.worst()
        return 1.0 if worst is None else worst.budget_remaining

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {
                "met": self.met,
                "budget_floor": self.budget_floor(),
                "statuses": [status.to_dict() for status in self.statuses],
            }
        )

    def render(self) -> str:
        if not self.statuses:
            return "no SLO targets configured\n"
        lines = [
            f"{'operation':<18} {'axis':<10} {'objective':>10} "
            f"{'p-target':>9} {'count':>7} {'viol':>6} {'budget':>8}  status"
        ]
        for status in self.statuses:
            target = status.target
            estimate = (
                "-"
                if status.percentile_estimate is None
                else f"{status.percentile_estimate:g}s"
            )
            lines.append(
                f"{target.operation:<18} {target.axis:<10} "
                f"{target.objective_seconds:>9g}s {estimate:>9} "
                f"{status.count:>7} {status.violations:>6} "
                f"{status.budget_remaining:>8.2f}  "
                f"{'met' if status.met else 'BREACHED'}"
            )
        return "\n".join(lines) + "\n"


def _bucket_counts(
    families: Iterable[MetricFamily], family_name: str, operation: str
) -> Tuple[List[Tuple[float, float]], int]:
    """Cumulative ``(upper_bound, count)`` pairs and the total count for
    one operation's histogram, parsed from exported families."""
    buckets: List[Tuple[float, float]] = []
    total = 0
    for family in families:
        if family.name != family_name or family.kind != "histogram":
            continue
        for sample in family.samples:
            labels = dict(sample.labels)
            if labels.get("span") != operation:
                continue
            if sample.name == family_name + "_bucket":
                bound = float(labels["le"])
                buckets.append((bound, sample.value))
            elif sample.name == family_name + "_count":
                total = int(sample.value)
    buckets.sort(key=lambda pair: pair[0])
    return buckets, total


def _evaluate_target(
    target: SLOTarget, families: Sequence[MetricFamily]
) -> SLOStatus:
    buckets, count = _bucket_counts(
        families, AXIS_FAMILIES[target.axis], target.operation
    )
    if count == 0:
        return SLOStatus(
            target=target,
            count=0,
            violations=0,
            allowed=0.0,
            percentile_estimate=None,
            budget_remaining=1.0,
        )
    # conservative compliance: within-objective = landed in a bucket
    # whose upper bound does not exceed the objective
    compliant = 0.0
    for bound, cumulative in buckets:
        if bound <= target.objective_seconds:
            compliant = cumulative
        else:
            break
    violations = int(count - compliant)
    allowed = (1.0 - target.target_fraction) * count
    if allowed > 0:
        budget = 1.0 - violations / allowed
    else:
        budget = 1.0 if violations == 0 else -1.0
    # clamp: a fully-breached budget reads the same past -1
    budget = max(-1.0, min(1.0, budget))
    needed = target.target_fraction * count
    estimate = None
    for bound, cumulative in buckets:
        if cumulative >= needed:
            estimate = bound if not math.isinf(bound) else None
            break
    return SLOStatus(
        target=target,
        count=count,
        violations=violations,
        allowed=allowed,
        percentile_estimate=estimate,
        budget_remaining=budget,
    )


class SLOTracker:
    """Live tracker: evaluates targets against a store's span metrics."""

    enabled = True

    def __init__(self, targets: Optional[Sequence[SLOTarget]] = None) -> None:
        self.targets: Tuple[SLOTarget, ...] = (
            tuple(targets) if targets is not None else DEFAULT_TARGETS
        )

    def evaluate_families(
        self,
        families: Sequence[MetricFamily],
        axes: Sequence[str] = DETERMINISTIC_AXES,
    ) -> SLOReport:
        statuses = [
            _evaluate_target(target, families)
            for target in self.targets
            if target.axis in axes
        ]
        return SLOReport(statuses=statuses)

    def evaluate(
        self, store, axes: Sequence[str] = DETERMINISTIC_AXES
    ) -> SLOReport:
        """Evaluate against a live store (reads counters only; the span
        histograms exist only when telemetry is enabled)."""
        families = (
            store.telemetry.collect() if store.telemetry.enabled else []
        )
        return self.evaluate_families(families, axes=axes)

    def budget_floor(self, store) -> float:
        """Minimum simulated-axis budget_remaining — the alert-rule feed."""
        return self.evaluate(store, axes=DETERMINISTIC_AXES).budget_floor()

    def families(
        self, store, axes: Sequence[str] = DETERMINISTIC_AXES
    ) -> List[MetricFamily]:
        """Prometheus exposition: per-target budget/violation gauges."""
        registry = MetricsRegistry()
        budget = registry.gauge(
            "repro_slo_budget_remaining",
            "Error budget left per objective (1 untouched, <0 breached).",
            labelnames=("operation", "axis"),
        )
        violations = registry.gauge(
            "repro_slo_violations",
            "Observations outside the objective, per target.",
            labelnames=("operation", "axis"),
        )
        met = registry.gauge(
            "repro_slo_met",
            "1 when the objective currently holds, 0 when breached.",
            labelnames=("operation", "axis"),
        )
        for status in self.evaluate(store, axes=axes).statuses:
            labels = dict(
                operation=status.target.operation, axis=status.target.axis
            )
            budget.labels(**labels).set(status.budget_remaining)
            violations.labels(**labels).set(float(status.violations))
            met.labels(**labels).set(1.0 if status.met else 0.0)
        return registry.collect()


class NoopSLO:
    """Disabled tracker: evaluations are empty, budgets untouched."""

    __slots__ = ()
    enabled = False
    targets: Tuple[SLOTarget, ...] = ()

    def evaluate_families(
        self,
        families: Sequence[MetricFamily],
        axes: Sequence[str] = DETERMINISTIC_AXES,
    ) -> SLOReport:
        return SLOReport(statuses=[])

    def evaluate(
        self, store, axes: Sequence[str] = DETERMINISTIC_AXES
    ) -> SLOReport:
        return SLOReport(statuses=[])

    def budget_floor(self, store) -> float:
        return 1.0

    def families(
        self, store, axes: Sequence[str] = DETERMINISTIC_AXES
    ) -> List[MetricFamily]:
        return []


NOOP_SLO = NoopSLO()


def create_slo(
    enabled: bool, targets: Optional[Sequence[SLOTarget]] = None
):
    """The configured tracker: live when enabled, shared no-op otherwise."""
    if not enabled:
        return NOOP_SLO
    return SLOTracker(targets=targets)
