"""Tracing spans: lightweight nested timing over both store clocks.

A span brackets one logical unit of work::

    with tracer.span("insert_before", node_id=7):
        ...

On exit the span records *wall-clock* seconds (via the obs clock) and
*simulated disk* seconds (via the callback the store provides), plus any
fields given at creation, into a bounded in-memory ring buffer of
:class:`SpanEvent` objects.  Spans nest: each event carries its depth
and the sequence number of its parent, so an exporter can rebuild the
call tree.  When a registry is attached, every completed span also feeds
three metrics — ``repro_spans_total``, ``repro_span_seconds`` and
``repro_span_simulated_seconds`` — labeled by span name, which is what
gives every Table-1 operation a latency *and* a simulated-cost
histogram for free.

:class:`NoopTracer` is the disabled twin: ``span()`` returns one shared
do-nothing context manager, so a disabled store allocates no event
objects at all.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.clock import perf_seconds
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIMULATED_COST_BUCKETS,
)

DEFAULT_RING_CAPACITY = 1024

SPANS_TOTAL = "repro_spans_total"
SPAN_SECONDS = "repro_span_seconds"
SPAN_SIMULATED_SECONDS = "repro_span_simulated_seconds"


@dataclass
class SpanEvent:
    """One completed span, as stored in the ring buffer."""

    seq: int
    name: str
    depth: int
    parent: Optional[int]
    #: perf-clock timestamp at span start (process-relative seconds)
    start: float
    #: simulated-clock timestamp at span start (store clock; 0.0 when the
    #: tracer has no simulated clock).  The simulated timeline this anchors
    #: is what makes profile exports deterministic (see repro.obs.profiler).
    sim_start: float
    wall_seconds: float
    simulated_seconds: float
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "name": self.name,
            "depth": self.depth,
            "parent": self.parent,
            "start": self.start,
            "sim_start": self.sim_start,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
        }
        if self.fields:
            out["fields"] = self.fields
        return out


class Span:
    """Context manager measuring one unit of work; see :class:`Tracer`."""

    __slots__ = ("_tracer", "name", "fields", "seq", "depth", "parent",
                 "_start_perf", "_start_sim")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self.seq = -1
        self.depth = 0
        self.parent: Optional[int] = None
        self._start_perf = 0.0
        self._start_sim = 0.0

    def annotate(self, **fields: object) -> None:
        """Attach extra fields to the span while it is open."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self._tracer._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.fields["error"] = exc_type.__name__
        self._tracer._finish(self)


class Tracer:
    """Creates spans and keeps their events in a bounded ring buffer."""

    def __init__(
        self,
        simulated_clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_RING_CAPACITY,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            capacity = 1
        self.capacity = capacity
        self.simulated_clock = simulated_clock
        self._events: Deque[SpanEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans_total = None
        self._span_seconds = None
        self._span_simulated = None
        if registry is not None:
            self._spans_total = registry.counter(
                SPANS_TOTAL, "Completed spans by name.", labelnames=("span",)
            )
            self._span_seconds = registry.histogram(
                SPAN_SECONDS,
                "Wall-clock span duration in seconds.",
                labelnames=("span",),
                buckets=LATENCY_BUCKETS,
            )
            self._span_simulated = registry.histogram(
                SPAN_SIMULATED_SECONDS,
                "Simulated disk+CPU span cost in seconds.",
                labelnames=("span",),
                buckets=SIMULATED_COST_BUCKETS,
            )

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **fields: object) -> Span:
        return Span(self, name, fields)

    def touch(self, name: str) -> None:
        """Pre-register the metric children for a span name, so exports
        show the series (at zero) before the first occurrence."""
        if self._spans_total is not None:
            self._spans_total.labels(span=name)
            self._span_seconds.labels(span=name)
            self._span_simulated.labels(span=name)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _start(self, span: Span) -> None:
        stack = self._stack()
        with self._lock:
            span.seq = self._seq
            self._seq += 1
        span.depth = len(stack)
        span.parent = stack[-1].seq if stack else None
        stack.append(span)
        clock = self.simulated_clock
        span._start_sim = clock() if clock is not None else 0.0
        span._start_perf = perf_seconds()

    def _finish(self, span: Span) -> None:
        wall = perf_seconds() - span._start_perf
        clock = self.simulated_clock
        simulated = (clock() - span._start_sim) if clock is not None else 0.0
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; drop it and its orphans
            stack[:] = stack[: stack.index(span)]
        event = SpanEvent(
            seq=span.seq,
            name=span.name,
            depth=span.depth,
            parent=span.parent,
            start=span._start_perf,
            sim_start=span._start_sim,
            wall_seconds=wall,
            simulated_seconds=simulated,
            fields=span.fields,
        )
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
        if self._spans_total is not None:
            self._spans_total.labels(span=span.name).inc()
            self._span_seconds.labels(span=span.name).observe(wall)
            self._span_simulated.labels(span=span.name).observe(simulated)

    # -- inspection ---------------------------------------------------------

    @property
    def active_depth(self) -> int:
        return len(self._stack())

    @property
    def next_seq(self) -> int:
        """Sequence number the next span will receive (window marker for
        per-operation analysis, see :mod:`repro.obs.explain`)."""
        with self._lock:
            return self._seq

    def current_span_seq(self) -> Optional[int]:
        """Sequence number of the innermost open span on this thread, or
        None outside any span (event/span correlation)."""
        stack = self._stack()
        return stack[-1].seq if stack else None

    def events(self) -> List[SpanEvent]:
        """The ring buffer's events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0


# ---------------------------------------------------------------- no-op twins --

class _NoopSpan:
    """Shared do-nothing span; one instance serves every disabled call."""

    __slots__ = ()
    name = "noop"
    fields: Dict[str, object] = {}

    def annotate(self, **fields: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Tracer impostor: no events, no allocations, no metrics."""

    __slots__ = ()
    capacity = 0
    dropped = 0
    active_depth = 0
    next_seq = 0
    simulated_clock = None

    def span(self, name: str, **fields: object) -> _NoopSpan:
        return NOOP_SPAN

    def current_span_seq(self) -> Optional[int]:
        return None

    def touch(self, name: str) -> None:
        pass

    def events(self) -> List[SpanEvent]:
        return []

    def clear(self) -> None:
        pass


NOOP_TRACER = NoopTracer()
