"""Artifact schema versioning: every exported JSON carries its format.

PRs 1-5 grew a family of JSON artifacts — EXPLAIN reports, heatmaps,
cost profiles, calibration reports, torture/scrub/repair reports, the
``BENCH_table5.json`` rows — and this PR adds two longitudinal ones
(workload-history snapshots and advisor reports) that are *persisted*
and read back across runs.  Longitudinal artifacts can only evolve
safely if every record says which format it was written in, so:

* every top-level exported dict carries ``schema_version`` (stamped via
  :func:`stamp` at its ``to_dict``/report-builder site);
* readers call :func:`check_schema_version` and refuse payloads from a
  *newer* writer (or a missing stamp where one is required) instead of
  misinterpreting them;
* ``tools/bench_compare.py`` asserts the stamp on both benchmark files,
  so a baseline produced by an incompatible writer fails loudly (exit
  2, malformed input) rather than producing nonsense ratios.

The version is global across artifact kinds — one repo-wide format
epoch, bumped whenever any exported shape changes incompatibly — which
keeps the check trivial and the evolution story auditable in one place.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ObservabilityError

#: The format epoch this tree writes.  Bump on any incompatible change
#: to an exported JSON artifact, and teach the readers that care
#: (:func:`check_schema_version` callers) how to migrate or refuse.
SCHEMA_VERSION = 1


def stamp(payload: Dict[str, object]) -> Dict[str, object]:
    """Stamp ``payload`` with the current schema version (returns it)."""
    payload["schema_version"] = SCHEMA_VERSION
    return payload


def check_schema_version(
    payload: Dict[str, object],
    where: str,
    required: bool = True,
) -> Optional[int]:
    """Validate one payload's ``schema_version``; returns it.

    Raises :class:`~repro.errors.ObservabilityError` when the stamp is
    missing (unless ``required=False``, for tolerating pre-versioning
    legacy artifacts), is not an integer, or was written by a *newer*
    format epoch than this reader understands.  Older-but-stamped
    versions are accepted — readers stay backward compatible within an
    epoch; writers never emit anything but the current one.
    """
    version = payload.get("schema_version")
    if version is None:
        if not required:
            return None
        raise ObservabilityError(
            f"{where}: missing schema_version (expected {SCHEMA_VERSION}); "
            "regenerate the artifact with the current tree"
        )
    if not isinstance(version, int) or isinstance(version, bool):
        raise ObservabilityError(
            f"{where}: schema_version must be an integer, got {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise ObservabilityError(
            f"{where}: schema_version {version} is newer than this reader "
            f"supports ({SCHEMA_VERSION}); upgrade before reading it"
        )
    return version
